//! The evaluation engine: Fix semantics as restartable job steps.
//!
//! Every unit of evaluation is a [`Job`]; executing a job either completes
//! with a Handle or reports the jobs it depends on ([`Step::Deps`]). Jobs
//! are *restartable*: when dependencies finish, the job is simply stepped
//! again — memoized relations (the [`RelationCache`]) make the replay
//! cheap and guarantee the expensive work (running a procedure) happens
//! exactly once. This mirrors Fixpoint's design: procedures never block
//! (paper §4.2.1), so a worker either runs a codelet to completion or
//! records what must be computed first.
//!
//! The three job kinds map onto the memoized relations:
//!
//! * [`Job::Eval`] — reduce a Thunk until the result is not a Thunk;
//! * [`Job::Resolve`] — compute what an Encode splices in (style-aware);
//! * [`Job::Force`] — deep-evaluate a value (strict semantics): all
//!   Thunks and Encodes inside replaced, all Refs promoted.

use crate::registry::{NativeCtx, ProgramRegistry};
use fix_core::data::{Blob, Node, Tree};
use fix_core::error::{Error, Result};
use fix_core::handle::{DataType, EncodeStyle, Handle, Kind, ThunkKind};
use fix_core::invocation::{Invocation, Selection};
use fix_core::semantics::{collect_encodes, EncodeResolver};
use fix_storage::{ProvenanceLedger, Relation, RelationCache, Store};
use fix_vm::{HostApi, Module, VmConfig};
use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A unit of evaluation work.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Job {
    /// Reduce a Thunk to a non-Thunk value.
    Eval(Handle),
    /// Resolve an Encode (what gets spliced into an application tree).
    Resolve(Handle),
    /// Deep-force a value so that everything inside is accessible.
    Force(Handle),
}

impl std::fmt::Display for Job {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Job::Eval(h) => write!(f, "eval({h})"),
            Job::Resolve(h) => write!(f, "resolve({h})"),
            Job::Force(h) => write!(f, "force({h})"),
        }
    }
}

/// The outcome of stepping a job once.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Step {
    /// The job finished with this result.
    Done(Handle),
    /// The job needs these jobs to finish first, then must be re-stepped.
    Deps(Vec<Job>),
}

/// Counters describing engine activity (used by benches and tests).
#[derive(Debug, Default)]
pub struct EngineStats {
    /// Procedures actually executed (cache misses on Apply).
    pub procedures_run: AtomicU64,
    /// FixVM guest runs among those.
    pub vm_runs: AtomicU64,
    /// Native codelet runs among those.
    pub native_runs: AtomicU64,
    /// Total guest fuel consumed.
    pub fuel_used: AtomicU64,
}

/// The evaluation engine shared by all workers of one node.
pub struct Engine {
    /// Object storage for this node.
    pub store: Arc<Store>,
    /// Memoized evaluation relations.
    pub cache: Arc<RelationCache>,
    /// Native procedure registry.
    pub registry: Arc<ProgramRegistry>,
    /// Parsed-module cache (content-addressed, so never invalidated).
    modules: RwLock<HashMap<[u8; 24], Arc<Module>>>,
    /// Provenance recording for computational GC (paper §6); `None`
    /// keeps the hot path free of ledger writes.
    provenance: Option<Arc<ProvenanceLedger>>,
    /// Activity counters.
    pub stats: EngineStats,
}

/// A [`HostApi`] over the node's store: what procedures see.
pub struct StoreHost<'a> {
    store: &'a Store,
}

impl<'a> StoreHost<'a> {
    /// Wraps a store.
    pub fn new(store: &'a Store) -> StoreHost<'a> {
        StoreHost { store }
    }
}

impl<'a> HostApi for StoreHost<'a> {
    fn load_blob(&mut self, handle: Handle) -> Result<Blob> {
        if !handle.is_accessible() {
            return Err(Error::Inaccessible(handle));
        }
        self.store.get_blob(handle)
    }

    fn load_tree(&mut self, handle: Handle) -> Result<Tree> {
        if !handle.is_accessible() {
            return Err(Error::Inaccessible(handle));
        }
        self.store.get_tree(handle)
    }

    fn create_blob(&mut self, data: Vec<u8>) -> Result<Handle> {
        Ok(self.store.put_blob(Blob::from_vec(data)))
    }

    fn create_tree(&mut self, entries: Vec<Handle>) -> Result<Handle> {
        Ok(self.store.put_tree(Tree::from_handles(entries)))
    }
}

impl Engine {
    /// Creates an engine over the given storage and registry.
    pub fn new(
        store: Arc<Store>,
        cache: Arc<RelationCache>,
        registry: Arc<ProgramRegistry>,
    ) -> Engine {
        Engine {
            store,
            cache,
            registry,
            modules: RwLock::new(HashMap::new()),
            provenance: None,
            stats: EngineStats::default(),
        }
    }

    /// Enables provenance recording into `ledger`: every datum a
    /// procedure run or selection produces is recorded together with a
    /// *resolved* recipe — a Thunk over fully-substituted inputs — so
    /// the bytes can be evicted and recomputed on demand (paper §6).
    pub fn with_provenance(mut self, ledger: Arc<ProvenanceLedger>) -> Engine {
        self.provenance = Some(ledger);
        self
    }

    /// The provenance ledger, if recording is enabled.
    pub fn provenance(&self) -> Option<&Arc<ProvenanceLedger>> {
        self.provenance.as_ref()
    }

    /// Executes one step of `job`.
    pub fn step(&self, job: Job) -> Result<Step> {
        match job {
            Job::Eval(h) => self.step_eval(h),
            Job::Resolve(h) => self.step_resolve(h),
            Job::Force(h) => self.step_force(h),
        }
    }

    // ------------------------------------------------------------------
    // Eval.
    // ------------------------------------------------------------------

    fn step_eval(&self, h: Handle) -> Result<Step> {
        if h.is_value() {
            return Ok(Step::Done(h));
        }
        if let Some(v) = self.cache.get(Relation::Eval, h) {
            return Ok(Step::Done(v));
        }
        match h.kind() {
            Kind::Thunk(ThunkKind::Identification) => {
                // The identity function: a pure renaming to the value.
                let target = h.thunk_definition()?;
                self.cache.put(Relation::Eval, h, target);
                Ok(Step::Done(target))
            }
            Kind::Thunk(ThunkKind::Selection) => self.step_eval_selection(h),
            Kind::Thunk(ThunkKind::Application) => self.step_eval_application(h),
            Kind::Encode(..) => {
                // Bare encodes are not values; treat eval(encode) as resolve.
                self.step_resolve(h)
            }
            Kind::Object(_) | Kind::Ref(_) => unreachable!("values returned above"),
        }
    }

    fn step_eval_selection(&self, h: Handle) -> Result<Step> {
        let def = self.store.get_tree(h.thunk_definition()?)?;
        let sel = Selection::from_tree(&def)?;
        // First, get the target down to a value.
        let target = match sel.target.kind() {
            Kind::Object(_) | Kind::Ref(_) => sel.target,
            Kind::Thunk(_) => match self.cache.get(Relation::Eval, sel.target) {
                Some(v) => v,
                None => return Ok(Step::Deps(vec![Job::Eval(sel.target)])),
            },
            Kind::Encode(..) => match self.cache.resolved(sel.target) {
                Some(v) => v,
                None => return Ok(Step::Deps(vec![Job::Resolve(sel.target)])),
            },
        };
        // Perform the extraction. The runtime — not the guest — touches the
        // data, so accessibility tags on `target` don't gate this.
        let result = match self.store.get(target)? {
            Node::Tree(tree) => {
                let (begin, end) = sel.bounds(tree.len() as u64)?;
                if sel.end.is_none() {
                    tree.get(begin as usize).expect("bounds checked")
                } else {
                    self.store
                        .put_tree(tree.slice(begin as usize, end as usize))
                }
            }
            Node::Blob(blob) => {
                let (begin, end) = sel.bounds(blob.len() as u64)?;
                self.store
                    .put_blob(blob.slice(begin as usize, end as usize))
            }
        };
        if result.is_thunk() {
            // Chained laziness: keep reducing.
            match self.cache.get(Relation::Eval, result) {
                Some(v) => {
                    self.cache.put(Relation::Eval, h, v);
                    Ok(Step::Done(v))
                }
                None => Ok(Step::Deps(vec![Job::Eval(result)])),
            }
        } else {
            if let Some(ledger) = &self.provenance {
                // Recipe over the *value* target: re-running it later
                // must not depend on memoized thunk evaluations.
                let resolved = Selection {
                    target,
                    begin: sel.begin,
                    end: sel.end,
                }
                .to_tree();
                let resolved_h = self.store.put_tree(resolved);
                if let Ok(recipe) = resolved_h.selection() {
                    ledger.record(result, recipe);
                }
            }
            self.cache.put(Relation::Eval, h, result);
            Ok(Step::Done(result))
        }
    }

    fn step_eval_application(&self, h: Handle) -> Result<Step> {
        let tree_h = h.thunk_definition()?;
        let raw = match self.cache.get(Relation::Apply, tree_h) {
            Some(r) => r,
            None => {
                let tree = self.store.get_tree(tree_h)?;
                // Resolve every Encode reachable through the tree first.
                let encodes = collect_encodes(self.store.as_ref(), &tree)?;
                let mut deps: Vec<Job> = Vec::new();
                for e in encodes {
                    if self.cache.resolved(e).is_none() {
                        deps.push(Job::Resolve(e));
                    }
                }
                if !deps.is_empty() {
                    return Ok(Step::Deps(deps));
                }
                // Substitute resolved Encodes; the procedure sees this tree.
                let resolved = self.substitute(&tree)?;
                let resolved_h = self.store.put_tree(resolved.clone());
                let raw = self.run_procedure(&resolved, resolved_h)?;
                if !raw.is_thunk() {
                    if let Some(ledger) = &self.provenance {
                        // Recipe over the resolved tree: its support is
                        // purely structural (no encodes left), so an
                        // eviction planner sees exactly what a re-run
                        // will read.
                        if let Ok(recipe) = resolved_h.application() {
                            ledger.record(raw, recipe);
                        }
                    }
                }
                self.cache.put(Relation::Apply, tree_h, raw);
                raw
            }
        };
        if raw.is_thunk() {
            // Tail call: the procedure returned another computation.
            match self.cache.get(Relation::Eval, raw) {
                Some(v) => {
                    self.cache.put(Relation::Eval, h, v);
                    Ok(Step::Done(v))
                }
                None => Ok(Step::Deps(vec![Job::Eval(raw)])),
            }
        } else {
            self.cache.put(Relation::Eval, h, raw);
            Ok(Step::Done(raw))
        }
    }

    /// Rewrites an application tree, splicing in resolved Encode results
    /// (strict → accessible Object, shallow → Ref) and recursing through
    /// accessible sub-trees. All encodes must already be resolved.
    fn substitute(&self, tree: &Tree) -> Result<Tree> {
        let mut entries = Vec::with_capacity(tree.len());
        for &entry in tree.entries() {
            entries.push(match entry.kind() {
                Kind::Encode(style, _) => {
                    let r = self
                        .cache
                        .resolved(entry)
                        .ok_or(Error::NotEvaluated(entry))?;
                    match style {
                        EncodeStyle::Strict => r.as_object_handle(),
                        EncodeStyle::Shallow => r.as_ref_handle(),
                    }
                }
                Kind::Object(DataType::Tree) => {
                    let sub = self.store.get_tree(entry)?;
                    let rewritten = self.substitute(&sub)?;
                    if rewritten == sub {
                        entry
                    } else {
                        self.store.put_tree(rewritten)
                    }
                }
                _ => entry,
            });
        }
        Ok(Tree::from_handles(entries))
    }

    /// Runs the procedure of a fully-resolved application tree.
    fn run_procedure(&self, tree: &Tree, tree_handle: Handle) -> Result<Handle> {
        let inv = Invocation::from_tree(tree)?;
        let proc = inv.procedure;
        if !matches!(proc.kind(), Kind::Object(DataType::Blob)) {
            return Err(Error::UnknownProcedure(proc));
        }
        self.stats.procedures_run.fetch_add(1, Ordering::Relaxed);

        // Native codelet?
        if let Some(f) = self.registry.lookup(proc) {
            self.stats.native_runs.fetch_add(1, Ordering::Relaxed);
            let mut host = StoreHost::new(&self.store);
            let mut ctx = NativeCtx {
                input: tree_handle,
                host: &mut host,
            };
            return f(&mut ctx);
        }

        // FixVM codelet?
        let blob = self.store.get_blob(proc)?;
        if Module::is_module(blob.as_slice()) {
            self.stats.vm_runs.fetch_add(1, Ordering::Relaxed);
            let module = self.load_module(proc, &blob)?;
            let mut host = StoreHost::new(&self.store);
            let out = fix_vm::run(
                &module,
                &mut host,
                tree_handle,
                VmConfig::from_limits(&inv.limits),
            )?;
            self.stats
                .fuel_used
                .fetch_add(out.fuel_used, Ordering::Relaxed);
            return Ok(out.result);
        }
        Err(Error::UnknownProcedure(proc))
    }

    fn load_module(&self, handle: Handle, blob: &Blob) -> Result<Arc<Module>> {
        // Literal-sized modules are parsed directly (no digest to key on).
        let Some(key) = handle.digest() else {
            return Ok(Arc::new(Module::from_bytes(blob.as_slice())?));
        };
        if let Some(m) = self.modules.read().get(&key) {
            return Ok(Arc::clone(m));
        }
        let module = Arc::new(Module::from_bytes(blob.as_slice())?);
        self.modules.write().insert(key, Arc::clone(&module));
        Ok(module)
    }

    // ------------------------------------------------------------------
    // Resolve.
    // ------------------------------------------------------------------

    fn step_resolve(&self, e: Handle) -> Result<Step> {
        let (style, _) = match e.kind() {
            Kind::Encode(style, kind) => (style, kind),
            _ => {
                return Err(Error::TypeMismatch {
                    handle: e,
                    expected: "an Encode",
                })
            }
        };
        let thunk = e.encoded_thunk()?;
        let value = match self.cache.get(Relation::Eval, thunk) {
            Some(v) => v,
            None => return Ok(Step::Deps(vec![Job::Eval(thunk)])),
        };
        match style {
            EncodeStyle::Shallow => {
                // Minimum progress: the value, provided as a Ref.
                Ok(Step::Done(value.as_ref_handle()))
            }
            EncodeStyle::Strict => match self.cache.get(Relation::Force, value) {
                Some(f) => Ok(Step::Done(f.as_object_handle())),
                None => Ok(Step::Deps(vec![Job::Force(value)])),
            },
        }
    }

    // ------------------------------------------------------------------
    // Force.
    // ------------------------------------------------------------------

    fn step_force(&self, h: Handle) -> Result<Step> {
        if let Some(f) = self.cache.get(Relation::Force, h) {
            return Ok(Step::Done(f));
        }
        match h.kind() {
            Kind::Object(DataType::Blob) | Kind::Ref(DataType::Blob) => {
                // Promotion to Object requires the data to exist.
                if !self.store.contains(h) {
                    return Err(Error::NotFound(h));
                }
                let r = h.as_object_handle();
                self.cache.put(Relation::Force, h, r);
                Ok(Step::Done(r))
            }
            Kind::Object(DataType::Tree) | Kind::Ref(DataType::Tree) => self.step_force_tree(h),
            Kind::Thunk(_) => {
                // Forcing a thunk: evaluate, then force the value.
                let v = match self.cache.get(Relation::Eval, h) {
                    Some(v) => v,
                    None => return Ok(Step::Deps(vec![Job::Eval(h)])),
                };
                match self.cache.get(Relation::Force, v) {
                    Some(f) => {
                        self.cache.put(Relation::Force, h, f);
                        Ok(Step::Done(f))
                    }
                    None => Ok(Step::Deps(vec![Job::Force(v)])),
                }
            }
            Kind::Encode(..) => {
                // Force through the encode's thunk, ignoring the style:
                // strict evaluation makes everything fully accessible.
                let thunk = h.encoded_thunk()?;
                match self.cache.get(Relation::Force, thunk) {
                    Some(f) => {
                        self.cache.put(Relation::Force, h, f);
                        Ok(Step::Done(f))
                    }
                    None => Ok(Step::Deps(vec![Job::Force(thunk)])),
                }
            }
        }
    }

    fn step_force_tree(&self, h: Handle) -> Result<Step> {
        let tree = self.store.get_tree(h)?;
        let mut deps: Vec<Job> = Vec::new();
        let mut forced_entries: Vec<Handle> = Vec::with_capacity(tree.len());
        for &entry in tree.entries() {
            match entry.kind() {
                Kind::Object(DataType::Blob) | Kind::Ref(DataType::Blob) => {
                    if !self.store.contains(entry) {
                        return Err(Error::NotFound(entry));
                    }
                    forced_entries.push(entry.as_object_handle());
                }
                Kind::Object(DataType::Tree)
                | Kind::Ref(DataType::Tree)
                | Kind::Thunk(_)
                | Kind::Encode(..) => match self.cache.get(Relation::Force, entry) {
                    Some(f) => forced_entries.push(f.as_object_handle()),
                    None => deps.push(Job::Force(entry)),
                },
            }
        }
        if !deps.is_empty() {
            return Ok(Step::Deps(deps));
        }
        let forced = Tree::from_handles(forced_entries);
        let result = self.store.put_tree(forced);
        self.cache.put(Relation::Force, h, result);
        if result != h {
            // Forcing is idempotent.
            self.cache.put(Relation::Force, result, result);
        }
        Ok(Step::Done(result))
    }
}
