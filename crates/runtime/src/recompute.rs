//! Recompute-on-demand: the runtime half of computational garbage
//! collection (paper §6, "delayed-availability" storage).
//!
//! `fix-storage` records which Thunk produced each object and plans
//! sound evictions; this module re-creates evicted bytes by re-running
//! those recipes. Because recipes are recorded over *resolved*
//! definitions (see `Engine`), a recipe's structural reachability is
//! exactly what the re-run reads — so materialization can recursively
//! restore a cascade of evicted inputs in dependency order, then re-run
//! the producing procedure once.
//!
//! The key invariant is determinism: a re-run must produce the same
//! payload the original run did. [`Runtime::materialize`] verifies this
//! and reports a provider-side fault otherwise.

use crate::engine::Job;
use crate::runtime::Runtime;
use fix_core::error::{Error, Result};
use fix_core::handle::{Handle, Kind, ThunkKind};
use fix_storage::{
    apply_eviction, plan_eviction, support_closure, EvictionPlan, ProvenanceLedger, Relation,
};
use std::collections::HashSet;

/// What an eviction pass deleted.
#[derive(Debug, Clone)]
pub struct EvictionOutcome {
    /// The executed plan (victims with recompute depths).
    pub plan: EvictionPlan,
    /// Bytes actually reclaimed from the store.
    pub bytes_reclaimed: u64,
}

/// What a materialization did to serve a cold read.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecomputeReport {
    /// Objects whose bytes were re-created (the cascade size).
    pub objects_materialized: usize,
    /// Procedure runs the cascade cost (from engine counters).
    pub procedures_rerun: u64,
    /// Longest recipe chain followed.
    pub max_depth: u32,
}

impl Runtime {
    fn ledger(&self) -> Result<&ProvenanceLedger> {
        self.provenance().ok_or_else(|| {
            Error::Trap(
                "provenance recording is disabled; build the runtime with \
                 `Runtime::builder().with_provenance()`"
                    .into(),
            )
        })
    }

    /// Deletes every object that can be soundly recomputed from what
    /// remains, keeping everything reachable from `pins`.
    ///
    /// This is the paper's computational garbage collection: the
    /// provider reclaims RAM/disk for objects whose recipes it knows,
    /// and later reads pay a recompute instead of a miss. Requires
    /// provenance recording; must not run concurrently with evaluations.
    pub fn evict_recomputable(&self, pins: &[Handle]) -> Result<EvictionOutcome> {
        let ledger = self.ledger()?;
        let plan = plan_eviction(self.store(), ledger, pins);
        let bytes_reclaimed = apply_eviction(self.store(), ledger, &plan)?;
        Ok(EvictionOutcome {
            plan,
            bytes_reclaimed,
        })
    }

    /// Ensures `handle`'s bytes are resident, re-running recorded
    /// recipes as needed (recursively, for evicted inputs).
    ///
    /// Returns a report of the work done — `objects_materialized == 0`
    /// means the read was warm. Fails with [`Error::NotFound`] if the
    /// object was never produced by a recorded computation, and with a
    /// trap if a re-run produces different bytes (a determinism fault:
    /// the paper's "wrong answer" a provider would carry insurance for).
    pub fn materialize(&self, handle: Handle) -> Result<RecomputeReport> {
        let ledger = self.ledger()?;
        let mut report = RecomputeReport::default();
        let mut in_progress: HashSet<[u8; 32]> = HashSet::new();
        self.materialize_inner(ledger, handle, 1, &mut in_progress, &mut report)?;
        Ok(report)
    }

    /// Convenience: materialize, then read a blob.
    pub fn get_blob_recomputing(&self, handle: Handle) -> Result<fix_core::data::Blob> {
        self.materialize(handle)?;
        self.get_blob(handle)
    }

    fn materialize_inner(
        &self,
        ledger: &ProvenanceLedger,
        handle: Handle,
        depth: u32,
        in_progress: &mut HashSet<[u8; 32]>,
        report: &mut RecomputeReport,
    ) -> Result<()> {
        if !matches!(handle.kind(), Kind::Object(_) | Kind::Ref(_)) {
            return Err(Error::TypeMismatch {
                handle,
                expected: "a data handle",
            });
        }
        if self.store().contains(handle) {
            return Ok(());
        }
        let key = {
            let mut k = *handle.raw();
            k[30] = 0;
            k
        };
        if !in_progress.insert(key) {
            return Err(Error::Trap(format!(
                "recompute cycle involving {handle}; refusing to recurse"
            )));
        }
        let recipe = ledger.recipe_for(handle).ok_or(Error::NotFound(handle))?;

        // Restore the recipe's support first. Each pass can only see as
        // deep as resident trees allow, so loop until nothing is absent:
        // every pass materializes at least one object or fails.
        loop {
            let missing: Vec<Handle> = support_closure(self.store(), recipe)
                .into_iter()
                .filter(|s| !self.store().contains(*s))
                .collect();
            if missing.is_empty() {
                break;
            }
            for s in missing {
                self.materialize_inner(ledger, s, depth + 1, in_progress, report)?;
            }
        }

        // Forget the memoized result so evaluation actually re-runs.
        // (Recipes over resolved definitions usually have no memos —
        // the original run was keyed on the unresolved tree — but the
        // no-encode case aliases them.)
        self.cache().remove(Relation::Eval, recipe);
        if matches!(recipe.kind(), Kind::Thunk(ThunkKind::Application)) {
            if let Ok(def) = recipe.thunk_definition() {
                self.cache().remove(Relation::Apply, def);
            }
        }
        self.scheduler().forget(Job::Eval(recipe));

        let produced = self.eval(recipe)?;
        if !self.store().contains(handle) {
            // Same evaluation, different bytes: determinism violation.
            return Err(Error::Trap(format!(
                "recompute of {handle} produced {produced}: nondeterministic procedure \
                 or corrupted provenance"
            )));
        }
        ledger.mark_resident(handle);
        report.objects_materialized += 1;
        report.max_depth = report.max_depth.max(depth);
        in_progress.remove(&key);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fix_core::data::Blob;
    use fix_core::limits::ResourceLimits;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;

    fn limits() -> ResourceLimits {
        ResourceLimits::default_limits()
    }

    /// A runtime with provenance and a `double` codelet that counts runs.
    fn doubling_runtime() -> (Runtime, Handle, Arc<AtomicU64>) {
        let rt = Runtime::builder().with_provenance().build();
        let runs = Arc::new(AtomicU64::new(0));
        let r2 = Arc::clone(&runs);
        let double = rt.register_native(
            "double",
            Arc::new(move |ctx| {
                r2.fetch_add(1, Ordering::SeqCst);
                // Value travels in the first 8 bytes (inputs may be
                // 8-byte literals or previous 64-byte outputs).
                let data = ctx.arg_blob(0)?;
                let mut first8 = [0u8; 8];
                let n = data.len().min(8);
                first8[..n].copy_from_slice(&data.as_slice()[..n]);
                let v = u64::from_le_bytes(first8);
                // 64 bytes so outputs are never literals.
                let mut out = vec![0u8; 64];
                out[..8].copy_from_slice(&(v * 2).to_le_bytes());
                ctx.host.create_blob(out)
            }),
        );
        (rt, double, runs)
    }

    fn doubled_value(rt: &Runtime, h: Handle) -> u64 {
        let blob = rt.get_blob(h).unwrap();
        u64::from_le_bytes(blob.as_slice()[..8].try_into().unwrap())
    }

    #[test]
    fn evict_then_recompute_round_trip() {
        let (rt, double, runs) = doubling_runtime();
        let x = rt.put_blob(Blob::from_vec(vec![21u8; 64]));
        let input = rt.put_blob(Blob::from_u64(21));
        let _ = x;
        let thunk = rt.apply(limits(), double, &[input]).unwrap();
        let out = rt.eval(thunk).unwrap();
        assert_eq!(doubled_value(&rt, out), 42);
        assert_eq!(runs.load(Ordering::SeqCst), 1);

        let outcome = rt.evict_recomputable(&[]).unwrap();
        assert!(outcome.bytes_reclaimed >= 64);
        assert!(!rt.store().contains(out));

        // A cold read transparently re-runs the procedure.
        let blob = rt.get_blob_recomputing(out).unwrap();
        assert_eq!(
            u64::from_le_bytes(blob.as_slice()[..8].try_into().unwrap()),
            42
        );
        assert_eq!(runs.load(Ordering::SeqCst), 2);

        // Warm read afterwards: no further work.
        let report = rt.materialize(out).unwrap();
        assert_eq!(report.objects_materialized, 0);
    }

    #[test]
    fn cascaded_recompute_restores_chain() {
        // out2 = double(double(x)): evict both outputs, materialize the
        // outer one; the inner must be restored first.
        let (rt, double, runs) = doubling_runtime();
        let input = rt.put_blob(Blob::from_u64(10));
        let t1 = rt.apply(limits(), double, &[input]).unwrap();
        let out1 = rt.eval(t1).unwrap();
        let t2 = rt.apply(limits(), double, &[out1]).unwrap();
        let out2 = rt.eval(t2).unwrap();
        assert_eq!(doubled_value(&rt, out2), 40);
        assert_eq!(runs.load(Ordering::SeqCst), 2);

        let outcome = rt.evict_recomputable(&[]).unwrap();
        assert_eq!(outcome.plan.victims.len(), 2);
        assert_eq!(outcome.plan.max_depth(), 2);
        assert!(!rt.store().contains(out1));
        assert!(!rt.store().contains(out2));

        let report = rt.materialize(out2).unwrap();
        assert_eq!(report.objects_materialized, 2);
        assert_eq!(report.max_depth, 2);
        assert_eq!(runs.load(Ordering::SeqCst), 4);
        assert_eq!(doubled_value(&rt, out2), 40);
        assert!(rt.store().contains(out1), "inner restored by cascade");
    }

    #[test]
    fn pins_survive_eviction() {
        let (rt, double, _) = doubling_runtime();
        let input = rt.put_blob(Blob::from_u64(5));
        let out = rt
            .eval(rt.apply(limits(), double, &[input]).unwrap())
            .unwrap();
        let outcome = rt.evict_recomputable(&[out]).unwrap();
        assert_eq!(outcome.bytes_reclaimed, 0);
        assert!(rt.store().contains(out));
    }

    #[test]
    fn materialize_without_recipe_is_not_found() {
        let rt = Runtime::builder().with_provenance().build();
        let h = rt.put_blob(Blob::from_vec(vec![1u8; 64]));
        rt.store().evict(h);
        assert!(matches!(rt.materialize(h), Err(Error::NotFound(_))));
    }

    #[test]
    fn provenance_disabled_reports_clearly() {
        let rt = Runtime::builder().build();
        let err = rt.evict_recomputable(&[]).unwrap_err();
        assert!(err.to_string().contains("with_provenance"), "{err}");
    }

    #[test]
    fn selection_results_are_recomputable() {
        let (rt, _, _) = doubling_runtime();
        let big = rt.put_blob(Blob::from_vec((0..=255u8).cycle().take(512).collect()));
        let sel = rt.select_range(big, 100, 200).unwrap();
        let slice = rt.eval(sel).unwrap();
        let expect = rt.get_blob(slice).unwrap();

        let outcome = rt.evict_recomputable(&[]).unwrap();
        assert!(outcome
            .plan
            .victims
            .iter()
            .any(|v| v.handle == slice.as_object_handle()));
        assert!(!rt.store().contains(slice));

        let got = rt.get_blob_recomputing(slice).unwrap();
        assert_eq!(got, expect);
    }

    #[test]
    fn recompute_after_memo_clear_still_works() {
        // Even if every memo is gone, recipes are self-contained.
        let (rt, double, _) = doubling_runtime();
        let input = rt.put_blob(Blob::from_u64(8));
        let out = rt
            .eval(rt.apply(limits(), double, &[input]).unwrap())
            .unwrap();
        rt.evict_recomputable(&[]).unwrap();
        rt.clear_memoization();
        rt.materialize(out).unwrap();
        assert_eq!(doubled_value(&rt, out), 16);
    }
}
