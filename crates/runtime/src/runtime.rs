//! The public Fixpoint API: a single-node Fix runtime.
//!
//! [`Runtime`] owns the storage, relation cache, program registry,
//! scheduler, and (optionally) a worker pool. Its surface mirrors the
//! paper's Table 1: create blobs and trees, build thunks and encodes,
//! and ask for evaluation.

use crate::engine::{Engine, Job};
use crate::registry::{NativeFn, ProgramRegistry};
use crate::scheduler::{Scheduler, WorkerPool};
use fix_core::api::{BatchTicket, Ticket};
use fix_core::data::{Blob, Node, Tree};
use fix_core::error::Result;
use fix_core::handle::Handle;
use fix_core::limits::ResourceLimits;
use fix_core::semantics::{footprint, footprint_many, Footprint};
use fix_durable::DurableStore;
use fix_storage::{Labels, ProvenanceLedger, RelationCache, Store};
use std::sync::Arc;

/// Configures a [`Runtime`].
#[derive(Default)]
pub struct RuntimeBuilder {
    workers: usize,
    provenance: bool,
    durable: Option<DurableStore>,
}

impl RuntimeBuilder {
    /// Number of worker threads. With 0, evaluation runs inline on the
    /// calling thread (the microsecond path and the Fig-9 configuration).
    pub fn workers(mut self, n: usize) -> Self {
        self.workers = n;
        self
    }

    /// Enables provenance recording, the opt-in behind computational
    /// garbage collection (paper §6): each produced object is recorded
    /// with its recipe so `Runtime::evict_recomputable` /
    /// `Runtime::materialize` can trade storage for recompute.
    pub fn with_provenance(mut self) -> Self {
        self.provenance = true;
        self
    }

    /// Backs the runtime with a [`DurableStore`]: objects and memoized
    /// relations persist through its append-only log, a reopened
    /// directory restarts lazily (bytes fault in from disk on first
    /// touch), and memoized work recovered from the log re-serves with
    /// zero procedures run.
    pub fn durable(mut self, durable: DurableStore) -> Self {
        self.durable = Some(durable);
        self
    }

    /// Builds the runtime.
    pub fn build(self) -> Runtime {
        let (store, cache) = match &self.durable {
            Some(d) => (Arc::clone(d.store()), Arc::clone(d.cache())),
            None => (Arc::new(Store::new()), Arc::new(RelationCache::new())),
        };
        let registry = Arc::new(ProgramRegistry::new());
        let ledger = self.provenance.then(|| Arc::new(ProvenanceLedger::new()));
        let mut engine = Engine::new(
            Arc::clone(&store),
            Arc::clone(&cache),
            Arc::clone(&registry),
        );
        if let Some(l) = &ledger {
            engine = engine.with_provenance(Arc::clone(l));
        }
        let engine = Arc::new(engine);
        let scheduler = Arc::new(Scheduler::new(Arc::clone(&engine)));
        let pool = if self.workers > 0 {
            Some(WorkerPool::spawn(Arc::clone(&scheduler), self.workers))
        } else {
            None
        };
        // Adopt the scheduler's live steal counter: the registry names
        // the very cell the steal path increments, so `work_steals()`
        // and `metrics()` can never disagree.
        let metrics = fix_obs::Registry::new();
        metrics.register_counter("scheduler.work_steals", &scheduler.steals_counter());
        // Park/steal diagnostics as plain registry gauges, in this
        // runtime's registry and adopted into the process-wide one so a
        // load controller can read scheduler pressure like any other
        // metric. Both are wall-timing dependent (diagnostic only), and
        // in the global registry the most recently built runtime's
        // cells win — the usual one-runtime-per-process case reads its
        // own scheduler.
        metrics.register_gauge("sched.parked", &scheduler.parked_gauge());
        metrics.register_gauge("sched.steal_rate", &scheduler.steal_rate_gauge());
        fix_obs::global().register_gauge("sched.parked", &scheduler.parked_gauge());
        fix_obs::global().register_gauge("sched.steal_rate", &scheduler.steal_rate_gauge());
        Runtime {
            store,
            cache,
            registry,
            engine,
            scheduler,
            labels: Labels::new(),
            provenance: ledger,
            durable: self.durable,
            metrics,
            _pool: pool,
        }
    }
}

/// A single-node Fixpoint runtime.
///
/// # Examples
///
/// Register a native `add` codelet and evaluate `add(1, 2)`:
///
/// ```
/// use fixpoint::Runtime;
/// use fix_core::data::Blob;
/// use fix_core::limits::ResourceLimits;
/// use std::sync::Arc;
///
/// let rt = Runtime::builder().build();
/// let add = rt.register_native("add", Arc::new(|ctx| {
///     let a = ctx.arg_blob(0)?.as_u64().unwrap();
///     let b = ctx.arg_blob(1)?.as_u64().unwrap();
///     ctx.host.create_blob((a + b).to_le_bytes().to_vec())
/// }));
/// let thunk = rt.apply(
///     ResourceLimits::default_limits(),
///     add,
///     &[rt.put_blob(Blob::from_u64(1)), rt.put_blob(Blob::from_u64(2))],
/// ).unwrap();
/// let result = rt.eval(thunk).unwrap();
/// assert_eq!(rt.get_blob(result).unwrap().as_u64(), Some(3));
/// ```
pub struct Runtime {
    store: Arc<Store>,
    cache: Arc<RelationCache>,
    registry: Arc<ProgramRegistry>,
    engine: Arc<Engine>,
    scheduler: Arc<Scheduler>,
    labels: Labels,
    provenance: Option<Arc<ProvenanceLedger>>,
    durable: Option<DurableStore>,
    metrics: fix_obs::Registry,
    _pool: Option<WorkerPool>,
}

impl Runtime {
    /// Starts building a runtime.
    pub fn builder() -> RuntimeBuilder {
        RuntimeBuilder::default()
    }

    /// The node's object store.
    pub fn store(&self) -> &Arc<Store> {
        &self.store
    }

    /// The node's relation cache.
    pub fn cache(&self) -> &Arc<RelationCache> {
        &self.cache
    }

    /// The node's evaluation engine (for statistics).
    pub fn engine(&self) -> &Engine {
        &self.engine
    }

    /// The node's label namespace.
    pub fn labels(&self) -> &Labels {
        &self.labels
    }

    /// The provenance ledger, if the runtime was built
    /// [`with_provenance`](RuntimeBuilder::with_provenance).
    pub fn provenance(&self) -> Option<&ProvenanceLedger> {
        self.provenance.as_deref()
    }

    /// The node's scheduler (recompute needs targeted job invalidation).
    pub(crate) fn scheduler(&self) -> &Scheduler {
        &self.scheduler
    }

    // ------------------------------------------------------------------
    // Data (Table 1: create_blob / create_tree / read_blob / read_tree).
    // ------------------------------------------------------------------

    /// Stores a blob, returning its handle.
    pub fn put_blob(&self, blob: Blob) -> Handle {
        self.store.put_blob(blob)
    }

    /// Stores a tree, returning its handle.
    pub fn put_tree(&self, tree: Tree) -> Handle {
        self.store.put_tree(tree)
    }

    /// Reads a blob back.
    pub fn get_blob(&self, handle: Handle) -> Result<Blob> {
        self.store.get_blob(handle)
    }

    /// Reads a tree back.
    pub fn get_tree(&self, handle: Handle) -> Result<Tree> {
        self.store.get_tree(handle)
    }

    // ------------------------------------------------------------------
    // Procedures.
    // ------------------------------------------------------------------

    /// Registers a native codelet; stores and returns its marker handle.
    pub fn register_native(&self, name: &str, f: NativeFn) -> Handle {
        let (blob, handle) = self.registry.register(name, f);
        self.store.put_blob(blob);
        handle
    }

    /// Assembles FixVM source, stores the module blob, returns its handle.
    pub fn install_vm_module(&self, source: &str) -> Result<Handle> {
        let module = fix_vm::assemble(source)?;
        Ok(self.store.put_blob(Blob::from_vec(module.to_bytes())))
    }

    // ------------------------------------------------------------------
    // Thunks and encodes (Table 1).
    // ------------------------------------------------------------------

    /// Builds and stores an application tree `[limits, proc, args...]`,
    /// returning the Application Thunk. (Canonical definition:
    /// [`InvocationApi::apply`](fix_core::api::InvocationApi::apply) —
    /// delegated so the generic and concrete call paths cannot diverge.)
    pub fn apply(
        &self,
        limits: ResourceLimits,
        procedure: Handle,
        args: &[Handle],
    ) -> Result<Handle> {
        fix_core::api::InvocationApi::apply(self, limits, procedure, args)
    }

    /// Builds and stores a selection thunk for `target[index]`.
    pub fn select(&self, target: Handle, index: u64) -> Result<Handle> {
        fix_core::api::InvocationApi::select(self, target, index)
    }

    /// Builds and stores a selection thunk for `target[begin..end]`.
    pub fn select_range(&self, target: Handle, begin: u64, end: u64) -> Result<Handle> {
        fix_core::api::InvocationApi::select_range(self, target, begin, end)
    }

    // ------------------------------------------------------------------
    // Evaluation.
    // ------------------------------------------------------------------

    /// Evaluates a handle to a non-Thunk value (weak head normal form).
    ///
    /// Values evaluate to themselves; Thunks are reduced (running
    /// procedures as needed); Encodes are resolved per their style.
    pub fn eval(&self, handle: Handle) -> Result<Handle> {
        if handle.is_value() {
            return Ok(handle);
        }
        self.scheduler.run_inline(Job::Eval(handle))
    }

    /// Fully evaluates: reduces to a value, then deep-forces it so every
    /// nested Thunk/Encode is resolved and every Ref promoted.
    pub fn eval_strict(&self, handle: Handle) -> Result<Handle> {
        let value = self.eval(handle)?;
        self.scheduler.run_inline(Job::Force(value))
    }

    /// Evaluates a batch of independent requests (results positional).
    ///
    /// Blocking is the special case of submission: this is exactly
    /// [`submit_many`](Runtime::submit_many) followed by an immediate
    /// [`BatchTicket::wait`]. The whole batch enters the scheduler (and
    /// registers its completion watchers) under **one** lock acquisition
    /// and one wakeup broadcast — the batched dispatch path measured by
    /// the `api_eval_many` bench. Shared sub-computations are
    /// deduplicated across the batch exactly as they are within one
    /// evaluation.
    pub fn eval_many(&self, handles: &[Handle]) -> Vec<Result<Handle>> {
        self.submit_many(handles).wait()
    }

    // ------------------------------------------------------------------
    // Submission (the native SubmitApi backend).
    // ------------------------------------------------------------------

    /// Begins evaluating a batch under request-scoped options —
    /// deadline (virtual µs), [`Priority`](fix_core::api::Priority)
    /// class, WHNF-vs-strict [`Mode`](fix_core::api::Mode) — returning
    /// a ticket for the positional results; the native implementation
    /// of [`SubmitApi::submit_with`](fix_core::api::SubmitApi::submit_with).
    ///
    /// Submission takes the scheduler's job-map lock once, registers a
    /// completion watcher per request (a strict request watches its
    /// whole eval→force chain as one slot), and returns immediately;
    /// the scheduler's completion notifications fill the ticket as jobs
    /// finish. No caller thread is parked per batch: with a worker pool
    /// the batch executes behind the caller's back, and on a pool-less
    /// runtime waiting on *any* ticket drives the shared queue (so
    /// overlapped batches still all make progress).
    ///
    /// Cancelling the ticket — or dropping it unresolved, cancel's
    /// implicit form — fails unresolved slots with
    /// [`Error::Cancelled`](fix_core::Error::Cancelled), withdraws the
    /// watchers on the spot (see
    /// [`submission_watchers`](Runtime::submission_watchers)), and
    /// withdraws still-queued jobs no other live request shares (see
    /// [`queued_jobs`](Runtime::queued_jobs)); shared or already-running
    /// jobs remain ordinary scheduler state. A batch whose deadline the
    /// [virtual clock](Runtime::virtual_now) passes before dispatch
    /// expires with [`Error::DeadlineExceeded`](fix_core::Error::DeadlineExceeded)
    /// instead of executing.
    pub fn submit_with(
        &self,
        handles: &[Handle],
        options: fix_core::api::SubmitOptions,
    ) -> BatchTicket {
        crate::submit::submit_with(&self.scheduler, handles, options)
    }

    /// Begins evaluating a batch with default options (no deadline,
    /// normal priority, WHNF); see [`submit_with`](Runtime::submit_with).
    pub fn submit_many(&self, handles: &[Handle]) -> BatchTicket {
        self.submit_with(handles, fix_core::api::SubmitOptions::default())
    }

    /// Begins evaluating one handle (a batch of one); see
    /// [`submit_many`](Runtime::submit_many).
    pub fn submit(&self, handle: Handle) -> Ticket {
        fix_core::api::SubmitApi::submit(self, handle)
    }

    /// The scheduler's virtual clock, in µs — the timeline submission
    /// deadlines are measured on. Starts at zero and never moves with
    /// wall time.
    pub fn virtual_now(&self) -> u64 {
        self.scheduler.virtual_now()
    }

    /// Advances the virtual clock by `us` µs; queued submissions whose
    /// deadline the clock passes are expired lazily at dequeue.
    pub fn advance_virtual_clock(&self, us: u64) {
        self.scheduler.advance_clock(us)
    }

    /// Completion watchers currently registered for in-flight submitted
    /// batches. Resolved, cancelled, and dropped tickets all deregister
    /// eagerly, so a quiescent runtime always reports zero — one half of
    /// the invariant the ticket-leak tests pin down.
    pub fn submission_watchers(&self) -> usize {
        self.scheduler.watcher_count()
    }

    /// Jobs currently queued for (or undergoing) execution. Cancelling
    /// a ticket withdraws the queued jobs no other live request shares,
    /// so a quiescent runtime whose outstanding tickets were all
    /// cancelled reports zero — the other half of the ticket-leak
    /// invariant (no orphaned queued work).
    pub fn queued_jobs(&self) -> usize {
        self.scheduler.queued_jobs()
    }

    /// Jobs the scheduler dispatched by stealing from another thread's
    /// deque slot. Moves whenever an idle worker (or waiter) picks up
    /// work that was pushed from a different thread — the starvation
    /// pin asserts a Latency batch stuck behind a busy worker completes
    /// via exactly this.
    pub fn work_steals(&self) -> u64 {
        self.scheduler.steals()
    }

    /// The runtime's metrics registry, for registering additional
    /// counters/gauges/histograms that should appear in
    /// [`metrics`](Runtime::metrics) snapshots alongside the built-in
    /// scheduler and engine metrics.
    pub fn metrics_registry(&self) -> &fix_obs::Registry {
        &self.metrics
    }

    /// A unified metrics snapshot: scheduler counters (adopted live
    /// cells — `scheduler.work_steals` is the same cell
    /// [`work_steals`](Runtime::work_steals) reads), point-in-time
    /// gauges sampled now (`scheduler.queued_jobs`,
    /// `scheduler.submission_watchers`), engine execution counters, and
    /// — on a durable runtime — the persistence tier's `durable.*`
    /// metrics merged in.
    pub fn metrics(&self) -> fix_obs::MetricsSnapshot {
        use std::sync::atomic::Ordering::Relaxed;
        self.metrics
            .gauge("scheduler.queued_jobs")
            .set(self.queued_jobs() as i64);
        self.metrics
            .gauge("scheduler.submission_watchers")
            .set(self.submission_watchers() as i64);
        let stats = &self.engine.stats;
        self.metrics
            .counter("engine.procedures_run")
            .store(stats.procedures_run.load(Relaxed));
        self.metrics
            .counter("engine.vm_runs")
            .store(stats.vm_runs.load(Relaxed));
        self.metrics
            .counter("engine.native_runs")
            .store(stats.native_runs.load(Relaxed));
        self.metrics
            .counter("engine.fuel_used")
            .store(stats.fuel_used.load(Relaxed));
        let mut snap = self.metrics.snapshot();
        if let Some(d) = &self.durable {
            snap.merge(&d.metrics());
        }
        snap
    }

    /// Procedures actually executed so far (memoization cache misses).
    pub fn procedures_run(&self) -> u64 {
        self.engine
            .stats
            .procedures_run
            .load(std::sync::atomic::Ordering::Relaxed)
    }

    /// Convenience: apply + strict evaluation in one call.
    pub fn run(
        &self,
        limits: ResourceLimits,
        procedure: Handle,
        args: &[Handle],
    ) -> Result<Handle> {
        let thunk = self.apply(limits, procedure, args)?;
        self.eval_strict(thunk)
    }

    /// Computes the minimum repository of a thunk (paper §3.3), using
    /// whatever evaluation results are already memoized.
    pub fn footprint(&self, thunk: Handle) -> Result<Footprint> {
        footprint(self.store.as_ref(), thunk, self.cache.as_ref())
    }

    /// Computes the combined minimum repository of a batch of requests,
    /// walking data shared between requests once: the deduplicated set a
    /// batch transfer must ship, or a snapshot must pin, to cover all of
    /// them (see [`fix_core::semantics::footprint_many`]).
    pub fn footprint_many(&self, thunks: &[Handle]) -> Result<Footprint> {
        footprint_many(self.store.as_ref(), thunks, self.cache.as_ref())
    }

    /// Runs garbage collection, keeping only objects reachable from
    /// `roots` (plus everything literal).
    ///
    /// On a durable runtime this also prunes the on-disk index, so
    /// collected objects cannot silently refault later.
    pub fn gc(&self, roots: &[Handle]) -> usize {
        match &self.durable {
            Some(d) => d.gc(roots),
            None => self.store.gc(roots),
        }
    }

    /// The persistence tier backing this runtime, when built with
    /// [`RuntimeBuilder::durable`] (use it to flush, snapshot, or read
    /// durability stats).
    pub fn durable(&self) -> Option<&DurableStore> {
        self.durable.as_ref()
    }

    /// Forgets every memoized evaluation: the relation cache *and* the
    /// scheduler's job-completion records, which mirror it.
    ///
    /// Clearing only one layer (e.g. `rt.cache().clear()`) leaves them
    /// inconsistent — the scheduler would believe dependencies are done
    /// while the engine finds no memoized result, re-requesting them
    /// forever. Benchmarks measuring cold evaluations should call this
    /// between iterations. Must not be called while an evaluation is in
    /// flight on another thread.
    pub fn clear_memoization(&self) {
        self.cache.clear();
        self.scheduler.reset();
    }

    /// Drops completed scheduler job records that nothing waits on,
    /// bounding coordination state on long-lived nodes. Memoized
    /// relations are unaffected.
    pub fn compact_scheduler(&self) -> usize {
        self.scheduler.forget_finished()
    }

    /// Reads a `u64` result blob (common in examples and tests).
    pub fn get_u64(&self, handle: Handle) -> Result<u64> {
        fix_core::api::ObjectApi::get_u64(self, handle)
    }

    /// Builds a strict encode of an application, the most common idiom:
    /// `strict(application([limits, proc, args...]))`.
    pub fn strict_apply(
        &self,
        limits: ResourceLimits,
        procedure: Handle,
        args: &[Handle],
    ) -> Result<Handle> {
        fix_core::api::InvocationApi::strict_apply(self, limits, procedure, args)
    }

    /// Stores a whole [`Node`].
    pub fn put(&self, node: Node) -> Handle {
        self.store.put(node)
    }
}

impl Default for Runtime {
    fn default() -> Self {
        Runtime::builder().build()
    }
}

// ----------------------------------------------------------------------
// The One Fix API (fix_core::api): Runtime is the reference backend.
// The trait impls delegate to the inherent methods above so that code
// written against either surface behaves identically.
// ----------------------------------------------------------------------

impl fix_core::api::ObjectApi for Runtime {
    fn put_blob(&self, blob: Blob) -> Handle {
        Runtime::put_blob(self, blob)
    }

    fn put_tree(&self, tree: Tree) -> Handle {
        Runtime::put_tree(self, tree)
    }

    fn get_blob(&self, handle: Handle) -> Result<Blob> {
        Runtime::get_blob(self, handle)
    }

    fn get_tree(&self, handle: Handle) -> Result<Tree> {
        Runtime::get_tree(self, handle)
    }

    fn contains(&self, handle: Handle) -> bool {
        self.store.contains(handle)
    }
}

impl fix_core::api::InvocationApi for Runtime {
    fn register_native(&self, name: &str, f: NativeFn) -> Handle {
        Runtime::register_native(self, name, f)
    }
}

impl fix_core::api::Evaluator for Runtime {
    fn eval(&self, handle: Handle) -> Result<Handle> {
        Runtime::eval(self, handle)
    }

    fn eval_strict(&self, handle: Handle) -> Result<Handle> {
        Runtime::eval_strict(self, handle)
    }

    fn eval_many(&self, handles: &[Handle]) -> Vec<Result<Handle>> {
        Runtime::eval_many(self, handles)
    }

    fn footprint(&self, thunk: Handle) -> Result<Footprint> {
        Runtime::footprint(self, thunk)
    }

    fn footprint_many(&self, thunks: &[Handle]) -> Result<Footprint> {
        Runtime::footprint_many(self, thunks)
    }

    fn procedures_run(&self) -> u64 {
        Runtime::procedures_run(self)
    }
}

impl fix_core::api::SubmitApi for Runtime {
    fn submit_with(
        &self,
        handles: &[Handle],
        options: fix_core::api::SubmitOptions,
    ) -> BatchTicket {
        Runtime::submit_with(self, handles, options)
    }

    fn virtual_now(&self) -> u64 {
        Runtime::virtual_now(self)
    }

    fn advance_virtual_clock(&self, us: u64) {
        Runtime::advance_virtual_clock(self, us)
    }
}
