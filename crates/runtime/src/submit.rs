//! Native submission tickets over the scheduler.
//!
//! `Runtime` implements `fix_core::api::SubmitApi` directly: a
//! submitted batch becomes a watched scheduler batch
//! ([`Scheduler::submit_watched`]) whose completion slots are filled by
//! the scheduler's own completion notifications — one job-map lock
//! acquisition at submission, no caller thread parked, no polling. The
//! [`RuntimePending`] here is the glue between that watched batch and
//! the backend-agnostic ticket machinery in `fix_core`.
//!
//! Value handles never touch the scheduler (they evaluate to
//! themselves), so the pending batch carries a slot plan mapping each
//! requested position either to its value or to a watched job slot.

use crate::engine::Job;
use crate::scheduler::{BatchState, Scheduler};
use fix_core::api::{BatchTicket, PendingBatch};
use fix_core::error::Result;
use fix_core::handle::Handle;
use std::sync::Arc;
use std::time::Duration;

/// Where each requested position gets its answer.
enum Slot {
    /// A value handle: evaluates to itself, scheduler never involved.
    Value(Handle),
    /// Slot `i` of the watched scheduler batch.
    Job(usize),
}

/// One in-flight submitted batch on the single-node runtime.
pub(crate) struct RuntimePending {
    scheduler: Arc<Scheduler>,
    state: Arc<BatchState>,
    plan: Vec<Slot>,
}

impl RuntimePending {
    /// Assembles positional results from the (completed) watched batch.
    fn assemble(&self) -> Vec<Result<Handle>> {
        let results = self.state.results();
        self.plan
            .iter()
            .map(|slot| match slot {
                Slot::Value(h) => Ok(*h),
                Slot::Job(i) => results[*i].clone(),
            })
            .collect()
    }
}

impl PendingBatch for RuntimePending {
    fn try_take(&self) -> Option<Vec<Result<Handle>>> {
        self.state.is_done().then(|| self.assemble())
    }

    fn wait(&self) -> Vec<Result<Handle>> {
        // The waiting thread turns into an inline driver: it executes
        // queued jobs (its own batch's and anyone else's) until the
        // watchers report this batch done.
        self.scheduler.wait_batch(&self.state);
        self.assemble()
    }

    fn advance(&self, timeout: Duration) {
        self.scheduler.advance_batch(&self.state, timeout);
    }

    fn detach(&self) {
        self.scheduler.detach_batch(&self.state);
    }
}

/// Builds the ticket for a batch of handles: values resolve eagerly,
/// everything else becomes one watched scheduler batch submitted under
/// a single lock acquisition.
pub(crate) fn submit_many(scheduler: &Arc<Scheduler>, handles: &[Handle]) -> BatchTicket {
    let mut jobs = Vec::new();
    let plan: Vec<Slot> = handles
        .iter()
        .map(|&h| {
            if h.is_value() {
                Slot::Value(h)
            } else {
                let i = jobs.len();
                jobs.push(Job::Eval(h));
                Slot::Job(i)
            }
        })
        .collect();
    if jobs.is_empty() {
        // All values: the ticket is born resolved.
        return BatchTicket::ready(handles.iter().map(|&h| Ok(h)).collect());
    }
    let state = scheduler.submit_watched(&jobs);
    BatchTicket::from_pending(
        Arc::new(RuntimePending {
            scheduler: Arc::clone(scheduler),
            state,
            plan,
        }),
        handles.len(),
    )
}
