//! Native submission tickets over the scheduler.
//!
//! `Runtime` implements `fix_core::api::SubmitApi` directly: a
//! submitted batch becomes a watched scheduler batch
//! ([`Scheduler::submit_watched_with`]) whose completion slots are
//! filled by the scheduler's own completion notifications — one job-map
//! lock acquisition at submission, no caller thread parked, no polling.
//! The [`RuntimePending`] here is the glue between that watched batch
//! and the backend-agnostic ticket machinery in `fix_core`.
//!
//! The submission's `SubmitOptions` map onto the scheduler directly:
//! the batch's priority picks the tier its jobs enqueue at, its
//! deadline rides in the watched batch (expired lazily at dequeue), and
//! [`Mode::Strict`](fix_core::api::Mode) turns each slot into a watched
//! eval→force chain. Under WHNF, value handles never touch the
//! scheduler (they evaluate to themselves), so the pending batch
//! carries a slot plan mapping each requested position either to its
//! value or to a watched job slot; under strict evaluation *every*
//! handle is watched — even a value must be deep-forced.

use crate::engine::Job;
use crate::scheduler::{BatchState, Scheduler};
use fix_core::api::{BatchTicket, Mode, PendingBatch, SubmitOptions};
use fix_core::error::Result;
use fix_core::handle::Handle;
use std::sync::Arc;
use std::time::Duration;

/// Where each requested position gets its answer.
enum Slot {
    /// A value handle under WHNF: evaluates to itself, scheduler never
    /// involved.
    Value(Handle),
    /// Slot `i` of the watched scheduler batch.
    Job(usize),
}

/// One in-flight submitted batch on the single-node runtime.
pub(crate) struct RuntimePending {
    scheduler: Arc<Scheduler>,
    state: Arc<BatchState>,
    plan: Vec<Slot>,
}

impl RuntimePending {
    /// Assembles positional results from the (completed) watched batch.
    fn assemble(&self) -> Vec<Result<Handle>> {
        let results = self.state.results();
        self.plan
            .iter()
            .map(|slot| match slot {
                Slot::Value(h) => Ok(*h),
                Slot::Job(i) => results[*i].clone(),
            })
            .collect()
    }
}

impl PendingBatch for RuntimePending {
    fn try_take(&self) -> Option<Vec<Result<Handle>>> {
        self.state.is_done().then(|| self.assemble())
    }

    fn wait(&self) -> Vec<Result<Handle>> {
        // The waiting thread turns into an inline driver: it executes
        // queued jobs (its own batch's and anyone else's) until the
        // watchers report this batch done.
        self.scheduler.wait_batch(&self.state);
        self.assemble()
    }

    fn advance(&self, timeout: Duration) {
        self.scheduler.advance_batch(&self.state, timeout);
    }

    fn cancel(&self) {
        self.scheduler.cancel_batch(&self.state);
    }
}

/// Builds the ticket for a batch of handles under request-scoped
/// options: WHNF values resolve eagerly, everything else becomes one
/// watched scheduler batch submitted under a single lock acquisition —
/// strict slots as eval→force chains, at the batch's priority tier,
/// carrying the batch's deadline.
pub(crate) fn submit_with(
    scheduler: &Arc<Scheduler>,
    handles: &[Handle],
    options: SubmitOptions,
) -> BatchTicket {
    // A batch submitted after its deadline already passed is dead on
    // arrival — every backend fails it whole, uniformly, before any
    // slot (even a memoized or value slot) resolves.
    if let Some(deadline_us) = options.deadline_us {
        if scheduler.virtual_now() > deadline_us {
            return BatchTicket::ready(
                handles
                    .iter()
                    .map(|_| Err(fix_core::Error::DeadlineExceeded { deadline_us }))
                    .collect(),
            );
        }
    }
    let mut jobs: Vec<(Job, bool)> = Vec::new();
    let plan: Vec<Slot> = handles
        .iter()
        .map(|&h| match options.mode {
            Mode::Whnf if h.is_value() => Slot::Value(h),
            Mode::Whnf => {
                jobs.push((Job::Eval(h), false));
                Slot::Job(jobs.len() - 1)
            }
            Mode::Strict => {
                // A value still needs its deep force; a thunk is the
                // full chain: eval, then force the produced value.
                if h.is_value() {
                    jobs.push((Job::Force(h), false));
                } else {
                    jobs.push((Job::Eval(h), true));
                }
                Slot::Job(jobs.len() - 1)
            }
        })
        .collect();
    if jobs.is_empty() {
        // All WHNF values: the ticket is born resolved.
        return BatchTicket::ready(handles.iter().map(|&h| Ok(h)).collect());
    }
    let state = scheduler.submit_watched_with(&jobs, options.deadline_us, options.priority);
    BatchTicket::from_pending(
        Arc::new(RuntimePending {
            scheduler: Arc::clone(scheduler),
            state,
            plan,
        }),
        handles.len(),
    )
}
