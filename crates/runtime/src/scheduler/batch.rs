//! Layer 3 of the scheduler: lock-free watched-batch slot fills.
//!
//! The old `BatchState` filled slots under the scheduler's global
//! mutex, which serialized every completion against every submission.
//! Here a slot is filled by **claiming** it first — a first-writer-wins
//! CAS on the slot's `claimed` bit — so the completion path, lazy
//! deadline expiry, cancellation, and stall failure can all race for a
//! slot without a shared lock: exactly one of them wins, writes the
//! result, and decrements `remaining`; the last fill flips `done`.
//! Waiters only touch a condvar when `done` flips (and the scheduler
//! only notifies when someone is actually parked), so a batch of N
//! results costs N CASes, not N lock round-trips.
//!
//! The claim bit also closes the cancel-versus-strict-chain race: a
//! strict slot's watcher re-registers on the `Force` job when its
//! `Eval` completes, and cancellation must deregister the watcher from
//! whichever stage the chain currently points at. The protocol is:
//!
//! * the *chain* records the new stage (under the new stage's job-map
//!   shard lock) and then checks `claimed` before registering the
//!   watcher — a claimed slot registers nothing;
//! * the *revoker* claims first, then removes the watcher from the
//!   recorded stage, re-reading the stage until it is stable.
//!
//! Whichever order the CAS lands in, the watcher is either never
//! registered or found by the revoker's re-read: no watcher outlives
//! its slot.

use crate::engine::Job;
use fix_core::api::Priority;
use fix_core::error::Result;
use fix_core::handle::Handle;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;

/// One watched-batch slot's stake in a job, stored on the job's map
/// entry (see `JobEntry::watchers`).
pub(super) struct Watcher {
    pub(super) state: Arc<BatchState>,
    pub(super) pos: usize,
    /// Strict slot, eval stage: on success, chain onto the `Force` of
    /// the produced value instead of filling the slot.
    pub(super) then_force: bool,
}

/// One slot of a watched batch.
struct SlotCell {
    /// First-writer-wins: whoever CASes this owns the slot's result.
    claimed: AtomicBool,
    /// The result, written by the claim owner before `remaining` is
    /// decremented (so `is_done` ⇒ every result is readable).
    result: Mutex<Option<Result<Handle>>>,
    /// The job currently answering this slot (the `Force` stage of a
    /// strict slot replaces the `Eval` stage when the chain advances).
    /// Revocation looks the watcher up through this.
    stage: Mutex<Job>,
}

/// The completion state of one watched batch: positional result slots
/// filled by the scheduler's completion path. Shared between the
/// scheduler (which fills) and a submission ticket (which waits).
pub(crate) struct BatchState {
    slots: Vec<SlotCell>,
    /// Unfilled slot count; reaches zero exactly once.
    remaining: AtomicUsize,
    /// Set by whichever fill drains `remaining`.
    done: AtomicBool,
    /// Absolute expiry on the scheduler's virtual clock, in µs.
    pub(super) deadline_us: Option<u64>,
    /// The batch's scheduling class (inherited by its jobs' enqueues).
    pub(super) priority: Priority,
}

impl BatchState {
    pub(super) fn new(
        roots: &[(Job, bool)],
        deadline_us: Option<u64>,
        priority: Priority,
    ) -> BatchState {
        let n = roots.len();
        BatchState {
            slots: roots
                .iter()
                .map(|&(job, _)| SlotCell {
                    claimed: AtomicBool::new(false),
                    result: Mutex::new(None),
                    stage: Mutex::new(job),
                })
                .collect(),
            remaining: AtomicUsize::new(n),
            done: AtomicBool::new(n == 0),
            deadline_us,
            priority,
        }
    }

    /// True once every slot has a result.
    pub(crate) fn is_done(&self) -> bool {
        self.done.load(Ordering::Acquire)
    }

    /// Clones out the positional results. Call only after
    /// [`is_done`](Self::is_done) returns true.
    pub(crate) fn results(&self) -> Vec<Result<Handle>> {
        debug_assert!(self.is_done(), "results() before the batch completed");
        self.slots
            .iter()
            .map(|s| {
                s.result
                    .lock()
                    .clone()
                    .expect("completed batch slot is filled")
            })
            .collect()
    }

    /// Claims slot `pos` for writing. True exactly once per slot.
    pub(super) fn claim_slot(&self, pos: usize) -> bool {
        self.slots[pos]
            .claimed
            .compare_exchange(false, true, Ordering::SeqCst, Ordering::SeqCst)
            .is_ok()
    }

    /// Whether slot `pos` has been claimed (it may still be mid-write;
    /// only chain registration uses this, and a claimed slot never
    /// wants a watcher again).
    pub(super) fn slot_claimed(&self, pos: usize) -> bool {
        self.slots[pos].claimed.load(Ordering::SeqCst)
    }

    /// Writes the result of a slot the caller already claimed. Returns
    /// true when this write completed the batch (the caller then owns
    /// waking waiters).
    pub(super) fn finish_claimed(&self, pos: usize, result: Result<Handle>) -> bool {
        *self.slots[pos].result.lock() = Some(result);
        let left = self.remaining.fetch_sub(1, Ordering::AcqRel) - 1;
        if fix_obs::tracing_enabled() {
            fix_obs::emit(
                fix_obs::EventKind::SchedBatchFill,
                0,
                super::job_trace_id(&self.stage(pos)),
                pos as u32,
                left as u32,
            );
        }
        if left == 0 {
            self.done.store(true, Ordering::Release);
            return true;
        }
        false
    }

    /// Claim-and-fill in one call: false if another writer owns the
    /// slot, otherwise fills it and returns whether the batch is now
    /// done.
    pub(super) fn fill(&self, pos: usize, result: Result<Handle>) -> bool {
        if !self.claim_slot(pos) {
            return false;
        }
        self.finish_claimed(pos, result)
    }

    /// The job currently answering slot `pos`.
    pub(super) fn stage(&self, pos: usize) -> Job {
        *self.slots[pos].stage.lock()
    }

    /// Records the job now answering slot `pos` (the chain advanced).
    /// Called under the new stage's job-map shard lock, *before* the
    /// chain's `claimed` check — see the module docs.
    pub(super) fn set_stage(&self, pos: usize, job: Job) {
        *self.slots[pos].stage.lock() = job;
    }

    /// The slots no writer has claimed yet. A revocation sweep's
    /// worklist: each still has to be claimed individually (a racing
    /// fill may win any of them first).
    pub(super) fn unclaimed(&self) -> Vec<usize> {
        self.slots
            .iter()
            .enumerate()
            .filter(|(_, s)| !s.claimed.load(Ordering::SeqCst))
            .map(|(i, _)| i)
            .collect()
    }
}
