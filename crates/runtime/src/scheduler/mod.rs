//! The job scheduler: dependency tracking over restartable jobs,
//! sharded for multicore scaling.
//!
//! All worker threads of a node share the runtime storage and a pool of
//! pending jobs (paper §4.2.1). A job is stepped on a worker; if it
//! reports dependencies, it parks until they complete and is then
//! stepped again. Jobs are deduplicated by identity, so concurrent
//! requests for the same evaluation share one execution — Fix's
//! determinism makes this safe, and it is also what makes jobs freely
//! *stealable*: a content-addressed job produces the same result no
//! matter which thread runs it, so no scheduler state pins work to a
//! thread.
//!
//! # The three layers
//!
//! The scheduler used to funnel every submit, dequeue, completion, and
//! watcher fill through one `Mutex<Shared>`. That monolith is now three
//! independently synchronized layers:
//!
//! 1. **The sharded job map** (`jobmap`) — per-job bookkeeping
//!    (state, queue tokens, the live-token claim bit, interest
//!    refcounts, pins, respin counters, dependency waiters, batch
//!    watchers) lives in a 32-way hash-sharded map. Unrelated jobs
//!    never share a lock; one job's submit-claim-complete round-trip
//!    touches only its own shard. Dependency edges cross shards through
//!    an atomic waitgroup (`jobmap::DepWait`), never by nesting shard
//!    locks.
//! 2. **Work-stealing deques** (`deques`) — the run queue is 16 slots
//!    × one deque per `Priority` tier. A thread pushes and pops its own
//!    slot LIFO (depth-first, cache-warm) and steals FIFO from other
//!    slots when empty, scanning the highest tier first. Priority
//!    ordering is therefore **strict within a slot but only eventual
//!    across slots**: a busy worker finishes its own lower-tier job
//!    before anyone notices the higher-tier token in its deque — but
//!    any thread going idle steals tier-major, so high-tier work is
//!    picked up as soon as any capacity frees. Stale tokens are skipped
//!    and deadlines expire lazily *at the claiming worker*, under the
//!    job's shard lock.
//! 3. **Lock-free batch fills** (`batch`) — a watched batch's slots
//!    are filled by first-writer-wins CAS claims; `remaining` counts
//!    down atomically and only the final fill touches the condvar (and
//!    only when someone is parked). Completions no longer take any
//!    global lock to notify tickets.
//!
//! # Driving and watching
//!
//! The scheduler can be driven two ways:
//!
//! * **inline** ([`Scheduler::run_inline`]) — the calling thread drains
//!   jobs itself; this is the microsecond path used when a client
//!   evaluates a single computation (no thread handoff);
//! * **pooled** ([`WorkerPool`]) — N worker threads drain jobs
//!   concurrently, each pinned to its own deque slot; independent
//!   sub-computations (e.g. the branches of a parallel map) run in
//!   parallel, and idle workers steal.
//!
//! Batches can also be **watched** instead of driven:
//! `submit_watched_with` enqueues a set of roots and registers a
//! `BatchState` that the completion path fills in as each root
//! finishes — no caller thread parked, no per-job polling. This is the
//! mechanism behind the One Fix API's submission tickets
//! (`fix_core::api::SubmitApi`); `wait_batch` turns the calling thread
//! into an inline driver until the watched batch is done.
//!
//! Watched submissions are *request scoped* (`fix_core::api::SubmitOptions`):
//!
//! * **priority** — a job's tier is set at its first enqueue; a later
//!   *higher*-priority submission of a deduplicated job promotes the
//!   entry and pushes a fresh token at the higher tier (priority
//!   inheritance), so shared work runs at the urgency of the most
//!   urgent request that wants it.
//! * **deadlines** — a watched batch may carry an absolute deadline on
//!   the scheduler's virtual clock; queued work whose deadline has
//!   passed is expired *lazily at claim*: the expired slots fail with
//!   `Error::DeadlineExceeded`, and the job itself is skipped when no
//!   live request still wants it — dead work is withdrawn, not executed.
//! * **cancellation** — `cancel_batch` fails a batch's unresolved slots
//!   with `Error::Cancelled` and withdraws still-queued jobs no other
//!   live request shares, via the per-job interest refcount the job map
//!   keeps (watched slots + pinned fire-and-forget submissions +
//!   dependency waiters all count as interest).
//! * **strict mode** — a strict slot watches the whole eval→force job
//!   chain: when its `Eval` completes, the watcher *chains* onto the
//!   `Force` of the produced value instead of filling, so the slot
//!   resolves exactly when a blocking `eval_strict` would return.
//!
//! # Parking and stall detection
//!
//! With no global lock, "nothing left to do" is answered by three
//! SeqCst counters: `queued` (tokens in any deque, maintained
//! increment-before-push / decrement-after-pop), `executing` (claims
//! held by drivers mid-step; a claimant publishes every consequence of
//! its pop — requeues, fills, completions — before releasing), and
//! `workers_running`. A waiter that reads all three as zero has proof
//! no progress is possible — including jobs resident in *other*
//! threads' deques or mid-steal, which a per-queue emptiness scan would
//! miss. Threads park on one condvar behind a `sleepers` count, so the
//! hot path's wakeups are a single atomic load; a bounded park timeout
//! backstops the protocol against lost-wakeup bugs without masking
//! genuine stalls.

mod batch;
mod deques;
mod jobmap;

pub(crate) use batch::BatchState;
use batch::Watcher;
use deques::DequeSet;
use jobmap::{DepWait, JobEntry, JobMap, JobState};

use crate::engine::{Engine, Job, Step};
use fix_core::api::Priority;
use fix_core::error::{Error, Result};
use fix_core::handle::Handle;
use fix_obs::EventKind;
use parking_lot::{Condvar, Mutex};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Requeue bound before a job is declared stuck (see [`JobEntry::respins`]).
const MAX_RESPINS: u32 = 10_000;

/// Upper bound on any single park. The notify protocol is designed to
/// be lossless; the timeout converts a protocol bug into bounded extra
/// latency instead of a hang, and costs nothing on the hot path (a
/// parked thread is off the hot path by definition).
const PARK_SAFETY: Duration = Duration::from_millis(2);

/// Compact trace identity of a job: the first 8 bytes of its handle.
/// Collisions are irrelevant — ids only correlate events in a trace.
pub(crate) fn job_trace_id(job: &Job) -> u64 {
    let (Job::Eval(h) | Job::Resolve(h) | Job::Force(h)) = job;
    u64::from_le_bytes(h.raw()[..8].try_into().expect("handle has 32 bytes"))
}

/// The shared scheduler for one node.
pub struct Scheduler {
    engine: Arc<Engine>,
    /// Layer 1: per-job bookkeeping, sharded by job hash.
    jobs: JobMap,
    /// Layer 2: the tiered work-stealing run queue.
    deques: DequeSet,
    /// Park control. Never held while doing work — only around the
    /// park/notify handshake, so a notifier can't slip between a
    /// sleeper's predicate check and its wait.
    park: Mutex<()>,
    cv: Condvar,
    /// Threads currently inside [`park_unless`](Scheduler::park_unless).
    /// Notifiers skip the lock entirely while this is zero.
    sleepers: AtomicUsize,
    /// Threads currently blocked in the condvar wait — a
    /// registry-adoptable gauge (`sched.parked`) mirroring `sleepers`
    /// for the waiting span only, so load controllers can read idle
    /// capacity like any other metric. Wall-timing dependent:
    /// diagnostic only, never part of a deterministic table.
    parked: fix_obs::Gauge,
    /// Claims held by drivers mid-step (see [`Claim`]).
    executing: AtomicUsize,
    shutdown: AtomicBool,
    /// Number of pool workers attached (used for stall detection).
    workers_running: AtomicUsize,
    /// The virtual clock (µs) submission deadlines are measured on.
    /// Advanced only by the embedder, never by wall time, so expiry is
    /// deterministic.
    clock: AtomicU64,
}

/// What became of a popped token once the job map adjudicated it.
enum TokenVerdict {
    /// Dead token (withdrawn, duplicate, or moved-on job); pop again.
    Stale,
    /// Live token claimed, but expiry left the job wanted by nothing —
    /// withdrawn instead of executed. `woke` = an expired fill
    /// completed some batch, so sleepers need a nudge.
    Skipped { woke: bool },
    /// Live token claimed; run the job.
    Run { woke: bool },
}

impl Scheduler {
    /// Creates a scheduler over an engine.
    pub fn new(engine: Arc<Engine>) -> Scheduler {
        Scheduler {
            engine,
            jobs: JobMap::new(),
            deques: DequeSet::new(),
            park: Mutex::new(()),
            cv: Condvar::new(),
            sleepers: AtomicUsize::new(0),
            parked: fix_obs::Gauge::new(),
            executing: AtomicUsize::new(0),
            shutdown: AtomicBool::new(false),
            workers_running: AtomicUsize::new(0),
            clock: AtomicU64::new(0),
        }
    }

    /// The engine this scheduler drives.
    pub fn engine(&self) -> &Engine {
        &self.engine
    }

    /// The virtual clock, in µs.
    pub fn virtual_now(&self) -> u64 {
        self.clock.load(Ordering::Relaxed)
    }

    /// Advances the virtual clock by `us` µs. Queued jobs whose batch
    /// deadlines the clock passes expire at their next claim.
    pub fn advance_clock(&self, us: u64) {
        self.clock.fetch_add(us, Ordering::Relaxed);
    }

    /// Jobs claimed out of another thread's deque slot since this
    /// scheduler was built (diagnostic; the starvation pin asserts a
    /// stuck batch completes via exactly this).
    pub fn steals(&self) -> u64 {
        self.deques.steals()
    }

    /// The live steal counter, for adoption into a metrics registry
    /// (same cell [`steals`](Scheduler::steals) reads).
    pub fn steals_counter(&self) -> fix_obs::Counter {
        self.deques.steals_counter()
    }

    /// The live parked-threads gauge, for adoption into a metrics
    /// registry under `sched.parked` (wall-timing dependent, so it
    /// feeds diagnostics, never deterministic tables).
    pub fn parked_gauge(&self) -> fix_obs::Gauge {
        self.parked.clone()
    }

    /// The live steal-rate gauge (steals per 1000 pops), for adoption
    /// into a metrics registry under `sched.steal_rate`.
    pub fn steal_rate_gauge(&self) -> fix_obs::Gauge {
        self.deques.steal_rate_gauge()
    }

    /// Emits a scheduler trace event for `job`. The disabled path is
    /// one relaxed atomic load (argument evaluation included).
    #[inline]
    fn trace_job(&self, kind: EventKind, job: &Job, a: u32, b: u32) {
        if fix_obs::tracing_enabled() {
            fix_obs::emit(kind, self.virtual_now(), job_trace_id(job), a, b);
        }
    }

    // ----------------------------------------------------------------
    // Submission

    /// Submits a job if it is not already known, pinning it: a
    /// fire-and-forget submission has no ticket whose cancellation
    /// could withdraw it. Returns immediately.
    pub fn submit(&self, job: Job) {
        self.trace_job(
            EventKind::SchedSubmit,
            &job,
            0,
            Priority::Normal.tier() as u32,
        );
        let pushed = {
            let mut shard = self.jobs.shard(&job);
            self.enqueue_entry(shard.entry(job).or_default(), job, Priority::Normal, true)
        };
        if pushed {
            self.notify_sleepers();
        }
    }

    /// Core enqueue under the job's shard lock: refreshes the entry
    /// and, unless a live token already floats, pushes a fresh token
    /// into the calling thread's deque slot at the job's tier. Returns
    /// whether a token was pushed (the caller wakes sleepers *after*
    /// releasing the shard).
    ///
    /// A revived (previously withdrawn) job always gets a fresh token
    /// at the *reviving* submission's tier — its stale token keeps
    /// floating in the old tier and is skipped at claim (though a stale
    /// token in a higher tier may still dispatch the job earlier than
    /// the new tier would; never later).
    ///
    /// A later *higher*-priority submission of an already-queued job
    /// promotes the entry and pushes an extra token at the higher tier
    /// (priority inheritance for deduplicated work): the live-token
    /// claim bit keeps execution exactly-once, and whichever token pops
    /// first — usually the higher-tier one — runs the job, leaving the
    /// other to be skipped as stale.
    fn enqueue_entry(
        &self,
        entry: &mut JobEntry,
        job: Job,
        priority: Priority,
        pinned: bool,
    ) -> bool {
        if pinned {
            entry.pinned = true;
        }
        if entry.state.is_none() {
            // Fresh (or previously withdrawn) job: it runs at the tier
            // of the submission reviving it.
            entry.priority = priority;
            entry.state = Some(JobState::Queued);
            if !entry.enqueued {
                entry.enqueued = true;
                entry.tokens += 1;
                self.push_token(job, entry.priority.tier());
                return true;
            }
        } else if priority < entry.priority {
            entry.priority = priority;
            if matches!(entry.state, Some(JobState::Queued)) && entry.enqueued {
                // Priority inheritance: re-token the queued job at the
                // higher tier instead of only promoting future enqueues.
                entry.tokens += 1;
                self.push_token(job, priority.tier());
                return true;
            }
        }
        false
    }

    /// Requeues a job that already has an entry (dependency satisfied,
    /// or a benign respin).
    fn requeue(&self, job: Job) {
        let pushed = {
            let mut shard = self.jobs.shard(&job);
            let entry = shard.entry(job).or_default();
            entry.state = Some(JobState::Queued);
            if !entry.enqueued {
                entry.enqueued = true;
                entry.tokens += 1;
                self.push_token(job, entry.priority.tier());
                true
            } else {
                false
            }
        };
        if pushed {
            self.notify_sleepers();
        }
    }

    /// Pushes a queue token to the calling thread's home slot. Safe
    /// under a shard lock: deque mutexes are leaves (never held while
    /// acquiring anything else).
    fn push_token(&self, job: Job, tier: usize) {
        let slot = deques::current_slot();
        self.trace_job(EventKind::SchedEnqueue, &job, slot as u32, tier as u32);
        self.deques.push(slot, tier, job);
    }

    /// Submits every root and registers a completion watcher for each,
    /// returning immediately — no caller thread is parked. Roots that
    /// already finished fill their slots on the spot; the rest fill as
    /// the completion path reaches them. Each root is `(job,
    /// then_force)`: a strict slot submits its `Eval` with
    /// `then_force`, and the watcher chains onto the `Force` of the
    /// result when the eval completes. This is the scheduler half of
    /// the One Fix API's `submit_with`.
    pub(crate) fn submit_watched_with(
        &self,
        roots: &[(Job, bool)],
        deadline_us: Option<u64>,
        priority: Priority,
    ) -> Arc<BatchState> {
        let state = Arc::new(BatchState::new(roots, deadline_us, priority));
        for (pos, &(job, then_force)) in roots.iter().enumerate() {
            self.trace_job(
                EventKind::SchedSubmit,
                &job,
                pos as u32,
                priority.tier() as u32,
            );
            self.watch_job(&state, pos, job, then_force, false);
        }
        state
    }

    /// Points slot `pos` of `state` at `job`: fills immediately if the
    /// job already finished (chaining through `Force` for strict
    /// slots), otherwise enqueues the job at the batch's tier and
    /// registers the completion watcher on the job's shard entry,
    /// counting one unit of interest.
    ///
    /// `stage_moved` says whether `job` differs from the slot's
    /// recorded stage job: false for the initial watch (the slot was
    /// constructed pointing at its root job), true when a strict chain
    /// advanced onto the `Force`. A moved stage is recorded (and the
    /// slot's claim re-checked) *under the new stage's shard lock*,
    /// which is the chain's half of the revocation protocol — see the
    /// `batch` module docs.
    fn watch_job(
        &self,
        state: &Arc<BatchState>,
        pos: usize,
        job: Job,
        then_force: bool,
        stage_moved: bool,
    ) {
        let (mut job, mut then_force, mut stage_moved) = (job, then_force, stage_moved);
        loop {
            let fill_now: Result<Handle>;
            {
                let mut shard = self.jobs.shard(&job);
                match shard.get(&job).and_then(|e| e.state.clone()) {
                    Some(JobState::Done(h)) if then_force => {
                        // The eval stage is already memoized: the
                        // slot's fate rests on the force of its value.
                        drop(shard);
                        job = Job::Force(h);
                        then_force = false;
                        stage_moved = true;
                        continue;
                    }
                    Some(JobState::Done(h)) => fill_now = Ok(h),
                    Some(JobState::Failed(e)) => fill_now = Err(e),
                    _ => {
                        if stage_moved {
                            state.set_stage(pos, job);
                        }
                        if state.slot_claimed(pos) {
                            // Revoked while the chain advanced: the
                            // revoker owns the slot's result; register
                            // nothing.
                            return;
                        }
                        let entry = shard.entry(job).or_default();
                        let pushed = self.enqueue_entry(entry, job, state.priority, false);
                        entry.interest += 1;
                        entry.watchers.push(Watcher {
                            state: Arc::clone(state),
                            pos,
                            then_force,
                        });
                        drop(shard);
                        if pushed {
                            self.notify_sleepers();
                        }
                        return;
                    }
                }
            }
            if state.fill(pos, fill_now) {
                self.notify_sleepers();
            }
            return;
        }
    }

    // ----------------------------------------------------------------
    // Driving

    /// Drives jobs on the calling thread until the watched batch
    /// completes; cooperates with pool workers and other inline drivers
    /// exactly like [`run_inline`](Scheduler::run_inline). On a genuine
    /// stall the batch's unfinished slots are failed (and its watchers
    /// deregistered) instead of parking forever.
    pub(crate) fn wait_batch(&self, state: &Arc<BatchState>) {
        loop {
            if state.is_done() {
                return;
            }
            if let Some(claim) = self.try_claim() {
                claim.execute();
                continue;
            }
            let mut stalled = false;
            self.park_unless(PARK_SAFETY, || {
                state.is_done() || self.deques.queued() > 0 || {
                    stalled = self.stalled_now();
                    stalled
                }
            });
            if stalled {
                if state.is_done() {
                    return;
                }
                self.fail_stalled(state);
                return;
            }
        }
    }

    /// Bounded progress toward a watched batch: steps one queued job
    /// inline if there is one, otherwise parks for at most `timeout`
    /// awaiting someone else's progress (or fails the batch on a genuine
    /// stall). The building block of `wait_any`-style multiplexing.
    pub(crate) fn advance_batch(&self, state: &Arc<BatchState>, timeout: Duration) {
        if state.is_done() {
            return;
        }
        if let Some(claim) = self.try_claim() {
            claim.execute();
            return;
        }
        let mut stalled = false;
        self.park_unless(timeout, || {
            state.is_done() || self.deques.queued() > 0 || {
                stalled = self.stalled_now();
                stalled
            }
        });
        if stalled && !state.is_done() {
            self.fail_stalled(state);
        }
    }

    /// Drives jobs on the calling thread until `root` completes.
    ///
    /// If worker threads are also draining jobs, this cooperates with
    /// them; when nothing is momentarily claimable it waits for
    /// progress. Kept allocation-free separately from the watched-batch
    /// path (`submit_watched_with` + `wait_batch`, which backs
    /// `Runtime::eval_many` and the submission tickets) — this is the
    /// Fig. 7a microsecond path — with the subtle parts (executor
    /// claims, the stall predicate) shared between the two loops.
    pub fn run_inline(&self, root: Job) -> Result<Handle> {
        self.submit(root);
        loop {
            if let Some(result) = self.poll(root) {
                return result;
            }
            if let Some(claim) = self.try_claim() {
                claim.execute();
                continue;
            }
            let mut stalled = false;
            self.park_unless(PARK_SAFETY, || {
                self.poll(root).is_some() || self.deques.queued() > 0 || {
                    stalled = self.stalled_now();
                    stalled
                }
            });
            if stalled {
                // Re-poll once: the finishing step and our stall read
                // can race, and a result always wins over the error.
                if let Some(result) = self.poll(root) {
                    return result;
                }
                return Err(Error::Trap(format!(
                    "evaluation stalled: no runnable jobs for {root}"
                )));
            }
        }
    }

    /// Claims the next runnable job for this thread: raises the
    /// executor claim, then pops tokens (own slot first, then steals)
    /// until the job map confirms one live — skipping stale tokens and
    /// lazily expiring deadline-passed watcher slots, the "expire at
    /// claim" half of request-scoped submission. Returns `None` (and
    /// drops the claim) when no runnable token is left anywhere.
    fn try_claim(&self) -> Option<Claim<'_>> {
        if self.deques.queued() == 0 {
            return None;
        }
        // Raise the claim *before* popping: from here until release,
        // a stall checker reading `executing == 0` cannot miss us.
        self.executing.fetch_add(1, Ordering::SeqCst);
        let home = deques::current_slot();
        loop {
            let Some(job) = self.deques.pop(home) else {
                self.release_claim();
                return None;
            };
            match self.adjudicate_token(job) {
                TokenVerdict::Stale => continue,
                TokenVerdict::Skipped { woke } => {
                    if woke {
                        self.notify_sleepers();
                    }
                    continue;
                }
                TokenVerdict::Run { woke } => {
                    if woke {
                        self.notify_sleepers();
                    }
                    return Some(Claim {
                        scheduler: self,
                        job,
                    });
                }
            }
        }
    }

    /// Decides a popped token's fate under the job's shard lock.
    fn adjudicate_token(&self, job: Job) -> TokenVerdict {
        let mut shard = self.jobs.shard(&job);
        let Some(entry) = shard.get_mut(&job) else {
            return TokenVerdict::Stale; // Withdrawn and fully dropped.
        };
        entry.tokens = entry.tokens.saturating_sub(1);
        if !(matches!(entry.state, Some(JobState::Queued)) && entry.enqueued) {
            // Stale token: the job was withdrawn, is already being
            // stepped by someone who claimed the live token, or has
            // moved on entirely.
            if entry.disposable() {
                shard.remove(&job);
            }
            return TokenVerdict::Stale;
        }
        // Claim the live token: from here the job counts as being
        // stepped (never withdrawable), not as queued.
        entry.enqueued = false;
        // Lazy deadline expiry at the claiming worker. The per-entry
        // watcher list keeps the no-watched-batches case (plain `eval`
        // inline driving) at a single emptiness check.
        let mut woke = false;
        if !entry.watchers.is_empty() {
            let now = self.clock.load(Ordering::Relaxed);
            let expires = |w: &Watcher| matches!(w.state.deadline_us, Some(d) if now > d);
            if entry.watchers.iter().any(expires) {
                let mut kept = Vec::with_capacity(entry.watchers.len());
                let mut expired = 0u32;
                for w in std::mem::take(&mut entry.watchers) {
                    if expires(&w) {
                        entry.interest = entry.interest.saturating_sub(1);
                        expired += 1;
                        let deadline_us = w.state.deadline_us.expect("expired ⇒ has deadline");
                        woke |= w
                            .state
                            .fill(w.pos, Err(Error::DeadlineExceeded { deadline_us }));
                    } else {
                        kept.push(w);
                    }
                }
                entry.watchers = kept;
                self.trace_job(EventKind::SchedExpire, &job, 0, expired);
            }
        }
        if entry.wanted() {
            TokenVerdict::Run { woke }
        } else {
            // Nothing live wants this job, and the claim is ours:
            // withdraw instead of executing dead work.
            entry.state = None;
            if entry.tokens == 0 {
                shard.remove(&job);
            }
            TokenVerdict::Skipped { woke }
        }
    }

    // ----------------------------------------------------------------
    // Execution

    /// Steps a job and records the outcome.
    ///
    /// A panicking codelet is caught at this boundary and recorded as a
    /// guest [`Error::Trap`] — panics are guest faults like VM traps, and
    /// converting them here lets failure propagation wake every waiter.
    /// Letting the panic unwind instead would lose the job (its entry
    /// stays `Queued` but it is no longer in any deque), permanently
    /// hanging any driver or pool waiting on it.
    fn execute(&self, job: Job) {
        let t0 = fix_obs::tracing_enabled().then(Instant::now);
        let step = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| self.engine.step(job)))
            .unwrap_or_else(|payload| {
                let msg = payload
                    .downcast_ref::<&str>()
                    .map(|s| s.to_string())
                    .or_else(|| payload.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "unknown panic".into());
                Err(Error::Trap(format!("codelet panicked: {msg}")))
            });
        if let Some(t0) = t0 {
            // Parked-on-deps steps count too: the span is "worker held
            // this job", whatever the step reported.
            let parked = matches!(step, Ok(Step::Deps(_))) as u32;
            fix_obs::emit_span(
                EventKind::SchedExecute,
                self.virtual_now(),
                job_trace_id(&job),
                deques::current_slot() as u32,
                parked,
                t0.elapsed().as_nanos() as u64,
            );
        }
        match step {
            Ok(Step::Done(h)) => self.complete_job(job, Ok(h)),
            Err(e) => self.complete_job(job, Err(e)),
            Ok(Step::Deps(deps)) => self.park_on_deps(job, deps),
        }
        self.notify_sleepers();
    }

    /// Parks a stepped job on its unfinished dependencies via a fresh
    /// [`DepWait`] waitgroup, enqueueing each pending dependency at the
    /// job's own tier. The waitgroup's guard unit (held until the job's
    /// state is safely `Waiting`) is what makes the park race-free
    /// against dependencies completing on other shards mid-registration.
    fn park_on_deps(&self, job: Job, deps: Vec<Job>) {
        // Dependencies run at the tier of the job that needs them.
        let tier = {
            self.jobs
                .shard(&job)
                .get(&job)
                .map(|e| e.priority)
                .unwrap_or_default()
        };
        let wait = Arc::new(DepWait {
            job,
            pending: AtomicUsize::new(1), // registration guard
            fired: AtomicBool::new(false),
        });
        let mut registered = 0usize;
        let mut failed: Option<Error> = None;
        let mut pushed_any = false;
        for dep in deps {
            let mut shard = self.jobs.shard(&dep);
            match shard.get(&dep).and_then(|e| e.state.clone()) {
                Some(JobState::Done(_)) => {}
                Some(JobState::Failed(e)) => {
                    failed = Some(e);
                    break;
                }
                _ => {
                    let entry = shard.entry(dep).or_default();
                    pushed_any |= self.enqueue_entry(entry, dep, tier, false);
                    entry.waiters.push(Arc::clone(&wait));
                    wait.pending.fetch_add(1, Ordering::AcqRel);
                    registered += 1;
                }
            }
        }
        if pushed_any {
            self.notify_sleepers();
        }
        if let Some(e) = failed {
            // A dependency already failed: the job fails now. Neutralize
            // the waitgroup so completions of the deps we did register
            // with cannot requeue or re-fail it.
            wait.fired.store(true, Ordering::SeqCst);
            self.complete_job(job, Err(e));
            return;
        }
        enum After {
            Requeue,
            Stuck,
            Parked,
        }
        let after = {
            let mut shard = self.jobs.shard(&job);
            let entry = shard.entry(job).or_default();
            if registered == 0 {
                // Everything finished in the meantime; go again — but
                // bound the spins: if the engine keeps reporting deps
                // the job map says are done, the two memo layers are
                // out of sync (e.g. the relation cache was cleared
                // without resetting the scheduler).
                entry.respins += 1;
                if entry.respins > MAX_RESPINS {
                    After::Stuck
                } else {
                    After::Requeue
                }
            } else {
                entry.respins = 0;
                // The state moves to Waiting *before* the guard unit is
                // released below: a dependency completing right now
                // still sees pending > 0, so the requeue cannot fire
                // until we are done here.
                entry.state = Some(JobState::Waiting);
                After::Parked
            }
        };
        match after {
            After::Requeue => {
                wait.fired.store(true, Ordering::SeqCst);
                self.requeue(job);
            }
            After::Stuck => {
                wait.fired.store(true, Ordering::SeqCst);
                self.complete_job(
                    job,
                    Err(Error::Trap(format!(
                        "scheduler stuck re-stepping {job}: job states and the \
                         relation cache disagree (was the cache cleared without \
                         Runtime::clear_memoization?)"
                    ))),
                );
            }
            After::Parked => {
                // Release the registration guard; if every dependency
                // finished while we registered, the requeue is ours.
                if wait.pending.fetch_sub(1, Ordering::AcqRel) == 1
                    && !wait.fired.swap(true, Ordering::AcqRel)
                {
                    self.requeue(job);
                }
            }
        }
    }

    /// Marks a job finished and wakes its (transitive) waiters, filling
    /// the slots of any watched batches as it goes (the completion
    /// notification hook behind submission tickets). A strict slot's
    /// watcher does not fill on its eval stage — it chains onto the
    /// `Force` of the produced value, re-registering on that job.
    fn complete_job(&self, job: Job, result: Result<Handle>) {
        // Worklist of (job, result) so failure propagation is iterative.
        let mut worklist: Vec<(Job, Result<Handle>)> = vec![(job, result)];
        let mut woke = false;
        while let Some((job, result)) = worklist.pop() {
            self.trace_job(EventKind::SchedComplete, &job, 0, result.is_err() as u32);
            let (waiters, watchers) = {
                let mut shard = self.jobs.shard(&job);
                let entry = shard.entry(job).or_default();
                entry.state = Some(match &result {
                    Ok(h) => JobState::Done(*h),
                    Err(e) => JobState::Failed(e.clone()),
                });
                let watchers = std::mem::take(&mut entry.watchers);
                entry.interest = entry.interest.saturating_sub(watchers.len());
                (std::mem::take(&mut entry.waiters), watchers)
            };
            // Shard released: fills and chains below take other locks.
            for w in watchers {
                match (&result, w.then_force) {
                    (Ok(h), true) => {
                        // Strict chain: the slot now rides the
                        // deep-force of the evaluated value.
                        self.watch_job(&w.state, w.pos, Job::Force(*h), false, true);
                    }
                    _ => woke |= w.state.fill(w.pos, result.clone()),
                }
            }
            for wait in waiters {
                match &result {
                    Ok(_) => {
                        if wait.pending.fetch_sub(1, Ordering::AcqRel) == 1
                            && !wait.fired.swap(true, Ordering::AcqRel)
                        {
                            self.requeue(wait.job);
                        }
                    }
                    Err(e) => {
                        // Fail the waiter and its waiters transitively
                        // (exactly once, however many of its deps fail).
                        if !wait.fired.swap(true, Ordering::AcqRel) {
                            worklist.push((wait.job, Err(e.clone())));
                        }
                    }
                }
            }
        }
        if woke {
            self.notify_sleepers();
        }
    }

    // ----------------------------------------------------------------
    // Revocation (cancel, stall, expiry)

    /// Cancels a watched batch (the ticket was cancelled or dropped
    /// unresolved): unresolved slots fail with [`Error::Cancelled`],
    /// their watchers are deregistered, and still-queued jobs that no
    /// other live request shares are withdrawn — they will be skipped
    /// at claim instead of executed. Jobs that are shared, depended
    /// on, pinned, or already executing stay ordinary scheduler state
    /// and complete normally.
    pub(crate) fn cancel_batch(&self, state: &Arc<BatchState>) {
        for pos in state.unclaimed() {
            self.trace_job(EventKind::SchedCancel, &state.stage(pos), pos as u32, 0);
            self.revoke_slot(state, pos, true, |_| Error::Cancelled);
        }
        // A concurrent waiter of another ticket may be parked on this
        // batch's jobs; the withdrawal changed what is runnable.
        self.notify_sleepers();
    }

    /// Fails a watched batch's unfinished slots with the stall error
    /// (mirroring what [`run_inline`](Scheduler::run_inline) reports)
    /// and deregisters its watchers, so the waiter returns instead of
    /// parking on a graph that can never progress. Queued jobs are left
    /// alone — there is nothing to withdraw from a drained queue.
    fn fail_stalled(&self, state: &Arc<BatchState>) {
        for pos in state.unclaimed() {
            self.revoke_slot(state, pos, false, |job| {
                Error::Trap(format!("evaluation stalled: no runnable jobs for {job}"))
            });
        }
        self.notify_sleepers();
    }

    /// Revokes one slot: claims it (backing off if a racing fill won),
    /// deregisters its watcher from whichever job the slot's stage
    /// chain currently points at, optionally withdraws orphaned queued
    /// work, and writes the error. The stage re-read loop pairs with
    /// [`watch_job`](Scheduler::watch_job)'s record-stage-then-check-
    /// claim ordering (see the `batch` module docs): however the race
    /// lands, no watcher survives the revocation.
    fn revoke_slot(
        &self,
        state: &Arc<BatchState>,
        pos: usize,
        withdraw: bool,
        err: impl Fn(Job) -> Error,
    ) {
        if !state.claim_slot(pos) {
            return; // A fill got here first; the slot has a result.
        }
        let mut stage = state.stage(pos);
        loop {
            {
                let mut shard = self.jobs.shard(&stage);
                if let Some(entry) = shard.get_mut(&stage) {
                    let before = entry.watchers.len();
                    entry
                        .watchers
                        .retain(|w| !(Arc::ptr_eq(&w.state, state) && w.pos == pos));
                    entry.interest = entry.interest.saturating_sub(before - entry.watchers.len());
                    if withdraw
                        && !entry.wanted()
                        && matches!(entry.state, Some(JobState::Queued))
                        && entry.enqueued
                    {
                        // Genuinely in a deque (live token unclaimed —
                        // a popped, mid-step job must complete, or a
                        // later submission of the same job could run it
                        // twice concurrently) and nothing live wants
                        // it: withdraw. The stale token is skipped at
                        // claim, which also drops the entry once the
                        // last token drains.
                        entry.state = None;
                        entry.enqueued = false;
                    }
                }
            }
            let now = state.stage(pos);
            if now == stage {
                break;
            }
            stage = now; // The chain advanced mid-revoke; chase it.
        }
        if state.finish_claimed(pos, Err(err(stage))) {
            self.notify_sleepers();
        }
    }

    // ----------------------------------------------------------------
    // Queries and maintenance

    /// Returns the job's result if it has finished.
    pub fn poll(&self, job: Job) -> Option<Result<Handle>> {
        match self
            .jobs
            .shard(&job)
            .get(&job)
            .and_then(|e| e.state.as_ref())
        {
            Some(JobState::Done(h)) => Some(Ok(*h)),
            Some(JobState::Failed(e)) => Some(Err(e.clone())),
            _ => None,
        }
    }

    /// Blocks until the job completes (requires a running [`WorkerPool`]
    /// or another thread driving the queue). The job should have been
    /// submitted with [`submit`](Scheduler::submit), which pins it —
    /// an unpinned job could be withdrawn by a cancellation and never
    /// complete.
    pub fn wait(&self, job: Job) -> Result<Handle> {
        loop {
            if let Some(result) = self.poll(job) {
                return result;
            }
            self.park_unless(PARK_SAFETY, || self.poll(job).is_some());
        }
    }

    /// Registered completion watchers across all watched batches
    /// (diagnostic; the leak test pins this to zero after tickets are
    /// resolved or dropped).
    pub fn watcher_count(&self) -> usize {
        let mut n = 0;
        self.jobs
            .for_each_shard(|map| n += map.values().map(|e| e.watchers.len()).sum::<usize>());
        n
    }

    /// Jobs currently queued for (or undergoing) execution. Withdrawn
    /// jobs do not count: after cancelling the only ticket that wanted
    /// a batch, a quiescent scheduler reports zero — the "no orphaned
    /// queued work" half of the ticket-leak pin.
    pub fn queued_jobs(&self) -> usize {
        let mut n = 0;
        self.jobs.for_each_shard(|map| {
            n += map
                .values()
                .filter(|e| matches!(e.state, Some(JobState::Queued)))
                .count();
        });
        n
    }

    /// Discards all job state and any queued work.
    ///
    /// Job completion records double as a memo consistent with the
    /// engine's relation cache, so the two must be cleared together
    /// (see [`Runtime::clear_memoization`](crate::Runtime::clear_memoization)).
    /// Must only be called while no evaluation is in flight; queued jobs
    /// are dropped and their waiters never woken. Watched batches still
    /// in flight are failed loudly rather than silently forgotten, so a
    /// leaked ticket wait cannot hang.
    pub fn reset(&self) {
        self.deques.drain_all();
        let mut stranded: Vec<(Job, Watcher)> = Vec::new();
        self.jobs.for_each_shard(|map| {
            for (job, entry) in map.iter_mut() {
                for w in std::mem::take(&mut entry.watchers) {
                    stranded.push((*job, w));
                }
            }
            map.clear();
        });
        for (job, w) in stranded {
            w.state.fill(
                w.pos,
                Err(Error::Trap(format!(
                    "scheduler reset while {job} was in flight"
                ))),
            );
        }
        self.notify_sleepers();
    }

    /// Drops one finished job record, so a later submission re-steps it
    /// against the engine instead of short-circuiting to the recorded
    /// result. No-op if the job is still queued, running, or waited on.
    ///
    /// Used by recompute-on-demand after the matching relation-cache
    /// entries are removed, keeping the invariant that a `Done` job
    /// record always has its relations memoized.
    pub fn forget(&self, job: Job) {
        let mut shard = self.jobs.shard(&job);
        if let Some(entry) = shard.get(&job) {
            if entry.finished() && entry.waiters.is_empty() && entry.tokens == 0 {
                shard.remove(&job);
            }
        }
    }

    /// Drops completed job records that nothing waits on, bounding the
    /// job map for long-lived nodes. Results stay reproducible: the
    /// engine's relation cache still memoizes the underlying relations,
    /// so a re-submitted job completes from cache without re-running
    /// procedures.
    pub fn forget_finished(&self) -> usize {
        let mut dropped = 0;
        self.jobs.for_each_shard(|map| {
            let before = map.len();
            map.retain(|_, e| !e.finished() || !e.waiters.is_empty() || e.tokens > 0);
            dropped += before - map.len();
        });
        dropped
    }

    // ----------------------------------------------------------------
    // Parking

    /// True when no one can make progress: no pool workers, no driver
    /// mid-step, and no token in any deque — *including other threads'
    /// slots and tokens mid-steal*, which is exactly what the `queued`
    /// counter (increment-before-push / decrement-after-pop, with the
    /// popper's claim held until its consequences are published) exists
    /// to make checkable from one thread.
    fn stalled_now(&self) -> bool {
        self.workers_running.load(Ordering::SeqCst) == 0
            && self.executing.load(Ordering::SeqCst) == 0
            && self.deques.queued() == 0
    }

    /// Parks the calling thread until a notify (or the safety timeout),
    /// unless `ready` already holds once the park lock is taken. The
    /// sleepers-count handshake with [`notify_sleepers`] guarantees
    /// that any state change making `ready` true after our check — all
    /// of which notify under the park lock when sleepers > 0 — wakes
    /// us. Callers re-check their predicate in a loop.
    fn park_unless(&self, cap: Duration, mut ready: impl FnMut() -> bool) {
        self.sleepers.fetch_add(1, Ordering::SeqCst);
        let mut guard = self.park.lock();
        if !ready() {
            let t0 = fix_obs::tracing_enabled().then(Instant::now);
            self.parked.add(1);
            self.cv.wait_for(&mut guard, cap);
            self.parked.add(-1);
            if let Some(t0) = t0 {
                fix_obs::emit_span(
                    EventKind::SchedPark,
                    self.virtual_now(),
                    0,
                    deques::current_slot() as u32,
                    0,
                    t0.elapsed().as_nanos() as u64,
                );
            }
        }
        drop(guard);
        self.sleepers.fetch_sub(1, Ordering::SeqCst);
    }

    /// Wakes parked threads, if any. The sleepers check makes this a
    /// single atomic load on the hot path (nobody parked); when someone
    /// is, the notify happens under the park lock so it cannot slip
    /// between a sleeper's predicate check and its wait. Never call
    /// with a job-map shard locked (lock order: park → shard).
    fn notify_sleepers(&self) {
        let sleepers = self.sleepers.load(Ordering::SeqCst);
        if sleepers > 0 {
            if fix_obs::tracing_enabled() {
                fix_obs::emit(
                    EventKind::SchedUnpark,
                    self.virtual_now(),
                    0,
                    deques::current_slot() as u32,
                    sleepers as u32,
                );
            }
            let _guard = self.park.lock();
            self.cv.notify_all();
        }
    }

    /// Drops an executor claim and re-notifies: the stall predicate may
    /// have just become true for a parked waiter.
    fn release_claim(&self) {
        self.executing.fetch_sub(1, Ordering::SeqCst);
        self.notify_sleepers();
    }

    /// Raises the shutdown flag so workers exit. The store happens
    /// under the park lock: a worker's check-shutdown-then-wait
    /// sequence is atomic only against mutators that hold it.
    fn begin_shutdown(&self) {
        {
            let _guard = self.park.lock();
            self.shutdown.store(true, Ordering::SeqCst);
        }
        self.cv.notify_all();
    }

    fn worker_loop(&self, index: usize) {
        deques::pin_slot(index);
        /// Keeps `workers_running` an honest *live*-worker count: the
        /// decrement runs on every exit, including unwinding out of a
        /// panicking codelet. Without it, a dead worker would satisfy
        /// the stall predicate forever and park inline drivers instead
        /// of letting them report the stall. Decrement under the park
        /// lock + notify, like every other stall-predicate mutation.
        struct LiveWorker<'a>(&'a Scheduler);
        impl Drop for LiveWorker<'_> {
            fn drop(&mut self) {
                {
                    let _guard = self.0.park.lock();
                    self.0.workers_running.fetch_sub(1, Ordering::SeqCst);
                }
                self.0.cv.notify_all();
            }
        }
        let _live = LiveWorker(self);
        loop {
            if self.shutdown.load(Ordering::SeqCst) {
                return;
            }
            if let Some(claim) = self.try_claim() {
                claim.execute();
                continue;
            }
            self.park_unless(PARK_SAFETY, || {
                self.shutdown.load(Ordering::SeqCst) || self.deques.queued() > 0
            });
        }
    }
}

/// A driver's executor claim on one popped job (see
/// [`Scheduler::try_claim`]): while it lives, concurrent drivers that
/// find the deques empty see the in-flight step (via the `executing`
/// counter) instead of reporting a stall. Dropping releases the claim
/// and wakes parked drivers — also on unwind, so a panicking codelet
/// leaves the scheduler consistent (the surviving driver then reports
/// the stall as an error).
struct Claim<'a> {
    scheduler: &'a Scheduler,
    job: Job,
}

impl Claim<'_> {
    /// Steps the claimed job, then releases the claim.
    fn execute(self) {
        self.scheduler.execute(self.job);
        // Release happens in Drop, which also covers the panic path.
    }
}

impl Drop for Claim<'_> {
    fn drop(&mut self) {
        self.scheduler.release_claim();
    }
}

/// A pool of worker threads draining a scheduler's deques, worker `i`
/// pinned to deque slot `i`.
pub struct WorkerPool {
    scheduler: Arc<Scheduler>,
    threads: Vec<std::thread::JoinHandle<()>>,
}

impl WorkerPool {
    /// Spawns `n` workers over the scheduler.
    pub fn spawn(scheduler: Arc<Scheduler>, n: usize) -> WorkerPool {
        scheduler.workers_running.fetch_add(n, Ordering::SeqCst);
        let threads = (0..n)
            .map(|i| {
                let sched = Arc::clone(&scheduler);
                std::thread::Builder::new()
                    .name(format!("fixpoint-worker-{i}"))
                    .spawn(move || sched.worker_loop(i))
                    .expect("spawn worker")
            })
            .collect();
        WorkerPool { scheduler, threads }
    }

    /// Signals shutdown and joins all workers.
    pub fn shutdown(mut self) {
        self.scheduler.begin_shutdown();
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        self.scheduler.begin_shutdown();
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}
