//! Layer 2 of the scheduler: per-slot, per-tier work-stealing deques.
//!
//! The old scheduler kept one global `[VecDeque; TIERS]` under the
//! scheduler mutex; every push and pop serialized on it. Here the run
//! queue is split into [`SLOTS`] independent slots, each holding one
//! deque per `Priority` tier. A thread always pushes to and pops from
//! its *home* slot (pool workers pin slot `i`, every other thread is
//! assigned one round-robin on first contact), so the common case —
//! a worker draining work it or its completions produced — touches one
//! uncontended lock.
//!
//! Dispatch discipline:
//!
//! * **own slot first, LIFO** — the owner pops its most recently pushed
//!   job (depth-first over dependency trees, cache-warm);
//! * **then steal, FIFO** — an empty owner scans the other slots
//!   *highest tier first* and steals the oldest job of the first
//!   non-empty deque it finds, so a hot batch parked behind a busy
//!   worker is picked up by an idle one;
//! * **priority is strict per-slot, eventual across slots** — within
//!   one slot higher tiers always dispatch first, but a thread drains
//!   its own lower-tier work before stealing another slot's
//!   higher-tier work. Steals re-establish the global ordering
//!   whenever any thread goes idle.
//!
//! The deques hold *tokens*, not truth: whether a popped token is live
//! is decided by the job map (layer 1) at claim time, which is also
//! where stale tokens are skipped and deadline-passed watchers expire.
//!
//! `queued` counts tokens across all slots and is maintained
//! increment-before-push / decrement-after-pop, so "every deque is
//! empty" is answerable without sweeping [`SLOTS`]` × TIERS` locks —
//! that single counter is what lets a pool-less waiter's stall check
//! account for jobs resident in *other* threads' slots or mid-steal.

use crate::engine::Job;
use fix_core::api::Priority;
use fix_obs::EventKind;
use parking_lot::Mutex;
use std::cell::Cell;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Slot count. More slots than any plausible worker pool, so pinned
/// workers rarely share a slot with round-robin external submitters.
pub(super) const SLOTS: usize = 16;

thread_local! {
    /// This thread's home slot (`usize::MAX` = not yet assigned).
    static HOME_SLOT: Cell<usize> = const { Cell::new(usize::MAX) };
}

/// Round-robin assignment for threads that never pinned. Starts at
/// `SLOTS / 2` so external threads land away from pool workers (which
/// pin from 0 up).
static NEXT_EXTERNAL_SLOT: AtomicUsize = AtomicUsize::new(SLOTS / 2);

/// Pins the calling thread's home slot (used by pool workers so worker
/// `i` always owns slot `i % SLOTS`).
pub(super) fn pin_slot(i: usize) {
    HOME_SLOT.with(|s| s.set(i % SLOTS));
}

/// The calling thread's home slot, assigning one on first use.
pub(super) fn current_slot() -> usize {
    HOME_SLOT.with(|s| {
        let v = s.get();
        if v != usize::MAX {
            return v;
        }
        let v = NEXT_EXTERNAL_SLOT.fetch_add(1, Ordering::Relaxed) % SLOTS;
        s.set(v);
        v
    })
}

/// The sharded, tiered run queue.
pub(super) struct DequeSet {
    slots: Vec<[Mutex<VecDeque<Job>>; Priority::TIERS]>,
    /// Tokens across all slots; see the module docs for the ordering
    /// contract that makes this the stall check's queue-empty answer.
    queued: AtomicUsize,
    /// Tokens popped from a non-home slot (diagnostic; the starvation
    /// pin asserts this moves). A registry-adoptable counter so
    /// `Runtime` can name it without a second cell.
    steals: fix_obs::Counter,
    /// Total successful pops (own-slot + steals), the denominator of
    /// the steal rate.
    pops: fix_obs::Counter,
    /// Live steal rate in permille of pops (`steals × 1000 / pops`),
    /// refreshed on every successful pop. A registry-adoptable gauge
    /// (`sched.steal_rate`) so load controllers can read scheduler
    /// contention like any other metric. Wall-timing dependent:
    /// diagnostic only, never part of a deterministic table.
    steal_rate: fix_obs::Gauge,
}

impl DequeSet {
    pub(super) fn new() -> DequeSet {
        DequeSet {
            slots: (0..SLOTS)
                .map(|_| std::array::from_fn(|_| Mutex::new(VecDeque::new())))
                .collect(),
            queued: AtomicUsize::new(0),
            steals: fix_obs::Counter::new(),
            pops: fix_obs::Counter::new(),
            steal_rate: fix_obs::Gauge::new(),
        }
    }

    /// Tokens currently in some deque. A zero reading is trustworthy
    /// for stall detection because the counter is incremented *before*
    /// a token becomes poppable and only decremented by a popper that
    /// publishes the pop's consequences before dropping its executor
    /// claim.
    pub(super) fn queued(&self) -> usize {
        self.queued.load(Ordering::SeqCst)
    }

    pub(super) fn steals(&self) -> u64 {
        self.steals.get()
    }

    /// The live steal counter, for registry adoption.
    pub(super) fn steals_counter(&self) -> fix_obs::Counter {
        self.steals.clone()
    }

    /// The live steal-rate gauge (permille of pops), for registry
    /// adoption under `sched.steal_rate`.
    pub(super) fn steal_rate_gauge(&self) -> fix_obs::Gauge {
        self.steal_rate.clone()
    }

    /// Refreshes the steal-rate gauge after a successful pop.
    fn note_pop(&self) {
        self.pops.inc();
        let pops = self.pops.get();
        self.steal_rate
            .set((self.steals.get().saturating_mul(1000) / pops.max(1)) as i64);
    }

    /// Pushes a token onto `home`'s deque for `tier`.
    pub(super) fn push(&self, home: usize, tier: usize, job: Job) {
        self.queued.fetch_add(1, Ordering::SeqCst);
        self.slots[home][tier].lock().push_back(job);
    }

    /// Pops the next token for the thread owning `home`: own slot LIFO
    /// (highest tier first), then a tier-major FIFO steal sweep over
    /// the other slots.
    pub(super) fn pop(&self, home: usize) -> Option<Job> {
        if self.queued() == 0 {
            return None;
        }
        for tier in 0..Priority::TIERS {
            if let Some(job) = self.slots[home][tier].lock().pop_back() {
                self.queued.fetch_sub(1, Ordering::SeqCst);
                self.note_pop();
                if fix_obs::tracing_enabled() {
                    fix_obs::emit(
                        EventKind::SchedPop,
                        0,
                        super::job_trace_id(&job),
                        home as u32,
                        tier as u32,
                    );
                }
                return Some(job);
            }
        }
        for tier in 0..Priority::TIERS {
            for k in 1..SLOTS {
                let victim = (home + k) % SLOTS;
                if let Some(job) = self.slots[victim][tier].lock().pop_front() {
                    self.queued.fetch_sub(1, Ordering::SeqCst);
                    self.steals.inc();
                    self.note_pop();
                    if fix_obs::tracing_enabled() {
                        fix_obs::emit(
                            EventKind::SchedSteal,
                            0,
                            super::job_trace_id(&job),
                            victim as u32,
                            tier as u32,
                        );
                    }
                    return Some(job);
                }
            }
        }
        None
    }

    /// Empties every deque (scheduler reset), returning how many tokens
    /// were dropped.
    pub(super) fn drain_all(&self) -> usize {
        let mut n = 0;
        for slot in &self.slots {
            for tier in slot {
                let mut q = tier.lock();
                n += q.len();
                q.clear();
            }
        }
        if n > 0 {
            self.queued.fetch_sub(n, Ordering::SeqCst);
        }
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fix_core::data::Blob;

    fn job(i: u64) -> Job {
        Job::Eval(Blob::from_u64(i).handle())
    }

    #[test]
    fn own_slot_is_lifo_and_tier_major() {
        let d = DequeSet::new();
        d.push(3, 1, job(1));
        d.push(3, 1, job(2));
        d.push(3, 0, job(3));
        // Tier 0 drains before tier 1; within a tier, newest first.
        assert_eq!(d.pop(3), Some(job(3)));
        assert_eq!(d.pop(3), Some(job(2)));
        assert_eq!(d.pop(3), Some(job(1)));
        assert_eq!(d.pop(3), None);
        assert_eq!(d.queued(), 0);
        assert_eq!(d.steals(), 0);
    }

    #[test]
    fn steals_are_fifo_and_scan_highest_tier_first() {
        let d = DequeSet::new();
        d.push(0, 2, job(10)); // old batch-tier work on slot 0
        d.push(0, 2, job(11));
        d.push(5, 0, job(12)); // newer latency-tier work on slot 5
                               // A thief on slot 9 must take the latency job first even though
                               // slot 0 comes earlier in the ring...
        assert_eq!(d.pop(9), Some(job(12)));
        assert_eq!(d.steals(), 1);
        // ...and then steal slot 0's *oldest* token (FIFO).
        assert_eq!(d.pop(9), Some(job(10)));
        assert_eq!(d.pop(9), Some(job(11)));
        assert_eq!(d.steals(), 3);
        assert_eq!(d.queued(), 0);
    }

    #[test]
    fn drain_zeroes_the_counter() {
        let d = DequeSet::new();
        for i in 0..10 {
            d.push((i % SLOTS as u64) as usize, (i % 3) as usize, job(i));
        }
        assert_eq!(d.queued(), 10);
        assert_eq!(d.drain_all(), 10);
        assert_eq!(d.queued(), 0);
    }
}
