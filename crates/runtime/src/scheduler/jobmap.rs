//! Layer 1 of the scheduler: the sharded job map.
//!
//! Every job the scheduler has ever been asked about has (at most) one
//! [`JobEntry`], and the entry owns *all* of the job's bookkeeping:
//! its state machine, queue-token accounting, the interest refcount,
//! the pin bit, the respin counter, its dependency waiters, and the
//! watched-batch watchers whose current stage it is. The map is
//! sharded by a hash of the job identity (the same FNV-1a recipe as
//! the 64-way object store, 32-way relation cache, and 16-way label
//! namespace), so submissions, claims, and completions of unrelated
//! jobs never contend on a lock.
//!
//! The entry is only ever read or mutated under its shard lock. Cross-
//! shard coordination never holds two shard locks at once: dependency
//! completion goes through [`DepWait`] (an atomic waitgroup shared by
//! the waiter and each of its pending dependencies), and watched-batch
//! slots are filled through the lock-free `BatchState` (layer 3).

use super::batch::Watcher;
use crate::engine::Job;
use fix_core::api::Priority;
use fix_core::error::Error;
use fix_core::handle::Handle;
use parking_lot::{Mutex, MutexGuard};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicUsize};
use std::sync::Arc;

/// Lock shards. Matches the relation cache: the job map sees one
/// insert/claim/complete round-trip per executed step, which is the
/// same traffic shape.
const SHARDS: usize = 32;

/// FNV-1a over the variant tag and the handle bytes.
fn shard_of(job: &Job) -> usize {
    let (tag, h) = match job {
        Job::Eval(h) => (0u64, h),
        Job::Resolve(h) => (1u64, h),
        Job::Force(h) => (2u64, h),
    };
    let mut x: u64 = 0xcbf2_9ce4_8422_2325;
    x ^= tag;
    x = x.wrapping_mul(0x100_0000_01b3);
    for b in h.raw() {
        x ^= *b as u64;
        x = x.wrapping_mul(0x100_0000_01b3);
    }
    (x as usize) % SHARDS
}

#[derive(Debug, Clone)]
pub(super) enum JobState {
    /// In a deque (or about to be, or currently being stepped).
    Queued,
    /// Parked until the pending dependencies of its [`DepWait`] complete.
    Waiting,
    /// Finished successfully.
    Done(Handle),
    /// Finished with an error.
    Failed(Error),
}

/// The atomic waitgroup a stepped job parks on when the engine reports
/// unfinished dependencies. One `DepWait` is created per parking step;
/// each pending dependency holds a clone and decrements `pending` when
/// it completes. `pending` starts at one *extra* guard unit held by the
/// registering thread, so the waiter cannot be requeued (or even
/// re-completed) until registration has finished and the entry's state
/// has been moved to `Waiting` — dependency completions on other shards
/// can fire at any point in between.
///
/// `fired` makes the continuation exactly-once: whichever thread swaps
/// it first owns the requeue (all dependencies done) or the failure
/// propagation (a dependency failed); everyone else backs off.
pub(super) struct DepWait {
    pub(super) job: Job,
    pub(super) pending: AtomicUsize,
    pub(super) fired: AtomicBool,
}

#[derive(Default)]
pub(super) struct JobEntry {
    /// `None` means "no live request wants this job" — either it was
    /// never submitted, or it was withdrawn after a cancellation.
    pub(super) state: Option<JobState>,
    /// Dependency waitgroups this job must decrement when it completes.
    /// The same waiter appears once per dependency edge (a job that
    /// reported the same dependency twice is counted twice, matching
    /// the `pending` count).
    pub(super) waiters: Vec<Arc<DepWait>>,
    /// Watched-batch slots whose *current stage* is this job, moved
    /// here from the old scheduler-global watcher table so watcher
    /// registration and draining ride the same shard lock as the
    /// entry's state transition.
    pub(super) watchers: Vec<Watcher>,
    /// Consecutive requeues where every reported dependency was already
    /// finished. Bounded in healthy operation (each requeue follows real
    /// progress); a runaway count means the job-state map and the
    /// engine's relation cache disagree, and the job is failed loudly
    /// instead of spinning forever.
    pub(super) respins: u32,
    /// Queue tokens currently floating in the deques for this job.
    /// Withdrawal (and tier promotion) cannot cheaply delete from the
    /// middle of a deque, so a dead token is left behind and skipped at
    /// claim time; the count bounds how long the entry must outlive its
    /// work.
    pub(super) tokens: u32,
    /// True while exactly one of the floating tokens is *live*: popping
    /// any token while this is set claims the job for execution and
    /// clears it, so even with stale duplicates in the deques a job is
    /// stepped by at most one thread at a time. A `Queued` entry with
    /// `enqueued == false` is popped-and-executing, which is what lets
    /// withdrawal distinguish "still in a deque" (revocable) from
    /// "mid-step" (must complete).
    pub(super) enqueued: bool,
    /// Live watched-batch slots currently staked on this job. Together
    /// with `pinned` and `waiters` this decides whether a claimed or
    /// cancelled job is still wanted.
    pub(super) interest: usize,
    /// Set by fire-and-forget `Scheduler::submit` (and inline-driven
    /// roots): the job must never be withdrawn.
    pub(super) pinned: bool,
    /// The tier a (re)enqueue of this job joins. Fixed at first
    /// submission; a later higher-priority submission promotes the
    /// entry *and* re-tokens an already-queued job at the higher tier
    /// (priority inheritance for deduplicated work).
    pub(super) priority: Priority,
}

impl JobEntry {
    /// Does any live request still want this job executed?
    pub(super) fn wanted(&self) -> bool {
        self.interest > 0 || self.pinned || !self.waiters.is_empty()
    }

    /// Can this entry be dropped once its last stale token drains?
    pub(super) fn disposable(&self) -> bool {
        self.state.is_none() && self.tokens == 0 && !self.wanted()
    }

    pub(super) fn finished(&self) -> bool {
        matches!(
            self.state,
            Some(JobState::Done(_)) | Some(JobState::Failed(_))
        )
    }
}

/// The sharded map itself.
pub(super) struct JobMap {
    shards: Vec<Mutex<HashMap<Job, JobEntry>>>,
}

impl JobMap {
    pub(super) fn new() -> JobMap {
        JobMap {
            shards: (0..SHARDS).map(|_| Mutex::new(HashMap::new())).collect(),
        }
    }

    /// Locks and returns the shard owning `job`.
    pub(super) fn shard(&self, job: &Job) -> MutexGuard<'_, HashMap<Job, JobEntry>> {
        self.shards[shard_of(job)].lock()
    }

    /// Runs `f` over every shard in turn (each under its own lock).
    /// Per-shard consistent, not an atomic snapshot of the whole map —
    /// fine for diagnostics, maintenance sweeps, and reset (whose
    /// contract already demands quiescence).
    pub(super) fn for_each_shard(&self, mut f: impl FnMut(&mut HashMap<Job, JobEntry>)) {
        for shard in &self.shards {
            f(&mut shard.lock());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fix_core::data::Blob;

    #[test]
    fn jobs_spread_over_shards() {
        // Not a distribution-quality claim — just a guard that the hash
        // actually routes different jobs (and the same handle's Eval vs
        // Force) to different locks.
        let handles: Vec<Handle> = (0..64u64).map(|i| Blob::from_u64(i).handle()).collect();
        let shards: std::collections::HashSet<usize> =
            handles.iter().map(|h| shard_of(&Job::Eval(*h))).collect();
        assert!(shards.len() > SHARDS / 2, "{} shards used", shards.len());
        let h = handles[0];
        let variants: std::collections::HashSet<usize> = [
            shard_of(&Job::Eval(h)),
            shard_of(&Job::Resolve(h)),
            shard_of(&Job::Force(h)),
        ]
        .into_iter()
        .collect();
        assert!(variants.len() > 1, "variant tag must perturb the shard");
    }
}
