//! Continuation capture: suspendable computations as a library.
//!
//! Fix functions run to completion without blocking (paper §3); a
//! computation that needs more data mid-flight must instead *return* a
//! new Thunk whose input tree carries (a) its serialized state and
//! (b) Encodes of the data it needs next — the continuation-passing
//! pattern the paper's B+-tree lookup and `get-file` (Fig. 4) build by
//! hand, and that §6 proposes automating ("lightweight continuation
//! capture, where existing programs are automatically split at I/O
//! operations").
//!
//! This module is that automation at the library level. A *stepper* is
//! an ordinary function of `(state, data...) → outcome`; the plumbing —
//! rebuilding the application tree, wrapping requests in Strict or
//! Shallow encodes, threading the state blob — is generated once in
//! [`register_stepper`]. Each suspension costs one Fix invocation, so
//! programs split at I/O keep the paper's fine-grained footprint: the
//! platform sees exactly what each resumption needs before it runs.
//!
//! ```
//! use fixpoint::{Runtime, StepOutcome};
//! use fixpoint::cps::{register_stepper, start};
//! use fix_core::data::Blob;
//! use fix_core::handle::EncodeStyle;
//! use std::sync::Arc;
//!
//! // Sum a chain of numbers linked as [value, next] pairs, one hop
//! // (one invocation, one fetched node) per step.
//! let rt = Runtime::builder().build();
//! let a = rt.put_tree(fix_core::data::Tree::from_handles(vec![
//!     rt.put_blob(Blob::from_u64(1)),
//! ]));
//! let b = rt.put_tree(fix_core::data::Tree::from_handles(vec![
//!     rt.put_blob(Blob::from_u64(2)), a.as_ref_handle(),
//! ]));
//! let sum = register_stepper(&rt, "sum-chain", Arc::new(|ctx| {
//!     let acc = u64::from_le_bytes(ctx.state[..8].try_into().unwrap());
//!     let node = ctx.host.load_tree(ctx.args[0])?;
//!     let v = ctx.host.load_blob(node.get(0).unwrap())?.as_u64().unwrap();
//!     Ok(match node.get(1) {
//!         Some(next) => StepOutcome::suspend((acc + v).to_le_bytes().to_vec())
//!             .request(next.identification()?, EncodeStyle::Strict),
//!         None => StepOutcome::Done(Blob::from_u64(acc + v).handle()),
//!     })
//! }));
//! let thunk = start(&rt, sum, &0u64.to_le_bytes(), &[b]).unwrap();
//! assert_eq!(rt.get_u64(rt.eval(thunk).unwrap()).unwrap(), 3);
//! ```

use crate::registry::NativeFn;
use crate::runtime::Runtime;
use fix_core::data::Blob;
use fix_core::error::{Error, Result};
use fix_core::handle::{EncodeStyle, Handle};
use fix_core::invocation::Invocation;
use fix_core::limits::ResourceLimits;
use fix_vm::HostApi;
use std::sync::Arc;

/// One data request a suspending step makes for its resumption.
#[derive(Debug, Clone, Copy)]
pub struct Request {
    /// What to evaluate (a Thunk — e.g. a Selection into a Ref).
    pub target: Handle,
    /// Strict: resume with the accessible result. Shallow: resume with
    /// a Ref (name and size only) — the Fig. 4 pattern for descending
    /// structures without fetching them.
    pub style: EncodeStyle,
}

/// What one step decides.
#[derive(Debug, Clone)]
pub enum StepOutcome {
    /// Finished. The handle may itself be a Thunk (a tail call).
    Done(Handle),
    /// Suspend with serialized `state`; the runtime evaluates every
    /// request and re-invokes the stepper with the results as `args`.
    Suspend {
        /// Serialized continuation state (the stepper's "locals").
        state: Vec<u8>,
        /// Data needed before resumption, in `args` order.
        requests: Vec<Request>,
    },
}

impl StepOutcome {
    /// Starts a suspension with no requests yet.
    pub fn suspend(state: Vec<u8>) -> StepOutcome {
        StepOutcome::Suspend {
            state,
            requests: Vec::new(),
        }
    }

    /// Adds a request (builder style).
    ///
    /// # Panics
    ///
    /// Panics if called on [`StepOutcome::Done`] (a programming error).
    pub fn request(mut self, target: Handle, style: EncodeStyle) -> StepOutcome {
        match &mut self {
            StepOutcome::Suspend { requests, .. } => requests.push(Request { target, style }),
            StepOutcome::Done(_) => panic!("request() on a finished step"),
        }
        self
    }
}

/// What a step sees when it runs.
pub struct StepCtx<'a, 'b> {
    /// The state the previous step serialized (empty on the first step).
    pub state: &'a [u8],
    /// The resolved results of the previous step's requests (the start
    /// arguments on the first step). Strict requests appear accessible;
    /// Shallow requests appear as Refs.
    pub args: &'a [Handle],
    /// Host services (load accessible data, create new data).
    pub host: &'a mut dyn HostApi,
    /// The invocation's resource limits handle (threads to children).
    pub limits: Handle,
    _marker: std::marker::PhantomData<&'b ()>,
}

impl StepCtx<'_, '_> {
    /// Builds a Selection thunk `target[index]` (works on Refs: the
    /// runtime performs the extraction).
    pub fn select(&mut self, target: Handle, index: u64) -> Result<Handle> {
        let tree = fix_core::invocation::Selection::index(target, index).to_tree();
        self.host.create_tree(tree.entries().to_vec())?.selection()
    }
}

/// The signature of a stepper.
pub type StepFn = Arc<dyn Fn(&mut StepCtx<'_, '_>) -> Result<StepOutcome> + Send + Sync>;

/// Registers `step` as a suspendable procedure; returns its handle.
///
/// Protocol (generated here, invisible to the stepper): the application
/// tree is `[limits, self, state-blob, args...]`. A suspension becomes
/// `application([limits, self, new-state, encode(request)...])` — the
/// runtime resolves the encodes (performing exactly the I/O the step
/// declared) and re-invokes.
pub fn register_stepper(rt: &Runtime, name: &str, step: StepFn) -> Handle {
    let f: NativeFn = Arc::new(move |ctx| {
        let input = ctx.input_tree()?;
        let limits = input.get(0).ok_or(Error::MalformedTree {
            handle: ctx.input,
            reason: "missing limits slot".into(),
        })?;
        let self_proc = input.get(1).ok_or(Error::MalformedTree {
            handle: ctx.input,
            reason: "missing procedure slot".into(),
        })?;
        let state_blob = ctx.arg_blob(0)?;
        let args: Vec<Handle> = input.entries()[3..].to_vec();
        let mut sctx = StepCtx {
            state: state_blob.as_slice(),
            args: &args,
            host: ctx.host,
            limits,
            _marker: std::marker::PhantomData,
        };
        match step(&mut sctx)? {
            StepOutcome::Done(h) => Ok(h),
            StepOutcome::Suspend { state, requests } => {
                if requests.is_empty() {
                    return Err(Error::Trap(
                        "stepper suspended without requesting anything: \
                         it could never make progress"
                            .into(),
                    ));
                }
                let state_h = ctx.host.create_blob(state)?;
                let mut slots = vec![limits, self_proc, state_h];
                for r in &requests {
                    slots.push(r.target.encode(r.style)?);
                }
                ctx.host.create_tree(slots)?.application()
            }
        }
    });
    rt.register_native(name, f)
}

/// Builds the initial invocation of a stepper: state plus start args.
/// Returns the (unevaluated) Application Thunk.
pub fn start(rt: &Runtime, stepper: Handle, state: &[u8], args: &[Handle]) -> Result<Handle> {
    start_with_limits(rt, ResourceLimits::default_limits(), stepper, state, args)
}

/// [`start`] with explicit resource limits.
pub fn start_with_limits(
    rt: &Runtime,
    limits: ResourceLimits,
    stepper: Handle,
    state: &[u8],
    args: &[Handle],
) -> Result<Handle> {
    let mut all_args = vec![rt.put_blob(Blob::from_slice(state))];
    all_args.extend_from_slice(args);
    let inv = Invocation {
        limits,
        procedure: stepper,
        args: all_args,
    };
    rt.put_tree(inv.to_tree()).application()
}

#[cfg(test)]
mod tests {
    use super::*;
    use fix_core::data::Tree;
    use std::sync::atomic::{AtomicU64, Ordering};

    /// Builds a Fix linked list `[value-blob, next-ref]`; returns the
    /// head. Values are 40-byte blobs so data access is observable.
    fn linked_list(rt: &Runtime, values: &[u64]) -> Handle {
        let mut next: Option<Handle> = None;
        for &v in values.iter().rev() {
            let mut bytes = vec![0u8; 40];
            bytes[..8].copy_from_slice(&v.to_le_bytes());
            let val = rt.put_blob(Blob::from_vec(bytes));
            let mut slots = vec![val.as_ref_handle()];
            if let Some(n) = next {
                slots.push(n.as_ref_handle());
            }
            next = Some(rt.put_tree(Tree::from_handles(slots)));
        }
        next.expect("nonempty list")
    }

    /// The paper's Listing-3 `get(head, i)`, one node hop per step.
    fn register_get(rt: &Runtime) -> Handle {
        register_stepper(
            rt,
            "list/get",
            Arc::new(|ctx| {
                let i = u64::from_le_bytes(ctx.state[..8].try_into().expect("state"));
                let node = ctx.args[0];
                if i == 0 {
                    // Tail-call the value selection; only this blob is
                    // ever fetched.
                    return Ok(StepOutcome::Done(ctx.select(node, 0)?));
                }
                let next = ctx.select(node, 1)?;
                Ok(StepOutcome::suspend((i - 1).to_le_bytes().to_vec())
                    // Shallow: hop to the next node *by name*.
                    .request(next, EncodeStyle::Shallow))
            }),
        )
    }

    #[test]
    fn listing3_get_walks_by_name_and_fetches_one_value() {
        let rt = Runtime::builder().build();
        let head = linked_list(&rt, &[10, 11, 12, 13, 14]);
        let get = register_get(&rt);
        for i in 0..5u64 {
            let thunk = start(&rt, get, &i.to_le_bytes(), &[head]).unwrap();
            let out = rt.eval(thunk).unwrap();
            let blob = rt.get_blob(out).unwrap();
            assert_eq!(
                u64::from_le_bytes(blob.as_slice()[..8].try_into().unwrap()),
                10 + i
            );
        }
    }

    #[test]
    fn one_invocation_per_hop() {
        let rt = Runtime::builder().build();
        let head = linked_list(&rt, &[0, 1, 2, 3, 4, 5, 6, 7]);
        let get = register_get(&rt);
        let runs = |rt: &Runtime| rt.engine().stats.procedures_run.load(Ordering::Relaxed);
        let before = runs(&rt);
        let thunk = start(&rt, get, &6u64.to_le_bytes(), &[head]).unwrap();
        rt.eval(thunk).unwrap();
        // i+1 stepper invocations: hops 6..0.
        assert_eq!(runs(&rt) - before, 7);
    }

    #[test]
    fn multi_request_steps_resume_with_all_results() {
        // Sum every value in the list: each step strictly requests the
        // value blob and shallowly requests the next node.
        let rt = Runtime::builder().build();
        let head = linked_list(&rt, &[5, 6, 7, 8]);
        let counter = Arc::new(AtomicU64::new(0));
        let c = Arc::clone(&counter);
        let sum = register_stepper(
            &rt,
            "list/sum",
            Arc::new(move |ctx| {
                c.fetch_add(1, Ordering::SeqCst);
                let acc = u64::from_le_bytes(ctx.state[..8].try_into().expect("state"));
                if ctx.args.len() == 2 {
                    // Resumed with [value, next-node-ref].
                    let v = ctx.host.load_blob(ctx.args[0])?;
                    let v = u64::from_le_bytes(v.as_slice()[..8].try_into().expect("u64"));
                    let node = ctx.args[1];
                    let value_sel = ctx.select(node, 0)?;
                    let node_tree_len = ctx.args[1].size();
                    let out = StepOutcome::suspend((acc + v).to_le_bytes().to_vec())
                        .request(value_sel, EncodeStyle::Strict);
                    return Ok(if node_tree_len == 2 {
                        out.request(ctx.select(node, 1)?, EncodeStyle::Shallow)
                    } else {
                        out
                    });
                }
                if ctx.args.len() == 1 && ctx.state.len() == 8 && !ctx.args[0].is_thunk() {
                    match ctx.args[0].kind() {
                        fix_core::handle::Kind::Object(fix_core::handle::DataType::Blob)
                        | fix_core::handle::Kind::Ref(fix_core::handle::DataType::Blob) => {
                            // Last value arrived alone (tail of list).
                            let v = ctx.host.load_blob(ctx.args[0])?;
                            let v = u64::from_le_bytes(v.as_slice()[..8].try_into().expect("u64"));
                            return Ok(StepOutcome::Done(Blob::from_u64(acc + v).handle()));
                        }
                        _ => {}
                    }
                }
                // First step: args[0] is the head node.
                let node = ctx.args[0];
                let value_sel = ctx.select(node, 0)?;
                let next_sel = ctx.select(node, 1)?;
                Ok(StepOutcome::suspend(acc.to_le_bytes().to_vec())
                    .request(value_sel, EncodeStyle::Strict)
                    .request(next_sel, EncodeStyle::Shallow))
            }),
        );
        let thunk = start(&rt, sum, &0u64.to_le_bytes(), &[head]).unwrap();
        let out = rt.eval(thunk).unwrap();
        assert_eq!(rt.get_u64(out).unwrap(), 5 + 6 + 7 + 8);
        assert!(counter.load(Ordering::SeqCst) >= 4);
    }

    #[test]
    fn suspension_without_requests_is_rejected() {
        let rt = Runtime::builder().build();
        let bad = register_stepper(
            &rt,
            "bad/spin",
            Arc::new(|_| Ok(StepOutcome::suspend(vec![1]))),
        );
        let thunk = start(&rt, bad, &[], &[Blob::from_u64(0).handle()]).unwrap();
        let err = rt.eval(thunk).unwrap_err();
        assert!(err.to_string().contains("without requesting"), "{err}");
    }

    #[test]
    fn footprint_per_step_is_constant() {
        // The resumption tree names only: limits, proc, state, encodes —
        // independent of list length (the paper's O(1) footprint claim
        // for continuation-passing walks).
        let rt = Runtime::builder().build();
        let get = register_get(&rt);
        let short = linked_list(&rt, &[1, 2]);
        let long = linked_list(&rt, &(0..200).collect::<Vec<u64>>());
        let fp_short = rt
            .footprint(start(&rt, get, &1u64.to_le_bytes(), &[short]).unwrap())
            .unwrap();
        let fp_long = rt
            .footprint(start(&rt, get, &199u64.to_le_bytes(), &[long]).unwrap())
            .unwrap();
        assert_eq!(fp_short.objects.len(), fp_long.objects.len());
    }
}
