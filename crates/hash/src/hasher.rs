//! Incremental BLAKE3 hashing: chunk states and the binary hash tree.
//!
//! The implementation mirrors the reference: input is consumed in 1024-byte
//! chunks; each finished chunk's chaining value is merged into a stack of
//! subtree roots ("CV stack"), and finalization merges the stack down to a
//! single root output.

use crate::compress::{
    compress, first_8_words, words_from_le_bytes, BLOCK_LEN, CHUNK_END, CHUNK_LEN, CHUNK_START, IV,
    KEYED_HASH, PARENT, ROOT,
};

/// The number of bytes in a full BLAKE3 digest.
pub const OUT_LEN: usize = 32;
/// The number of bytes in a BLAKE3 key.
pub const KEY_LEN: usize = 32;

// Maximum depth of the CV stack: enough for 2^54 chunks (> 2^64 bytes).
const MAX_DEPTH: usize = 54;

/// A pending output: everything needed to run the final compression(s).
///
/// Delaying the root compression lets the same structure serve both as an
/// interior chaining-value producer and as the root XOF.
#[derive(Clone, Copy)]
struct Output {
    input_chaining_value: [u32; 8],
    block_words: [u32; 16],
    counter: u64,
    block_len: u32,
    flags: u32,
}

impl Output {
    fn chaining_value(&self) -> [u32; 8] {
        first_8_words(compress(
            &self.input_chaining_value,
            &self.block_words,
            self.counter,
            self.block_len,
            self.flags,
        ))
    }

    fn root_output_bytes(&self, out: &mut [u8]) {
        // Extended output: re-run the root compression with an incrementing
        // output-block counter.
        for (block_index, out_block) in out.chunks_mut(2 * OUT_LEN).enumerate() {
            let words = compress(
                &self.input_chaining_value,
                &self.block_words,
                block_index as u64,
                self.block_len,
                self.flags | ROOT,
            );
            for (word, dest) in words.iter().zip(out_block.chunks_mut(4)) {
                dest.copy_from_slice(&word.to_le_bytes()[..dest.len()]);
            }
        }
    }
}

/// State for hashing a single 1024-byte chunk.
#[derive(Clone, Copy)]
struct ChunkState {
    chaining_value: [u32; 8],
    chunk_counter: u64,
    block: [u8; BLOCK_LEN],
    block_len: u8,
    blocks_compressed: u8,
    flags: u32,
}

impl ChunkState {
    fn new(key_words: [u32; 8], chunk_counter: u64, flags: u32) -> Self {
        Self {
            chaining_value: key_words,
            chunk_counter,
            block: [0; BLOCK_LEN],
            block_len: 0,
            blocks_compressed: 0,
            flags,
        }
    }

    fn len(&self) -> usize {
        BLOCK_LEN * self.blocks_compressed as usize + self.block_len as usize
    }

    fn start_flag(&self) -> u32 {
        if self.blocks_compressed == 0 {
            CHUNK_START
        } else {
            0
        }
    }

    fn update(&mut self, mut input: &[u8]) {
        while !input.is_empty() {
            // If the block buffer is full, compress it and clear it. More
            // input is coming, so this compression is not CHUNK_END.
            if self.block_len as usize == BLOCK_LEN {
                let block_words = words_from_le_bytes(&self.block);
                self.chaining_value = first_8_words(compress(
                    &self.chaining_value,
                    &block_words,
                    self.chunk_counter,
                    BLOCK_LEN as u32,
                    self.flags | self.start_flag(),
                ));
                self.blocks_compressed += 1;
                self.block = [0; BLOCK_LEN];
                self.block_len = 0;
            }

            // Copy input bytes into the block buffer.
            let want = BLOCK_LEN - self.block_len as usize;
            let take = want.min(input.len());
            self.block[self.block_len as usize..self.block_len as usize + take]
                .copy_from_slice(&input[..take]);
            self.block_len += take as u8;
            input = &input[take..];
        }
    }

    fn output(&self) -> Output {
        let block_words = words_from_le_bytes(&self.block);
        Output {
            input_chaining_value: self.chaining_value,
            block_words,
            counter: self.chunk_counter,
            block_len: self.block_len as u32,
            flags: self.flags | self.start_flag() | CHUNK_END,
        }
    }
}

fn parent_output(
    left_child_cv: [u32; 8],
    right_child_cv: [u32; 8],
    key_words: [u32; 8],
    flags: u32,
) -> Output {
    let mut block_words = [0u32; 16];
    block_words[..8].copy_from_slice(&left_child_cv);
    block_words[8..].copy_from_slice(&right_child_cv);
    Output {
        input_chaining_value: key_words,
        block_words,
        counter: 0, // Always 0 for parent nodes.
        block_len: BLOCK_LEN as u32,
        flags: PARENT | flags,
    }
}

fn parent_cv(
    left_child_cv: [u32; 8],
    right_child_cv: [u32; 8],
    key_words: [u32; 8],
    flags: u32,
) -> [u32; 8] {
    parent_output(left_child_cv, right_child_cv, key_words, flags).chaining_value()
}

/// An incremental BLAKE3 hasher.
///
/// # Examples
///
/// ```
/// let mut hasher = fix_hash::Hasher::new();
/// hasher.update(b"hello ");
/// hasher.update(b"world");
/// let one = hasher.finalize();
/// assert_eq!(one, fix_hash::hash(b"hello world"));
/// ```
#[derive(Clone)]
pub struct Hasher {
    chunk_state: ChunkState,
    key_words: [u32; 8],
    cv_stack: [[u32; 8]; MAX_DEPTH],
    cv_stack_len: u8,
    flags: u32,
}

impl Default for Hasher {
    fn default() -> Self {
        Self::new()
    }
}

impl Hasher {
    fn new_internal(key_words: [u32; 8], flags: u32) -> Self {
        Self {
            chunk_state: ChunkState::new(key_words, 0, flags),
            key_words,
            cv_stack: [[0; 8]; MAX_DEPTH],
            cv_stack_len: 0,
            flags,
        }
    }

    /// Constructs a hasher for the default (unkeyed) hash function.
    pub fn new() -> Self {
        Self::new_internal(IV, 0)
    }

    /// Constructs a hasher for the keyed hash function.
    pub fn new_keyed(key: &[u8; KEY_LEN]) -> Self {
        let mut key_words = [0u32; 8];
        for (word, chunk) in key_words.iter_mut().zip(key.chunks_exact(4)) {
            *word = u32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
        }
        Self::new_internal(key_words, KEYED_HASH)
    }

    fn push_stack(&mut self, cv: [u32; 8]) {
        self.cv_stack[self.cv_stack_len as usize] = cv;
        self.cv_stack_len += 1;
    }

    fn pop_stack(&mut self) -> [u32; 8] {
        self.cv_stack_len -= 1;
        self.cv_stack[self.cv_stack_len as usize]
    }

    fn add_chunk_chaining_value(&mut self, mut new_cv: [u32; 8], mut total_chunks: u64) {
        // The count of trailing zero bits in `total_chunks` equals the number
        // of completed subtrees that this chunk completes; merge them.
        while total_chunks & 1 == 0 {
            new_cv = parent_cv(self.pop_stack(), new_cv, self.key_words, self.flags);
            total_chunks >>= 1;
        }
        self.push_stack(new_cv);
    }

    /// Absorbs more input. May be called any number of times.
    pub fn update(&mut self, mut input: &[u8]) {
        while !input.is_empty() {
            // If the current chunk is complete, finalize it and start a new
            // one. More input is coming, so this chunk is not the root.
            if self.chunk_state.len() == CHUNK_LEN {
                let chunk_cv = self.chunk_state.output().chaining_value();
                let total_chunks = self.chunk_state.chunk_counter + 1;
                self.add_chunk_chaining_value(chunk_cv, total_chunks);
                self.chunk_state = ChunkState::new(self.key_words, total_chunks, self.flags);
            }

            let want = CHUNK_LEN - self.chunk_state.len();
            let take = want.min(input.len());
            self.chunk_state.update(&input[..take]);
            input = &input[take..];
        }
    }

    /// Finalizes the hash, writing `out.len()` bytes of output.
    ///
    /// BLAKE3 is an XOF: any output length is allowed, and shorter outputs
    /// are prefixes of longer ones.
    pub fn finalize_xof(&self, out: &mut [u8]) {
        // Starting with the Output from the current chunk, compute all the
        // parent chaining values along the right edge of the tree.
        let mut output = self.chunk_state.output();
        let mut parent_nodes_remaining = self.cv_stack_len as usize;
        while parent_nodes_remaining > 0 {
            parent_nodes_remaining -= 1;
            output = parent_output(
                self.cv_stack[parent_nodes_remaining],
                output.chaining_value(),
                self.key_words,
                self.flags,
            );
        }
        output.root_output_bytes(out);
    }

    /// Finalizes the hash and returns the standard 32-byte digest.
    pub fn finalize(&self) -> [u8; OUT_LEN] {
        let mut out = [0u8; OUT_LEN];
        self.finalize_xof(&mut out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunk_state_length_accounting() {
        let mut cs = ChunkState::new(IV, 0, 0);
        assert_eq!(cs.len(), 0);
        cs.update(&[0u8; 65]);
        assert_eq!(cs.len(), 65);
        cs.update(&[0u8; 959]);
        assert_eq!(cs.len(), CHUNK_LEN);
    }

    #[test]
    fn xof_prefix_property() {
        let mut h = Hasher::new();
        h.update(b"prefix property");
        let mut short = [0u8; 32];
        let mut long = [0u8; 177];
        h.finalize_xof(&mut short);
        h.finalize_xof(&mut long);
        assert_eq!(&long[..32], &short[..]);
    }

    #[test]
    fn keyed_differs_from_unkeyed() {
        let key = [0x42u8; KEY_LEN];
        let mut a = Hasher::new();
        let mut b = Hasher::new_keyed(&key);
        a.update(b"data");
        b.update(b"data");
        assert_ne!(a.finalize(), b.finalize());
    }
}
