//! The BLAKE3 compression function (portable, word-at-a-time).
//!
//! This follows the structure of the reference implementation in the BLAKE3
//! paper: a 7-round ARX permutation over a 16-word state, with the message
//! schedule produced by repeated application of a fixed permutation.

/// Number of bytes in one compression block.
pub const BLOCK_LEN: usize = 64;
/// Number of bytes in one chunk (1024 = 16 blocks).
pub const CHUNK_LEN: usize = 1024;
/// Domain-separation flag: first block of a chunk.
pub const CHUNK_START: u32 = 1 << 0;
/// Domain-separation flag: last block of a chunk.
pub const CHUNK_END: u32 = 1 << 1;
/// Domain-separation flag: parent node in the hash tree.
pub const PARENT: u32 = 1 << 2;
/// Domain-separation flag: the root compression.
pub const ROOT: u32 = 1 << 3;
/// Domain-separation flag: keyed hashing mode.
pub const KEYED_HASH: u32 = 1 << 4;

/// The BLAKE3 initialization vector (the first eight SHA-256 IV words).
pub const IV: [u32; 8] = [
    0x6A09_E667,
    0xBB67_AE85,
    0x3C6E_F372,
    0xA54F_F53A,
    0x510E_527F,
    0x9B05_688C,
    0x1F83_D9AB,
    0x5BE0_CD19,
];

/// The fixed message-word permutation applied between rounds.
const MSG_PERMUTATION: [usize; 16] = [2, 6, 3, 10, 7, 0, 4, 13, 1, 11, 12, 5, 9, 14, 15, 8];

#[inline(always)]
fn g(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize, mx: u32, my: u32) {
    state[a] = state[a].wrapping_add(state[b]).wrapping_add(mx);
    state[d] = (state[d] ^ state[a]).rotate_right(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_right(12);
    state[a] = state[a].wrapping_add(state[b]).wrapping_add(my);
    state[d] = (state[d] ^ state[a]).rotate_right(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_right(7);
}

#[inline(always)]
fn round(state: &mut [u32; 16], m: &[u32; 16]) {
    // Mix the columns.
    g(state, 0, 4, 8, 12, m[0], m[1]);
    g(state, 1, 5, 9, 13, m[2], m[3]);
    g(state, 2, 6, 10, 14, m[4], m[5]);
    g(state, 3, 7, 11, 15, m[6], m[7]);
    // Mix the diagonals.
    g(state, 0, 5, 10, 15, m[8], m[9]);
    g(state, 1, 6, 11, 12, m[10], m[11]);
    g(state, 2, 7, 8, 13, m[12], m[13]);
    g(state, 3, 4, 9, 14, m[14], m[15]);
}

#[inline(always)]
fn permute(m: &mut [u32; 16]) {
    let mut permuted = [0u32; 16];
    for i in 0..16 {
        permuted[i] = m[MSG_PERMUTATION[i]];
    }
    *m = permuted;
}

/// Runs the BLAKE3 compression function, returning the full 16-word state.
///
/// The first eight words of the result are the new chaining value; in
/// extended-output mode the remaining eight words also contribute output.
pub fn compress(
    chaining_value: &[u32; 8],
    block_words: &[u32; 16],
    counter: u64,
    block_len: u32,
    flags: u32,
) -> [u32; 16] {
    let mut state = [
        chaining_value[0],
        chaining_value[1],
        chaining_value[2],
        chaining_value[3],
        chaining_value[4],
        chaining_value[5],
        chaining_value[6],
        chaining_value[7],
        IV[0],
        IV[1],
        IV[2],
        IV[3],
        counter as u32,
        (counter >> 32) as u32,
        block_len,
        flags,
    ];
    let mut block = *block_words;

    round(&mut state, &block); // round 1
    permute(&mut block);
    round(&mut state, &block); // round 2
    permute(&mut block);
    round(&mut state, &block); // round 3
    permute(&mut block);
    round(&mut state, &block); // round 4
    permute(&mut block);
    round(&mut state, &block); // round 5
    permute(&mut block);
    round(&mut state, &block); // round 6
    permute(&mut block);
    round(&mut state, &block); // round 7

    for i in 0..8 {
        state[i] ^= state[i + 8];
        state[i + 8] ^= chaining_value[i];
    }
    state
}

/// Converts a 64-byte block into sixteen little-endian message words.
#[inline(always)]
pub fn words_from_le_bytes(block: &[u8; BLOCK_LEN]) -> [u32; 16] {
    let mut words = [0u32; 16];
    for (word, chunk) in words.iter_mut().zip(block.chunks_exact(4)) {
        *word = u32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
    }
    words
}

/// Extracts the first eight words of a compression result (the chaining value).
#[inline(always)]
pub fn first_8_words(compression_output: [u32; 16]) -> [u32; 8] {
    let mut out = [0u32; 8];
    out.copy_from_slice(&compression_output[..8]);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn g_is_deterministic() {
        let mut s1 = [7u32; 16];
        let mut s2 = [7u32; 16];
        g(&mut s1, 0, 4, 8, 12, 1, 2);
        g(&mut s2, 0, 4, 8, 12, 1, 2);
        assert_eq!(s1, s2);
    }

    #[test]
    fn permutation_has_order_dividing_lcm() {
        // Applying the permutation repeatedly must eventually return to the
        // identity; the BLAKE3 permutation has a small order.
        let mut m = [0u32; 16];
        for (i, w) in m.iter_mut().enumerate() {
            *w = i as u32;
        }
        let start = m;
        let mut seen_identity = false;
        for _ in 0..1000 {
            permute(&mut m);
            if m == start {
                seen_identity = true;
                break;
            }
        }
        assert!(
            seen_identity,
            "permutation should be a bijection with finite order"
        );
    }

    #[test]
    fn compress_changes_with_flags() {
        let block = [0u8; BLOCK_LEN];
        let words = words_from_le_bytes(&block);
        let a = compress(&IV, &words, 0, BLOCK_LEN as u32, 0);
        let b = compress(&IV, &words, 0, BLOCK_LEN as u32, CHUNK_START);
        assert_ne!(a, b, "flag bits must be domain separating");
    }

    #[test]
    fn compress_changes_with_counter() {
        let block = [0u8; BLOCK_LEN];
        let words = words_from_le_bytes(&block);
        let a = compress(&IV, &words, 0, BLOCK_LEN as u32, 0);
        let b = compress(&IV, &words, 1, BLOCK_LEN as u32, 0);
        assert_ne!(a, b, "the chunk counter must be domain separating");
    }

    #[test]
    fn words_round_trip_endianness() {
        let mut block = [0u8; BLOCK_LEN];
        for (i, b) in block.iter_mut().enumerate() {
            *b = i as u8;
        }
        let words = words_from_le_bytes(&block);
        assert_eq!(words[0], u32::from_le_bytes([0, 1, 2, 3]));
        assert_eq!(words[15], u32::from_le_bytes([60, 61, 62, 63]));
    }
}
