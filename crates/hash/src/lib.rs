//! `fix-hash`: a portable, from-scratch BLAKE3 implementation.
//!
//! Fix content-addresses every object with a truncated 192-bit BLAKE3
//! digest (see the paper, §3.2). This crate provides the hash function
//! itself; the Handle packing lives in `fix-core`.
//!
//! The implementation is the word-at-a-time portable variant (no SIMD):
//! correctness and determinism matter here, not peak throughput. It is
//! validated in the test suite against the official `blake3` crate (used
//! strictly as a dev-dependency oracle) and against published test vectors.
//!
//! # Examples
//!
//! ```
//! let digest = fix_hash::hash(b"hello world");
//! assert_eq!(digest.len(), 32);
//! // Truncated addressing as used by Fix handles:
//! let short = fix_hash::hash_truncated192(b"hello world");
//! assert_eq!(&digest[..24], &short[..]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod compress;
mod hasher;

pub use compress::{BLOCK_LEN, CHUNK_LEN, IV};
pub use hasher::{Hasher, KEY_LEN, OUT_LEN};

/// Hashes `input` and returns the standard 32-byte BLAKE3 digest.
pub fn hash(input: &[u8]) -> [u8; OUT_LEN] {
    let mut hasher = Hasher::new();
    hasher.update(input);
    hasher.finalize()
}

/// Hashes `input` with a 32-byte key (BLAKE3 keyed mode).
pub fn keyed_hash(key: &[u8; KEY_LEN], input: &[u8]) -> [u8; OUT_LEN] {
    let mut hasher = Hasher::new_keyed(key);
    hasher.update(input);
    hasher.finalize()
}

/// Hashes `input` and returns the first 24 bytes (192 bits) of the digest.
///
/// This is the truncation Fix uses inside 256-bit Handles: 192 bits of
/// hash + 16 bits of metadata + 48 bits of size.
pub fn hash_truncated192(input: &[u8]) -> [u8; 24] {
    let full = hash(input);
    let mut out = [0u8; 24];
    out.copy_from_slice(&full[..24]);
    out
}

/// Formats a digest (of any length) as lowercase hex.
pub fn to_hex(digest: &[u8]) -> String {
    let mut s = String::with_capacity(digest.len() * 2);
    for byte in digest {
        s.push(char::from_digit((byte >> 4) as u32, 16).expect("nibble < 16"));
        s.push(char::from_digit((byte & 0xf) as u32, 16).expect("nibble < 16"));
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Published BLAKE3 digests for well-known inputs.
    #[test]
    fn known_vectors() {
        assert_eq!(
            to_hex(&hash(b"")),
            "af1349b9f5f9a1a6a0404dea36dcc9499bcb25c9adc112b7cc9a93cae41f3262"
        );
        assert_eq!(
            to_hex(&hash(b"abc")),
            "6437b3ac38465133ffb63b75273a8db548c558465d79db03fd359c6cd5bd9d85"
        );
    }

    /// The official test-vector input pattern: byte `i` is `i % 251`.
    fn pattern(len: usize) -> Vec<u8> {
        (0..len).map(|i| (i % 251) as u8).collect()
    }

    /// Cross-check against the reference `blake3` crate across the important
    /// length boundaries: sub-block, block, chunk, and multi-chunk trees.
    #[test]
    fn oracle_agreement_across_boundaries() {
        let lengths = [
            0usize, 1, 2, 3, 31, 32, 33, 63, 64, 65, 127, 128, 129, 1023, 1024, 1025, 2047, 2048,
            2049, 3072, 3073, 4096, 4097, 5120, 6144, 8192, 16384, 31744, 102400,
        ];
        for &len in &lengths {
            let input = pattern(len);
            let ours = hash(&input);
            let theirs = blake3::hash(&input);
            assert_eq!(
                ours,
                *theirs.as_bytes(),
                "digest mismatch at input length {len}"
            );
        }
    }

    #[test]
    fn oracle_agreement_keyed() {
        let mut key = [0u8; KEY_LEN];
        for (i, b) in key.iter_mut().enumerate() {
            *b = i as u8;
        }
        for &len in &[0usize, 1, 64, 1024, 1025, 4096] {
            let input = pattern(len);
            let ours = keyed_hash(&key, &input);
            let theirs = blake3::keyed_hash(&key, &input);
            assert_eq!(ours, *theirs.as_bytes(), "keyed mismatch at length {len}");
        }
    }

    #[test]
    fn oracle_agreement_xof() {
        let input = pattern(2049);
        let mut ours = vec![0u8; 301];
        let mut hasher = Hasher::new();
        hasher.update(&input);
        hasher.finalize_xof(&mut ours);

        let mut theirs = vec![0u8; 301];
        let mut reader = blake3::Hasher::new();
        reader.update(&input);
        reader.finalize_xof().fill(&mut theirs);
        assert_eq!(ours, theirs);
    }

    #[test]
    fn streaming_equals_oneshot() {
        let input = pattern(10_000);
        let oneshot = hash(&input);
        // Feed the same input in awkward split sizes.
        for split in [1usize, 7, 63, 64, 65, 1000, 1024, 1025, 4096] {
            let mut hasher = Hasher::new();
            for chunk in input.chunks(split) {
                hasher.update(chunk);
            }
            assert_eq!(hasher.finalize(), oneshot, "split size {split}");
        }
    }

    #[test]
    fn truncation_is_a_prefix() {
        let input = b"truncate me";
        assert_eq!(&hash(input)[..24], &hash_truncated192(input)[..]);
    }

    #[test]
    fn hex_formatting() {
        assert_eq!(to_hex(&[0x00, 0xff, 0x1a]), "00ff1a");
        assert_eq!(to_hex(&[]), "");
    }
}
