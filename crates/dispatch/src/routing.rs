//! Request routing: rendezvous (HRW) hashing with load-based spill,
//! plus the round-robin and random baselines it is measured against.
//!
//! The affinity policy exploits the paper's core property: thunk
//! handles are content addressed, so the dispatcher can compute a
//! request's name *before any node is involved* and knows exactly which
//! node has that computation memoized. Highest-random-weight hashing
//! turns the name into a stable node choice — each key independently
//! ranks every node by `hash(node_salt, key)` and picks the maximum, so
//! removing one node remaps only that node's keys (the survivors'
//! rankings are untouched). Pure affinity would let a hot key set
//! overload one node, so the policy spills: when the rendezvous
//! target's backlog exceeds the least-loaded node's by at least the
//! configured margin, the request is diverted to the least-loaded node
//! (losing its warm hit, keeping its latency).
//!
//! Every decision is a pure function of the key, the alive set, the
//! observed depths, and the router's own deterministic state (cursor or
//! seeded PRNG) — no wall clock anywhere, which is what keeps the
//! dispatcher's tables bit-identical across runs.

use fix_core::handle::Handle;

/// Which placement discipline the dispatcher runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RoutingPolicy {
    /// Rendezvous-hash on the request's root handle, with load-based
    /// spill to the least-loaded node past the spill margin: the
    /// memoization-affinity policy.
    Affinity,
    /// Cycle over the alive nodes in index order: load-oblivious and
    /// affinity-oblivious baseline.
    RoundRobin,
    /// Uniform random over the alive nodes (seeded, deterministic):
    /// the classic load-balancer baseline.
    Random,
}

impl RoutingPolicy {
    /// Short label for tables.
    pub fn label(&self) -> &'static str {
        match self {
            RoutingPolicy::Affinity => "affinity",
            RoutingPolicy::RoundRobin => "round-robin",
            RoutingPolicy::Random => "random",
        }
    }
}

/// One routing decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Decision {
    /// The node the request was placed on.
    pub node: usize,
    /// The rendezvous target (equals `node` unless the decision
    /// spilled; for the baseline policies it always equals `node`).
    pub hrw: usize,
    /// Whether load-based spill diverted the request away from its
    /// rendezvous target.
    pub spilled: bool,
}

/// The routing key of a request: the first 8 bytes of its root handle —
/// the same prefix the serve layer uses as a trace id, so routing
/// decisions and lifecycle events stitch together on one id.
pub fn handle_key(h: Handle) -> u64 {
    u64::from_le_bytes(h.raw()[..8].try_into().expect("handle has 32 bytes"))
}

/// SplitMix64 finalizer: the same stateless mixer the serve layer draws
/// request kinds with.
fn splitmix64(seed: u64) -> u64 {
    let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A node's salt depends on its index alone, so changing the node set
/// never re-salts the survivors — the minimal-remap property of
/// rendezvous hashing.
fn node_salt(node: usize) -> u64 {
    splitmix64(0xD15F_A7C4_0000_0000 ^ node as u64)
}

/// The rendezvous score of `(node, key)`: the node with the highest
/// score among the alive set owns the key.
pub fn hrw_score(node: usize, key: u64) -> u64 {
    splitmix64(node_salt(node) ^ key)
}

/// Deterministic router over a fixed node universe; liveness and load
/// are inputs per decision, not state.
pub struct Router {
    policy: RoutingPolicy,
    spill_margin: usize,
    cursor: usize,
    rng: u64,
}

impl Router {
    /// Creates a router. `spill_margin` is the backlog excess (in
    /// queued requests) the rendezvous target must show over the
    /// least-loaded node before an affinity decision spills; the
    /// baselines ignore it. `seed` drives only the `Random` policy.
    pub fn new(policy: RoutingPolicy, spill_margin: usize, seed: u64) -> Router {
        assert!(spill_margin > 0, "a zero margin would spill every tie");
        Router {
            policy,
            spill_margin,
            cursor: 0,
            rng: splitmix64(seed ^ 0x005E_ED0F_D15F_A7C4),
        }
    }

    /// Routes one key among the alive nodes given their current queue
    /// depths. Panics if no node is alive (the dispatcher guarantees at
    /// least one survivor by construction).
    pub fn route(&mut self, key: u64, alive: &[bool], depths: &[usize]) -> Decision {
        debug_assert_eq!(alive.len(), depths.len());
        assert!(alive.iter().any(|&a| a), "no node alive to route to");
        match self.policy {
            RoutingPolicy::Affinity => {
                let hrw = Self::rendezvous(key, alive);
                let least = (0..alive.len())
                    .filter(|&n| alive[n])
                    .min_by_key(|&n| (depths[n], n))
                    .expect("at least one node is alive");
                if depths[hrw] >= depths[least] + self.spill_margin {
                    Decision {
                        node: least,
                        hrw,
                        spilled: true,
                    }
                } else {
                    Decision {
                        node: hrw,
                        hrw,
                        spilled: false,
                    }
                }
            }
            RoutingPolicy::RoundRobin => loop {
                let n = self.cursor % alive.len();
                self.cursor = (self.cursor + 1) % alive.len();
                if alive[n] {
                    return Decision {
                        node: n,
                        hrw: n,
                        spilled: false,
                    };
                }
            },
            RoutingPolicy::Random => {
                self.rng = splitmix64(self.rng);
                let k = alive.iter().filter(|&&a| a).count();
                let pick = (self.rng % k as u64) as usize;
                let n = (0..alive.len())
                    .filter(|&n| alive[n])
                    .nth(pick)
                    .expect("pick < alive count");
                Decision {
                    node: n,
                    hrw: n,
                    spilled: false,
                }
            }
        }
    }

    /// The alive node with the highest rendezvous score for `key`
    /// (score ties break to the lowest index).
    fn rendezvous(key: u64, alive: &[bool]) -> usize {
        (0..alive.len())
            .filter(|&n| alive[n])
            .max_by_key(|&n| (hrw_score(n, key), usize::MAX - n))
            .expect("at least one node is alive")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_alive(n: usize) -> Vec<bool> {
        vec![true; n]
    }

    /// Synthetic keys from the same mixer the production path uses.
    fn keys(n: u64) -> impl Iterator<Item = u64> {
        (0..n).map(|i| splitmix64(i ^ 0xABCD))
    }

    #[test]
    fn hrw_is_deterministic_across_router_instances() {
        let alive = all_alive(5);
        let depths = vec![0; 5];
        for key in keys(100) {
            let a = Router::new(RoutingPolicy::Affinity, 4, 1).route(key, &alive, &depths);
            let b = Router::new(RoutingPolicy::Affinity, 4, 99).route(key, &alive, &depths);
            assert_eq!(a, b, "affinity ignores the seed and any router state");
            assert!(!a.spilled);
        }
    }

    #[test]
    fn hrw_balances_over_10k_synthetic_handles() {
        let nodes = 4;
        let alive = all_alive(nodes);
        let depths = vec![0; nodes];
        let mut router = Router::new(RoutingPolicy::Affinity, 4, 0);
        let mut counts = vec![0u64; nodes];
        for key in keys(10_000) {
            counts[router.route(key, &alive, &depths).node] += 1;
        }
        assert_eq!(counts.iter().sum::<u64>(), 10_000);
        for (n, &c) in counts.iter().enumerate() {
            // Uniform would give 2500 ± ~150 (3σ of a binomial draw);
            // allow a generous band that still catches a broken hash.
            assert!(
                (2_200..=2_800).contains(&c),
                "node {n} owns {c} of 10000 keys"
            );
        }
    }

    #[test]
    fn killing_a_node_remaps_only_its_keys() {
        let nodes = 4;
        let depths = vec![0; nodes];
        let mut full = Router::new(RoutingPolicy::Affinity, 4, 0);
        let mut partial = Router::new(RoutingPolicy::Affinity, 4, 0);
        let alive = all_alive(nodes);
        let mut degraded = all_alive(nodes);
        degraded[2] = false;
        let mut remapped = 0u64;
        for key in keys(10_000) {
            let before = full.route(key, &alive, &depths).node;
            let after = partial.route(key, &degraded, &depths).node;
            if before == 2 {
                assert_ne!(after, 2);
                remapped += 1;
            } else {
                assert_eq!(before, after, "survivors keep their keys");
            }
        }
        assert!(remapped > 0, "the dead node owned some keys");
    }

    #[test]
    fn spill_diverts_to_least_loaded_under_imbalance() {
        let alive = all_alive(3);
        let mut router = Router::new(RoutingPolicy::Affinity, 4, 0);
        // Find a key owned by node 0 so the imbalance scenario is
        // well-defined.
        let key = keys(1000)
            .find(|&k| Router::rendezvous(k, &alive) == 0)
            .expect("some key maps to node 0");
        // Below the margin: the rendezvous target keeps the key.
        let held = router.route(key, &alive, &[3, 0, 5]);
        assert_eq!((held.node, held.spilled), (0, false));
        // At the margin: spill to the least-loaded node (node 1).
        let spilled = router.route(key, &alive, &[4, 0, 5]);
        assert_eq!(spilled.node, 1);
        assert_eq!(spilled.hrw, 0);
        assert!(spilled.spilled);
    }

    #[test]
    fn round_robin_cycles_alive_nodes() {
        let mut alive = all_alive(3);
        alive[1] = false;
        let depths = vec![0; 3];
        let mut router = Router::new(RoutingPolicy::RoundRobin, 4, 0);
        let picks: Vec<usize> = keys(6)
            .map(|k| router.route(k, &alive, &depths).node)
            .collect();
        assert_eq!(picks, vec![0, 2, 0, 2, 0, 2]);
    }

    #[test]
    fn random_is_seed_deterministic() {
        let alive = all_alive(4);
        let depths = vec![0; 4];
        let run = |seed| {
            let mut router = Router::new(RoutingPolicy::Random, 4, seed);
            keys(200)
                .map(|k| router.route(k, &alive, &depths).node)
                .collect::<Vec<_>>()
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8), "a different seed must shift the picks");
        let picks = run(7);
        for n in 0..4 {
            assert!(picks.contains(&n), "node {n} never picked in 200 draws");
        }
    }
}
