//! The dispatcher tier: N independent node backends behind one
//! routing front-end, with first-class node failure.
//!
//! Like `fix_serve::serve`, a dispatch run has two synchronized halves:
//!
//! 1. **Virtual time.** One discrete-event simulation interleaves three
//!    event streams — arrivals (routed to a node at admission), driver
//!    completions (per node, per driver), and the optional fault plan
//!    (kill/restart instants) — in deterministic `(time, class)` order.
//!    Each node owns its own [`TenantQueues`], its own memoization set,
//!    and its own driver clocks, so per-node occupancy, attainment, and
//!    warm-hit counters fall out of the same virtual clock that makes
//!    the single-node tables bit-identical across runs.
//! 2. **Real execution.** Each node then executes exactly the batches
//!    its virtual drivers served, on its *own* backend: a fresh
//!    `fixpoint::Runtime` per node ([`NodeStorage::Memory`]) or one
//!    rooted in the node's own durable directory
//!    ([`NodeStorage::Durable`]). A restart splits the node's plan into
//!    *incarnation segments*: each segment opens the backend anew, so a
//!    warm restart of a durable node literally reopens its log and
//!    re-serves memoized work with zero procedures run.
//!
//! Routing happens at admission, on the dispatcher's own router
//! runtime: the request's thunk is minted there first, because the
//! content-addressed handle *is* the routing key ([`handle_key`]) — the
//! front-end knows the name of the computation before any node does.
//! The price is that shedding a request is no longer O(1) as in
//! single-node serve (the dispatcher has minted a thunk it then
//! drops); that cost is confined to the router runtime and never
//! touches a node.
//!
//! Node failure is part of the model, not an afterthought:
//! [`FaultPlan`] kills a node at a deterministic virtual instant
//! (in-flight virtual batches complete — the kill lands on a batch
//! boundary), drains its queued backlog, and re-routes it among the
//! survivors via the same policy; the later restart either reopens the
//! node's durable log warm ([`RestartKind::Warm`]) or clears its
//! memoization ([`RestartKind::Cold`]), which is exactly the
//! affinity-recovery difference `figures route` measures.

use crate::routing::{handle_key, Decision, Router, RoutingPolicy};
use fix_core::api::{BatchTicket, InvocationApi, Priority, SubmitApi, SubmitOptions};
use fix_core::error::{Error, Result};
use fix_core::handle::Handle;
use fix_durable::{DurableOptions, DurableStore, FsyncPolicy};
use fix_obs::EventKind;
use fix_serve::loadgen::{merge_timelines, tenant_seed, Arrival, Micros};
use fix_serve::queue::{QueuedRequest, TenantClass, TenantQueues};
use fix_serve::telemetry::LatencyHistogram;
use fix_serve::tenant::{draw_kind, RequestFactory};
use fix_serve::{DriverReport, NodeReport, ServeConfig, ServeReport, TenantReport};
use fixpoint::Runtime;
use std::collections::{HashSet, VecDeque};
use std::path::PathBuf;

/// Where each node keeps its state.
#[derive(Debug, Clone)]
pub enum NodeStorage {
    /// Every node incarnation starts empty (a restart is always cold).
    Memory,
    /// Node `i` owns the durable directory `<root>/node<i>` (append-only
    /// log + snapshots, `FsyncPolicy::Always`); a restart reopens it.
    Durable(PathBuf),
}

/// How a killed node comes back.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RestartKind {
    /// Reopen the node's durable log: memoized relations survive, so
    /// post-restart repeats are warm immediately. Requires
    /// [`NodeStorage::Durable`].
    Warm,
    /// Replace the node with an empty one: its memoization is gone and
    /// must be re-earned (the cold-replacement baseline).
    Cold,
}

/// A deterministic node-failure schedule: kill one node mid-run, then
/// bring it (or its replacement) back.
#[derive(Debug, Clone, Copy)]
pub struct FaultPlan {
    /// The node to kill.
    pub node: usize,
    /// Virtual instant of the kill. In-flight virtual batches complete
    /// (the kill lands on a batch boundary); the node's queued backlog
    /// is drained and re-routed to the survivors.
    pub kill_at_us: Micros,
    /// Virtual instant the node rejoins the alive set.
    pub restart_at_us: Micros,
    /// Warm (reopen the durable log) or cold (empty replacement).
    pub restart: RestartKind,
}

/// Configuration of one multi-node dispatch run.
#[derive(Debug, Clone)]
pub struct DispatchConfig {
    /// The per-node serving shape: tenants, traffic, batch size, queue
    /// capacity, and `drivers` — which here means drivers *per node*.
    pub base: ServeConfig,
    /// Number of node backends.
    pub nodes: usize,
    /// The placement policy.
    pub policy: RoutingPolicy,
    /// Backlog excess (queued requests) the rendezvous target must show
    /// over the least-loaded node before an affinity decision spills.
    pub spill_margin: usize,
    /// Per-node state backing.
    pub storage: NodeStorage,
    /// Optional deterministic node failure.
    pub fault: Option<FaultPlan>,
}

impl DispatchConfig {
    /// Validates the dispatch-specific invariants on top of
    /// [`ServeConfig::validate`].
    pub fn validate(&self) -> std::result::Result<(), String> {
        self.base.validate()?;
        if self.nodes == 0 {
            return Err("at least one node is required".into());
        }
        if self.spill_margin == 0 {
            return Err("spill margin must be positive".into());
        }
        if let Some(f) = &self.fault {
            if f.node >= self.nodes {
                return Err(format!("fault kills node {} of {}", f.node, self.nodes));
            }
            if self.nodes < 2 {
                return Err("a fault plan needs at least one survivor".into());
            }
            if f.restart_at_us <= f.kill_at_us {
                return Err("restart must come after the kill".into());
            }
            if f.restart == RestartKind::Warm && matches!(self.storage, NodeStorage::Memory) {
                return Err("a warm restart needs durable node storage".into());
            }
        }
        Ok(())
    }
}

/// Execution stats of one node incarnation (plan segment).
#[derive(Debug, Clone, Copy, Default)]
pub struct SegmentExec {
    /// Procedures actually executed (memoization misses) during the
    /// segment.
    pub procedures_run: u64,
    /// Memoized relations replayed from the node's log when the
    /// segment opened (0 for memory nodes and first cold opens).
    pub replayed_relations: u64,
    /// Objects indexed from disk at open.
    pub replayed_nodes: u64,
}

/// Per-node real-execution stats, one entry per incarnation.
#[derive(Debug, Clone, Default)]
pub struct NodeExecStats {
    /// Segment stats in incarnation order (index 0 is the initial
    /// incarnation; a restarted node has one more).
    pub segments: Vec<SegmentExec>,
}

impl NodeExecStats {
    /// Total procedures executed by this node across incarnations.
    pub fn procedures_run(&self) -> u64 {
        self.segments.iter().map(|s| s.procedures_run).sum()
    }
}

/// The outcome of one dispatch run.
pub struct DispatchOutcome {
    /// The aggregate serve report, with [`ServeReport::nodes`]
    /// populated (the per-node table is part of the deterministic
    /// `Display` surface).
    pub report: ServeReport,
    /// Per-node real-execution stats (wall-clock half; not part of the
    /// deterministic tables).
    pub exec: Vec<NodeExecStats>,
    /// Virtual µs from the fault's restart instant to the restarted
    /// node's first warm placement — the recovery window a warm
    /// restart shrinks and a cold replacement stretches. `None` when
    /// there was no fault or the node never re-warmed.
    pub recovery_window_us: Option<Micros>,
}

impl DispatchOutcome {
    /// The deterministic `Display` table (what must be bit-identical
    /// across runs and across the failure boundary).
    pub fn table(&self) -> String {
        self.report.to_string()
    }

    /// Total procedures executed across all nodes and incarnations.
    pub fn procedures_run(&self) -> u64 {
        self.exec.iter().map(|e| e.procedures_run()).sum()
    }

    /// Warm-hit rate across all placements (the number affinity routing
    /// is supposed to win on).
    pub fn hit_rate(&self) -> f64 {
        let warm: u64 = self.report.nodes.iter().map(|n| n.warm_hits).sum();
        let cold: u64 = self.report.nodes.iter().map(|n| n.cold_misses).sum();
        if warm + cold == 0 {
            return 0.0;
        }
        warm as f64 / (warm + cold) as f64
    }

    /// The accounting-closure identities every dispatch run must
    /// satisfy, fault or not. Panics when violated.
    ///
    /// * per tenant: `offered == admitted + dropped` and
    ///   `admitted == ok + errors + expired + cancelled`;
    /// * per run: every admitted request was routed exactly once
    ///   (`Σ routed == Σ admitted`), every placement was priced
    ///   (`Σ (warm + cold) == Σ (routed + rerouted_in)`), and every
    ///   routed request was eventually served or expired *somewhere*
    ///   (`Σ (served + expired) == Σ admitted`) — re-routing moves
    ///   work, it never loses or double-counts it.
    pub fn assert_accounting_closure(&self) {
        let mut admitted_total = 0u64;
        for t in &self.report.tenants {
            assert_eq!(
                t.offered,
                t.admitted + t.dropped,
                "tenant '{}': offered != admitted + dropped",
                t.name
            );
            assert_eq!(
                t.admitted,
                t.ok + t.errors + t.expired + t.cancelled,
                "tenant '{}': admitted != ok + errors + expired + cancelled",
                t.name
            );
            admitted_total += t.admitted;
        }
        let nodes = &self.report.nodes;
        let routed: u64 = nodes.iter().map(|n| n.routed).sum();
        assert_eq!(routed, admitted_total, "every admitted request is routed");
        let placements: u64 = nodes.iter().map(|n| n.routed + n.rerouted_in).sum();
        let priced: u64 = nodes.iter().map(|n| n.warm_hits + n.cold_misses).sum();
        assert_eq!(priced, placements, "every placement is priced warm or cold");
        let settled: u64 = nodes.iter().map(|n| n.served + n.expired).sum();
        assert_eq!(
            settled, admitted_total,
            "every admitted request is served or expired on some node"
        );
    }
}

/// A planned batch on one node's driver (the unit the real execution
/// replays).
struct PlannedBatch {
    requests: Vec<QueuedRequest>,
    priority: Priority,
}

/// One node incarnation's plans, per driver.
struct Segment {
    per_driver: Vec<Vec<PlannedBatch>>,
}

impl Segment {
    fn new(drivers: usize) -> Segment {
        Segment {
            per_driver: (0..drivers).map(|_| Vec::new()).collect(),
        }
    }
}

/// Trace id of a request (shared convention with the serve layer).
fn req_trace_id(h: Handle) -> u64 {
    handle_key(h)
}

/// The virtual half of a dispatch run: all mutable simulation state.
struct Sim<'a> {
    cfg: &'a DispatchConfig,
    router: Router,
    router_rt: Runtime,
    factory: RequestFactory,
    queues: Vec<TenantQueues>,
    seen: Vec<HashSet<Handle>>,
    free: Vec<Vec<Micros>>,
    alive: Vec<bool>,
    plans: Vec<Vec<Segment>>,
    nodes: Vec<NodeReport>,
    drivers: Vec<DriverReport>,
    tenant_hists: Vec<LatencyHistogram>,
    wait_hists: Vec<LatencyHistogram>,
    service_hists: Vec<LatencyHistogram>,
    fill_hists: Vec<LatencyHistogram>,
    admitted: Vec<u64>,
    expired: Vec<u64>,
    depth_gauges: Vec<fix_obs::Gauge>,
    tracing: bool,
    makespan: Micros,
    restarted_at: Vec<Option<Micros>>,
    recovery_window_us: Option<Micros>,
}

impl<'a> Sim<'a> {
    fn new(cfg: &'a DispatchConfig) -> Result<Sim<'a>> {
        let router_rt = Runtime::builder().build();
        let factory = RequestFactory::install(&router_rt, &cfg.base.tenants, cfg.base.seed)?;
        let classes: Vec<TenantClass> = cfg
            .base
            .tenants
            .iter()
            .map(|t| TenantClass {
                weight: t.weight,
                priority: t.slo.priority,
                deadline_us: t.slo.deadline_us,
            })
            .collect();
        let n_tenants = cfg.base.tenants.len();
        Ok(Sim {
            router: Router::new(cfg.policy, cfg.spill_margin, cfg.base.seed),
            router_rt,
            factory,
            queues: (0..cfg.nodes)
                .map(|_| TenantQueues::new(classes.clone(), cfg.base.queue_capacity))
                .collect(),
            seen: (0..cfg.nodes).map(|_| HashSet::new()).collect(),
            free: (0..cfg.nodes).map(|_| vec![0; cfg.base.drivers]).collect(),
            alive: vec![true; cfg.nodes],
            plans: (0..cfg.nodes)
                .map(|_| vec![Segment::new(cfg.base.drivers)])
                .collect(),
            nodes: vec![NodeReport::default(); cfg.nodes],
            drivers: (0..cfg.nodes * cfg.base.drivers)
                .map(|_| DriverReport {
                    batches: 0,
                    requests: 0,
                    busy_us: 0,
                    latency: LatencyHistogram::new(),
                })
                .collect(),
            tenant_hists: (0..n_tenants).map(|_| LatencyHistogram::new()).collect(),
            wait_hists: (0..n_tenants).map(|_| LatencyHistogram::new()).collect(),
            service_hists: (0..n_tenants).map(|_| LatencyHistogram::new()).collect(),
            fill_hists: (0..n_tenants).map(|_| LatencyHistogram::new()).collect(),
            admitted: vec![0; n_tenants],
            expired: vec![0; n_tenants],
            depth_gauges: (0..cfg.nodes)
                .map(|i| fix_obs::global().gauge(&format!("dispatch.node{i}.queue_depth")))
                .collect(),
            tracing: fix_obs::tracing_enabled(),
            makespan: 0,
            restarted_at: vec![None; cfg.nodes],
            recovery_window_us: None,
            cfg,
        })
    }

    /// Total queued requests across all nodes.
    fn backlog(&self) -> usize {
        self.queues.iter().map(|q| q.len()).sum()
    }

    /// Counts a placement on `node` as warm or cold and, if this is the
    /// restarted node's first warm placement, closes the recovery
    /// window.
    fn price_placement(&mut self, node: usize, warm: bool, now: Micros) {
        if warm {
            self.nodes[node].warm_hits += 1;
            if self.recovery_window_us.is_none() {
                if let Some(r) = self.restarted_at[node] {
                    if now >= r {
                        self.recovery_window_us = Some(now - r);
                    }
                }
            }
        } else {
            self.nodes[node].cold_misses += 1;
        }
    }

    /// Routes and admits one arrival.
    fn admit(&mut self, a: &Arrival) -> Result<()> {
        let spec = &self.cfg.base.tenants[a.tenant];
        let kind = draw_kind(
            &spec.mix,
            tenant_seed(self.cfg.base.seed, a.tenant, 1),
            a.seq,
        );
        // Mint on the router runtime: the content-addressed handle is
        // the routing key, known before any node sees the request.
        let thunk = self.factory.mint(&self.router_rt, a.tenant, a.seq, kind)?;
        let key = handle_key(thunk);
        let depths: Vec<usize> = self.queues.iter().map(|q| q.len()).collect();
        let d: Decision = self.router.route(key, &self.alive, &depths);
        if d.spilled {
            self.nodes[d.hrw].spilled_away += 1;
            if self.tracing {
                fix_obs::emit(
                    EventKind::Spill,
                    a.time_us,
                    key,
                    d.node as u32,
                    d.hrw as u32,
                );
            }
        }
        let n = d.node;
        if self.queues[n].at_capacity(a.tenant) {
            self.queues[n].shed(a.tenant);
            if self.tracing {
                fix_obs::emit(
                    EventKind::ServeShed,
                    a.time_us,
                    key,
                    a.tenant as u32,
                    self.queues[n].tenant_depth(a.tenant) as u32,
                );
            }
            return Ok(());
        }
        let warm = self.seen[n].contains(&thunk);
        let service_us = if warm {
            kind.warm_service_us()
        } else {
            kind.cold_service_us()
        };
        let offered = self.queues[n].offer(QueuedRequest {
            arrival_us: a.time_us,
            tenant: a.tenant,
            seq: a.seq,
            kind,
            thunk,
            service_us,
            deadline_us: spec.slo.deadline_us.map(|dl| a.time_us + dl),
        });
        debug_assert!(offered, "capacity was checked above");
        self.admitted[a.tenant] += 1;
        self.seen[n].insert(thunk);
        self.nodes[n].routed += 1;
        self.price_placement(n, warm, a.time_us);
        if self.tracing {
            fix_obs::emit(EventKind::Route, a.time_us, key, n as u32, warm as u32);
            fix_obs::emit(
                EventKind::ServeAdmit,
                a.time_us,
                key,
                a.tenant as u32,
                self.queues[n].tenant_depth(a.tenant) as u32,
            );
        }
        Ok(())
    }

    /// Kills the fault's node at virtual instant `t`: in-flight virtual
    /// batches have already completed (their completions were stamped
    /// at dispatch), so the kill drains the queued backlog and
    /// re-routes it among the survivors.
    fn kill(&mut self, node: usize, t: Micros) {
        self.alive[node] = false;
        self.nodes[node].kills += 1;
        let drained = self.queues[node].drain_all();
        if self.tracing {
            fix_obs::emit(EventKind::NodeKill, t, 0, node as u32, drained.len() as u32);
        }
        for mut req in drained {
            let key = handle_key(req.thunk);
            let depths: Vec<usize> = self.queues.iter().map(|q| q.len()).collect();
            let d = self.router.route(key, &self.alive, &depths);
            if d.spilled {
                self.nodes[d.hrw].spilled_away += 1;
                if self.tracing {
                    fix_obs::emit(EventKind::Spill, t, key, d.node as u32, d.hrw as u32);
                }
            }
            let m = d.node;
            // Re-price against the survivor's memoization: the dead
            // node's warmth does not transfer.
            let warm = self.seen[m].contains(&req.thunk);
            req.service_us = if warm {
                req.kind.warm_service_us()
            } else {
                req.kind.cold_service_us()
            };
            // Force-enqueue: the request was admitted (and counted)
            // once already; failover must not shed or re-offer it.
            self.queues[m].requeue(req);
            self.seen[m].insert(req.thunk);
            self.nodes[m].rerouted_in += 1;
            self.price_placement(m, warm, t);
            if self.tracing {
                fix_obs::emit(EventKind::Route, t, key, m as u32, warm as u32);
            }
        }
    }

    /// Restarts the fault's node at virtual instant `t`, warm or cold,
    /// opening a new incarnation segment for the real execution.
    fn restart(&mut self, node: usize, kind: RestartKind, t: Micros) {
        self.alive[node] = true;
        self.nodes[node].restarts += 1;
        if kind == RestartKind::Cold {
            self.seen[node].clear();
        }
        for f in &mut self.free[node] {
            *f = (*f).max(t);
        }
        self.plans[node].push(Segment::new(self.cfg.base.drivers));
        self.restarted_at[node] = Some(t);
        if self.tracing {
            fix_obs::emit(
                EventKind::NodeRestart,
                t,
                0,
                node as u32,
                (kind == RestartKind::Warm) as u32,
            );
        }
    }

    /// Serves one batch on node `n`, driver `d`, at virtual time `now`.
    fn dispatch_on(&mut self, n: usize, d: usize, now: Micros) {
        let dispatch = self.queues[n].next_dispatch(self.cfg.base.batch, now);
        for r in &dispatch.expired {
            self.expired[r.tenant] += 1;
            self.nodes[n].expired += 1;
            if self.tracing {
                fix_obs::emit(
                    EventKind::ServeExpire,
                    now,
                    req_trace_id(r.thunk),
                    r.tenant as u32,
                    0,
                );
            }
        }
        let batch = dispatch.requests;
        if batch.is_empty() {
            return;
        }
        let service: Micros =
            self.cfg.base.batch_overhead_us + batch.iter().map(|r| r.service_us).sum::<Micros>();
        let done = now + service;
        // Queue-depth sample at dispatch: the node gauge always, plus
        // one per-tenant lifecycle event per tenant the batch drew from
        // (mirroring the single-node loop).
        self.depth_gauges[n].set(self.queues[n].len() as i64);
        if self.tracing {
            let mut sampled: Vec<usize> = batch.iter().map(|r| r.tenant).collect();
            sampled.sort_unstable();
            sampled.dedup();
            for &t in &sampled {
                fix_obs::emit(
                    EventKind::ServeQueueDepth,
                    now,
                    0,
                    t as u32,
                    self.queues[n].tenant_depth(t) as u32,
                );
            }
        }
        let flat = n * self.cfg.base.drivers + d;
        for r in &batch {
            debug_assert!(r.arrival_us <= now, "service must not precede arrival");
            let latency = done - r.arrival_us;
            let wait = now - r.arrival_us;
            let fill = service - r.service_us;
            self.tenant_hists[r.tenant].record(latency);
            self.wait_hists[r.tenant].record(wait);
            self.service_hists[r.tenant].record(r.service_us);
            self.fill_hists[r.tenant].record(fill);
            self.drivers[flat].latency.record(latency);
            self.nodes[n].served += 1;
            if self.tracing {
                let id = req_trace_id(r.thunk);
                let clamp = |v: Micros| v.min(u32::MAX as Micros) as u32;
                fix_obs::emit(
                    EventKind::ServeDispatch,
                    now,
                    id,
                    r.tenant as u32,
                    clamp(wait),
                );
                fix_obs::emit(
                    EventKind::ServeComplete,
                    done,
                    id,
                    r.tenant as u32,
                    clamp(latency),
                );
            }
        }
        self.drivers[flat].batches += 1;
        self.drivers[flat].requests += batch.len() as u64;
        self.drivers[flat].busy_us += service;
        self.nodes[n].busy_us += service;
        self.free[n][d] = done;
        self.makespan = self.makespan.max(done);
        self.plans[n]
            .last_mut()
            .expect("a node always has a current segment")
            .per_driver[d]
            .push(PlannedBatch {
                requests: batch,
                priority: dispatch.priority,
            });
    }
}

/// Per-tenant outcome counters one node accumulates while settling its
/// executed batches.
#[derive(Clone)]
struct Tally {
    ok: Vec<u64>,
    errors: Vec<u64>,
    expired: Vec<u64>,
    cancelled: Vec<u64>,
}

impl Tally {
    fn new(n: usize) -> Tally {
        Tally {
            ok: vec![0; n],
            errors: vec![0; n],
            expired: vec![0; n],
            cancelled: vec![0; n],
        }
    }

    fn absorb(&mut self, other: &Tally) {
        for t in 0..self.ok.len() {
            self.ok[t] += other.ok[t];
            self.errors[t] += other.errors[t];
            self.expired[t] += other.expired[t];
            self.cancelled[t] += other.cancelled[t];
        }
    }
}

/// Executes one incarnation segment on `rt`: every driver's planned
/// batches, re-minted on the node's own backend (content addressing
/// guarantees the same handles the router minted), each driver keeping
/// `inflight` batches submitted.
fn run_segment<A: SubmitApi + InvocationApi + Send + Sync>(
    rt: &A,
    factory: &RequestFactory,
    segment: &Segment,
    inflight: usize,
    n_tenants: usize,
) -> Result<Tally> {
    let tallies: Vec<Result<Tally>> = std::thread::scope(|scope| {
        let handles: Vec<_> = segment
            .per_driver
            .iter()
            .map(|plan| {
                scope.spawn(move || -> Result<Tally> {
                    let mut tally = Tally::new(n_tenants);
                    let settle =
                        |batch: &PlannedBatch, results: Vec<Result<Handle>>, tally: &mut Tally| {
                            for (r, req) in results.iter().zip(&batch.requests) {
                                match r {
                                    Ok(_) => tally.ok[req.tenant] += 1,
                                    Err(Error::DeadlineExceeded { .. }) => {
                                        tally.expired[req.tenant] += 1
                                    }
                                    Err(Error::Cancelled) => tally.cancelled[req.tenant] += 1,
                                    Err(_) => tally.errors[req.tenant] += 1,
                                }
                            }
                        };
                    let mut window: VecDeque<(&PlannedBatch, BatchTicket)> =
                        VecDeque::with_capacity(inflight);
                    for batch in plan {
                        while window.len() >= inflight {
                            let (done, ticket) = window.pop_front().expect("window is non-empty");
                            settle(done, ticket.wait(), &mut tally);
                        }
                        let mut thunks = Vec::with_capacity(batch.requests.len());
                        for r in &batch.requests {
                            let minted = factory.mint(rt, r.tenant, r.seq, r.kind)?;
                            debug_assert_eq!(
                                minted, r.thunk,
                                "content addressing must reproduce the routed handle"
                            );
                            thunks.push(minted);
                        }
                        let options = SubmitOptions::default().with_priority(batch.priority);
                        window.push_back((batch, rt.submit_with(&thunks, options)));
                    }
                    while let Some((done, ticket)) = window.pop_front() {
                        settle(done, ticket.wait(), &mut tally);
                    }
                    Ok(tally)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("driver thread must not panic"))
            .collect()
    });
    let mut total = Tally::new(n_tenants);
    for t in tallies {
        total.absorb(&t?);
    }
    Ok(total)
}

/// Executes all of one node's incarnation segments in order, opening
/// the node's backend anew for each (which is what makes a durable
/// node's restart a real log reopen).
fn run_node(
    node: usize,
    segments: &[Segment],
    cfg: &DispatchConfig,
) -> Result<(Tally, NodeExecStats)> {
    let n_tenants = cfg.base.tenants.len();
    let mut tally = Tally::new(n_tenants);
    let mut stats = NodeExecStats::default();
    // A cold restart is a *replacement* node: later incarnations open a
    // fresh directory instead of the original log, so the real
    // execution matches the virtual model's cleared memoization.
    let cold_replacement = matches!(
        cfg.fault,
        Some(f) if f.node == node && f.restart == RestartKind::Cold
    );
    for (si, segment) in segments.iter().enumerate() {
        match &cfg.storage {
            NodeStorage::Memory => {
                let rt = Runtime::builder().build();
                let factory = RequestFactory::install(&rt, &cfg.base.tenants, cfg.base.seed)?;
                tally.absorb(&run_segment(
                    &rt,
                    &factory,
                    segment,
                    cfg.base.inflight,
                    n_tenants,
                )?);
                stats.segments.push(SegmentExec {
                    procedures_run: rt.procedures_run(),
                    replayed_relations: 0,
                    replayed_nodes: 0,
                });
            }
            NodeStorage::Durable(root) => {
                let dir = if cold_replacement && si > 0 {
                    root.join(format!("node{node}.r{si}"))
                } else {
                    root.join(format!("node{node}"))
                };
                let store = DurableStore::open(
                    &dir,
                    DurableOptions {
                        fsync: FsyncPolicy::Always,
                        ..DurableOptions::default()
                    },
                )?;
                let at_open = store.stats();
                let rt = Runtime::builder().durable(store).build();
                let factory = RequestFactory::install(&rt, &cfg.base.tenants, cfg.base.seed)?;
                tally.absorb(&run_segment(
                    &rt,
                    &factory,
                    segment,
                    cfg.base.inflight,
                    n_tenants,
                )?);
                rt.durable().expect("built durable").flush()?;
                stats.segments.push(SegmentExec {
                    procedures_run: rt.procedures_run(),
                    replayed_relations: at_open.replayed_relations,
                    replayed_nodes: at_open.replayed_nodes,
                });
            }
        }
    }
    Ok((tally, stats))
}

/// Runs the full multi-node dispatch pipeline: generate traffic, route
/// and serve it across `cfg.nodes` virtual nodes (applying the fault
/// plan, if any), then execute every node's planned batches on its own
/// real backend.
pub fn dispatch(cfg: &DispatchConfig) -> Result<DispatchOutcome> {
    cfg.validate().map_err(|message| Error::Backend {
        backend: "dispatch",
        message,
    })?;
    let mut sim = Sim::new(cfg)?;

    let per_tenant: Vec<Vec<Micros>> = cfg
        .base
        .tenants
        .iter()
        .enumerate()
        .map(|(i, t)| {
            t.arrivals
                .generate(tenant_seed(cfg.base.seed, i, 0), cfg.base.duration_us)
        })
        .collect();
    let timeline = merge_timelines(per_tenant);

    // The fault plan as an event queue: kill, then restart.
    #[derive(Clone, Copy)]
    enum FaultEv {
        Kill(usize),
        Restart(usize, RestartKind),
    }
    let mut faults: VecDeque<(Micros, FaultEv)> = VecDeque::new();
    if let Some(f) = &cfg.fault {
        faults.push_back((f.kill_at_us, FaultEv::Kill(f.node)));
        faults.push_back((f.restart_at_us, FaultEv::Restart(f.node, f.restart)));
    }

    // ------------------------------------------------------------------
    // The discrete-event loop. Three event classes, merged in
    // deterministic (time, class) order: faults (0) fire before
    // arrivals (1) fire before dispatches (2) at the same instant —
    // so a request arriving at the kill instant already routes to the
    // survivors, and a dispatch at an arrival instant sees the arrival.
    // ------------------------------------------------------------------
    let mut next = 0usize;
    let mut now_global: Micros = 0;
    loop {
        let t_fault = faults.front().map(|&(t, _)| t.max(now_global));
        let t_arr = (next < timeline.len()).then(|| timeline[next].time_us.max(now_global));
        // The next dispatch: over alive nodes with backlog, the
        // earliest-free driver (ties to the lowest node, then driver —
        // the same deterministic order the single-node loop uses). A
        // driver that went idle before work arrived picks up at the
        // current instant, never in the past.
        let disp = (0..cfg.nodes)
            .filter(|&n| sim.alive[n] && !sim.queues[n].is_empty())
            .flat_map(|n| (0..cfg.base.drivers).map(move |d| (n, d)))
            .min_by_key(|&(n, d)| (sim.free[n][d].max(now_global), n, d));
        let t_disp = disp.map(|(n, d)| sim.free[n][d].max(now_global));

        let mut best: Option<(Micros, u8)> = None;
        for cand in [
            t_fault.map(|t| (t, 0u8)),
            t_arr.map(|t| (t, 1)),
            t_disp.map(|t| (t, 2)),
        ]
        .into_iter()
        .flatten()
        {
            if best.is_none_or(|b| cand < b) {
                best = Some(cand);
            }
        }
        let Some((t, class)) = best else { break };
        now_global = t;
        match class {
            0 => {
                let (_, ev) = faults.pop_front().expect("fault event is due");
                match ev {
                    FaultEv::Kill(n) => sim.kill(n, t),
                    FaultEv::Restart(n, k) => sim.restart(n, k, t),
                }
            }
            1 => {
                while next < timeline.len() && timeline[next].time_us <= t {
                    sim.admit(&timeline[next])?;
                    next += 1;
                }
            }
            _ => {
                let (n, d) = disp.expect("a dispatch candidate was selected");
                sim.dispatch_on(n, d, t);
            }
        }
    }
    debug_assert_eq!(sim.backlog(), 0, "the loop drains every queue");

    // ------------------------------------------------------------------
    // Real execution: each node replays its incarnation segments on its
    // own backend, nodes in parallel, drivers within a node in
    // parallel, segments in order.
    // ------------------------------------------------------------------
    let exec_start = std::time::Instant::now();
    let results: Vec<Result<(Tally, NodeExecStats)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = sim
            .plans
            .iter()
            .enumerate()
            .map(|(n, segments)| scope.spawn(move || run_node(n, segments, cfg)))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("node thread must not panic"))
            .collect()
    });
    let execution_wall = exec_start.elapsed();
    let mut totals = Tally::new(cfg.base.tenants.len());
    let mut exec = Vec::with_capacity(cfg.nodes);
    for r in results {
        let (tally, stats) = r?;
        totals.absorb(&tally);
        exec.push(stats);
    }

    let tenants: Vec<TenantReport> = cfg
        .base
        .tenants
        .iter()
        .enumerate()
        .map(|(i, t)| {
            fix_obs::global()
                .histogram(&format!("serve.{}.latency_us", t.name))
                .merge_from(&sim.tenant_hists[i]);
            TenantReport {
                name: t.name.clone(),
                class: t.slo.priority.label(),
                offered: sim.queues.iter().map(|q| q.offered[i]).sum(),
                admitted: sim.admitted[i],
                dropped: sim.queues.iter().map(|q| q.dropped[i]).sum(),
                rejected: sim.queues.iter().map(|q| q.rejected[i]).sum(),
                ok: totals.ok[i],
                errors: totals.errors[i],
                expired: sim.expired[i] + totals.expired[i],
                cancelled: totals.cancelled[i],
                latency: std::mem::take(&mut sim.tenant_hists[i]),
                queue_wait: std::mem::take(&mut sim.wait_hists[i]),
                service: std::mem::take(&mut sim.service_hists[i]),
                fill: std::mem::take(&mut sim.fill_hists[i]),
            }
        })
        .collect();
    let completed = tenants.iter().map(|t| t.ok + t.errors).sum();
    Ok(DispatchOutcome {
        report: ServeReport {
            tenants,
            drivers: sim.drivers,
            nodes: sim.nodes,
            scaling: Vec::new(),
            makespan_us: sim.makespan,
            completed,
            execution_wall,
        },
        exec,
        recovery_window_us: sim.recovery_window_us,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use fix_serve::{ArrivalProcess, RequestKind, TenantSpec};
    use std::path::Path;

    /// A repeat-heavy two-tenant workload: fib cycles 6 distinct
    /// thunks, the SeBS renders cycle 3 users — exactly the traffic
    /// shape where placement decides the memoization hit rate.
    fn base_cfg(seed: u64) -> ServeConfig {
        ServeConfig {
            seed,
            duration_us: 60_000,
            drivers: 1, // per node
            batch: 8,
            queue_capacity: 64,
            batch_overhead_us: 5,
            inflight: 2,
            tenants: vec![
                TenantSpec::uniform_mix(
                    "fib",
                    2,
                    ArrivalProcess::Poisson { rate_rps: 2500.0 },
                    RequestKind::Fib { max_n: 6 },
                ),
                TenantSpec::uniform_mix(
                    "renders",
                    1,
                    ArrivalProcess::Uniform { period_us: 500 },
                    RequestKind::SebsHtml { users: 3 },
                ),
            ],
        }
    }

    fn cfg(seed: u64, nodes: usize, policy: RoutingPolicy) -> DispatchConfig {
        DispatchConfig {
            base: base_cfg(seed),
            nodes,
            policy,
            spill_margin: 16,
            storage: NodeStorage::Memory,
            fault: None,
        }
    }

    fn fault_cfg(root: &Path, restart: RestartKind) -> DispatchConfig {
        let mut base = base_cfg(17);
        // A burst landing 100 µs before the kill guarantees the dead
        // node has queued work to strand (single driver per node, cold
        // wordcount service ≫ 100 µs).
        base.tenants.push(TenantSpec::uniform_mix(
            "bursty",
            1,
            ArrivalProcess::Bursts {
                period_us: 19_900,
                burst: 48,
            },
            RequestKind::Wordcount { shard_bytes: 4096 },
        ));
        DispatchConfig {
            base,
            nodes: 3,
            policy: RoutingPolicy::Affinity,
            spill_margin: 16,
            storage: NodeStorage::Durable(root.to_path_buf()),
            fault: Some(FaultPlan {
                node: 1,
                kill_at_us: 20_000,
                restart_at_us: 30_000,
                restart,
            }),
        }
    }

    #[test]
    fn same_seed_same_tables_across_policies() {
        for policy in [
            RoutingPolicy::Affinity,
            RoutingPolicy::RoundRobin,
            RoutingPolicy::Random,
        ] {
            let a = dispatch(&cfg(11, 4, policy)).unwrap();
            let b = dispatch(&cfg(11, 4, policy)).unwrap();
            assert_eq!(a.table(), b.table(), "{policy:?} must be deterministic");
            a.assert_accounting_closure();
            let c = dispatch(&cfg(12, 4, policy)).unwrap();
            assert_ne!(a.table(), c.table(), "a different seed must shift traffic");
        }
    }

    /// The tentpole acceptance pin: under the same seed, affinity
    /// routing concentrates repeats so each distinct thunk goes cold on
    /// exactly one node, while random / round-robin pay the cold cost
    /// on (up to) every node.
    #[test]
    fn affinity_strictly_beats_random_and_round_robin() {
        let affinity = dispatch(&cfg(29, 4, RoutingPolicy::Affinity)).unwrap();
        let random = dispatch(&cfg(29, 4, RoutingPolicy::Random)).unwrap();
        let rr = dispatch(&cfg(29, 4, RoutingPolicy::RoundRobin)).unwrap();
        for o in [&affinity, &random, &rr] {
            o.assert_accounting_closure();
        }
        assert!(
            affinity.hit_rate() > random.hit_rate(),
            "affinity {:.3} must beat random {:.3}",
            affinity.hit_rate(),
            random.hit_rate()
        );
        assert!(
            affinity.hit_rate() > rr.hit_rate(),
            "affinity {:.3} must beat round-robin {:.3}",
            affinity.hit_rate(),
            rr.hit_rate()
        );
    }

    #[test]
    fn single_node_dispatch_degenerates_cleanly() {
        let o = dispatch(&cfg(5, 1, RoutingPolicy::Affinity)).unwrap();
        o.assert_accounting_closure();
        assert_eq!(o.report.nodes.len(), 1);
        assert_eq!(o.report.nodes[0].spilled_away, 0, "nowhere to spill to");
    }

    #[test]
    fn kill_reroute_and_warm_restart_close_accounting_bit_identically() {
        let dir_a = tempfile::tempdir().unwrap();
        let a = dispatch(&fault_cfg(dir_a.path(), RestartKind::Warm)).unwrap();
        a.assert_accounting_closure();
        let killed = &a.report.nodes[1];
        assert_eq!((killed.kills, killed.restarts), (1, 1));
        let rerouted: u64 = a.report.nodes.iter().map(|n| n.rerouted_in).sum();
        assert!(rerouted > 0, "the kill must strand queued work");
        assert_eq!(
            a.report.nodes[0].rerouted_in + a.report.nodes[2].rerouted_in,
            rerouted,
            "failover lands only on survivors"
        );
        assert_eq!(
            a.exec[1].segments.len(),
            2,
            "restart opens a new incarnation"
        );
        assert!(
            a.exec[1].segments[1].replayed_relations > 0,
            "the warm restart replays the node's own log"
        );

        // Same config, fresh directories: bit-identical tables across
        // the failure boundary.
        let dir_b = tempfile::tempdir().unwrap();
        let b = dispatch(&fault_cfg(dir_b.path(), RestartKind::Warm)).unwrap();
        assert_eq!(a.table(), b.table());

        // Same config, same directories: every relation is already
        // logged, so the whole re-run replays with zero procedures.
        let c = dispatch(&fault_cfg(dir_a.path(), RestartKind::Warm)).unwrap();
        assert_eq!(a.table(), c.table());
        assert_eq!(c.procedures_run(), 0, "a warm re-serve replays everything");
        assert!(a.procedures_run() > 0, "the first pass really executed");
    }

    #[test]
    fn warm_restart_rewarms_faster_than_a_cold_replacement() {
        let warm_dir = tempfile::tempdir().unwrap();
        let cold_dir = tempfile::tempdir().unwrap();
        let warm = dispatch(&fault_cfg(warm_dir.path(), RestartKind::Warm)).unwrap();
        let cold = dispatch(&fault_cfg(cold_dir.path(), RestartKind::Cold)).unwrap();
        warm.assert_accounting_closure();
        cold.assert_accounting_closure();
        let w = warm.recovery_window_us.expect("warm node re-warms");
        let c = cold
            .recovery_window_us
            .expect("cold node re-warms eventually");
        assert!(
            w < c,
            "warm restart must re-warm sooner ({w} µs) than a cold replacement ({c} µs)"
        );
    }

    #[test]
    fn validation_rejects_degenerate_setups() {
        let mut c = cfg(1, 0, RoutingPolicy::Affinity);
        assert!(dispatch(&c).is_err());
        c = cfg(1, 2, RoutingPolicy::Affinity);
        c.spill_margin = 0;
        assert!(dispatch(&c).is_err());
        // A fault needs a survivor.
        c = cfg(1, 1, RoutingPolicy::Affinity);
        c.fault = Some(FaultPlan {
            node: 0,
            kill_at_us: 10,
            restart_at_us: 20,
            restart: RestartKind::Cold,
        });
        assert!(dispatch(&c).is_err());
        // Warm restarts need durable storage.
        c = cfg(1, 2, RoutingPolicy::Affinity);
        c.fault = Some(FaultPlan {
            node: 0,
            kill_at_us: 10,
            restart_at_us: 20,
            restart: RestartKind::Warm,
        });
        assert!(dispatch(&c).is_err());
        // Restart must follow the kill.
        c = cfg(1, 2, RoutingPolicy::Affinity);
        c.fault = Some(FaultPlan {
            node: 0,
            kill_at_us: 20,
            restart_at_us: 20,
            restart: RestartKind::Cold,
        });
        assert!(dispatch(&c).is_err());
    }
}
