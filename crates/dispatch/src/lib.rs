//! `fix-dispatch`: a multi-node serving tier with memoization-affinity
//! routing and warm node recovery.
//!
//! The ROADMAP's target topology is a dispatcher in front of N
//! independent node backends — each its own `fixpoint::Runtime`,
//! optionally rooted in its own durable directory — serving the
//! "heavy traffic from millions of users" regime. The paper's
//! content-addressed dataflow makes the interesting part *free*: a
//! request's root handle is computable at the front-end, before any
//! node is involved, so the dispatcher knows exactly which node has
//! that computation memoized. Cache-aware placement is information,
//! not a heuristic.
//!
//! Three pieces:
//!
//! * [`routing`] — rendezvous (HRW) hashing on the root handle with
//!   load-based spill to the least-loaded node, pluggable against the
//!   [`RoutingPolicy::RoundRobin`] and [`RoutingPolicy::Random`]
//!   baselines so the memoization hit-rate win is measurable under the
//!   same seed;
//! * [`dispatcher`] — the two-halves engine (shared with `fix-serve`):
//!   a deterministic virtual-clock simulation that routes, queues, and
//!   serves every request per node, then a real execution phase where
//!   each node replays exactly its planned batches on its own backend;
//! * node failure as a first-class event — [`FaultPlan`] kills a node
//!   at a deterministic instant (its backlog re-routes to the
//!   survivors), then restarts it [`RestartKind::Warm`] (reopen the
//!   durable log; memoization survives) or [`RestartKind::Cold`]
//!   (empty replacement; warmth must be re-earned).
//!
//! The per-node table ([`fix_serve::NodeReport`]) rides inside the
//! ordinary [`fix_serve::ServeReport`], and — like every serve table —
//! is a pure function of the virtual clock: bit-identical across runs,
//! worker counts, and the failure boundary.
//!
//! # Example
//!
//! ```
//! use fix_dispatch::{dispatch, DispatchConfig, NodeStorage, RoutingPolicy};
//! use fix_serve::{ArrivalProcess, RequestKind, ServeConfig, TenantSpec};
//!
//! let cfg = DispatchConfig {
//!     base: ServeConfig {
//!         seed: 7,
//!         duration_us: 30_000,
//!         drivers: 1, // per node
//!         batch: 8,
//!         queue_capacity: 64,
//!         batch_overhead_us: 5,
//!         inflight: 2,
//!         tenants: vec![TenantSpec::uniform_mix(
//!             "t0",
//!             1,
//!             ArrivalProcess::Uniform { period_us: 400 },
//!             RequestKind::Fib { max_n: 8 },
//!         )],
//!     },
//!     nodes: 3,
//!     policy: RoutingPolicy::Affinity,
//!     spill_margin: 8,
//!     storage: NodeStorage::Memory,
//!     fault: None,
//! };
//! let outcome = dispatch(&cfg).unwrap();
//! outcome.assert_accounting_closure();
//! assert_eq!(outcome.report.nodes.len(), 3);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dispatcher;
pub mod routing;

pub use dispatcher::{
    dispatch, DispatchConfig, DispatchOutcome, FaultPlan, NodeExecStats, NodeStorage, RestartKind,
    SegmentExec,
};
pub use routing::{handle_key, hrw_score, Decision, Router, RoutingPolicy};
