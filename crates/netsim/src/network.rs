//! The network model: latency + store-and-forward NIC bandwidth.
//!
//! Transfers between nodes pay (1) queueing behind earlier transfers on
//! the sender's egress NIC and the receiver's ingress NIC, (2) the
//! serialization time `bytes / bandwidth`, and (3) the propagation
//! latency between the two nodes. Control messages pay latency only.
//!
//! Per-node extra latency makes it easy to model a distant client
//! (Fig. 7b: 21.3 ms RTT) or an S3-like remote store (Fig. 8a: 150 ms
//! response time) without a full topology description.

use crate::resources::NodeId;
use crate::sim::Time;
use std::collections::HashMap;

/// Network parameters for a simulated cluster.
#[derive(Debug, Clone)]
pub struct NetConfig {
    /// One-way latency between any two distinct nodes, in µs.
    pub base_latency_us: Time,
    /// Extra one-way latency added when a node is source or destination
    /// (e.g. a remote client or a high-latency storage service).
    pub extra_latency_us: HashMap<NodeId, Time>,
    /// Per-NIC bandwidth in bytes per second.
    pub bandwidth_bps: u64,
}

impl Default for NetConfig {
    fn default() -> Self {
        NetConfig {
            // Intra-cluster RTT on EC2 is ~100 µs; one-way ≈ 50 µs.
            base_latency_us: 50,
            extra_latency_us: HashMap::new(),
            // 10 Gbit/s NICs (m5.8xlarge) ≈ 1.25 GB/s.
            bandwidth_bps: 1_250_000_000,
        }
    }
}

impl NetConfig {
    /// Adds extra one-way latency for a node.
    pub fn with_extra_latency(mut self, node: NodeId, extra_us: Time) -> Self {
        self.extra_latency_us.insert(node, extra_us);
        self
    }

    /// Sets the per-NIC bandwidth.
    pub fn with_bandwidth_bps(mut self, bps: u64) -> Self {
        self.bandwidth_bps = bps;
        self
    }

    /// One-way latency from `src` to `dst`.
    pub fn latency(&self, src: NodeId, dst: NodeId) -> Time {
        if src == dst {
            return 0;
        }
        self.base_latency_us
            + self.extra_latency_us.get(&src).copied().unwrap_or(0)
            + self.extra_latency_us.get(&dst).copied().unwrap_or(0)
    }

    /// Pure serialization time of `bytes` at NIC bandwidth, in µs.
    pub fn serialization_us(&self, bytes: u64) -> Time {
        // bytes / (bytes_per_second) seconds = bytes * 1e6 / bps µs.
        (bytes as u128 * 1_000_000 / self.bandwidth_bps.max(1) as u128) as Time
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_is_symmetric_for_uniform_config() {
        let cfg = NetConfig::default();
        let a = NodeId(0);
        let b = NodeId(3);
        assert_eq!(cfg.latency(a, b), cfg.latency(b, a));
        assert_eq!(cfg.latency(a, a), 0);
    }

    #[test]
    fn extra_latency_applies_to_either_endpoint() {
        let storage = NodeId(9);
        let cfg = NetConfig::default().with_extra_latency(storage, 150_000);
        assert_eq!(cfg.latency(NodeId(0), storage), 50 + 150_000);
        assert_eq!(cfg.latency(storage, NodeId(0)), 50 + 150_000);
        assert_eq!(cfg.latency(NodeId(0), NodeId(1)), 50);
    }

    #[test]
    fn serialization_matches_bandwidth() {
        let cfg = NetConfig::default().with_bandwidth_bps(1_000_000); // 1 MB/s
        assert_eq!(cfg.serialization_us(1_000_000), 1_000_000); // 1 s
        assert_eq!(cfg.serialization_us(1), 1);
        assert_eq!(cfg.serialization_us(0), 0);
    }
}
