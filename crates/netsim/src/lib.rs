//! `fix-netsim`: a deterministic discrete-event cluster simulator.
//!
//! The paper's cluster experiments (Figs. 7b, 8a, 8b, 10) ran on ten EC2
//! `m5.8xlarge` nodes. This crate substitutes a virtual-time simulation
//! of the same *mechanisms*: nodes with cores and RAM, NICs with latency
//! and bandwidth, and CPU-state accounting equivalent to sampling
//! `/proc/stat` around a run. Execution engines (the Fix distributed
//! scheduler in `fix-cluster`, the baselines in `fix-baselines`) are
//! policies layered over these primitives, so that what's compared
//! across systems is exactly what the paper compares: placement,
//! scheduling, and data movement.
//!
//! The simulator is single-threaded and deterministic: identical inputs
//! produce identical timelines.
//!
//! # Examples
//!
//! ```
//! use fix_netsim::{Sim, NodeSpec, NetConfig, NodeId, CoreState, MS};
//!
//! let mut sim = Sim::new(&[NodeSpec::default(); 2], NetConfig::default());
//! // Transfer 1 MiB from node 0 to node 1, then run a 5 ms task there.
//! sim.schedule(0, |sim| {
//!     sim.transfer(NodeId(0), NodeId(1), 1 << 20, |sim| {
//!         let claim = sim.try_claim(NodeId(1), 1, 0, CoreState::User).unwrap();
//!         sim.schedule(5 * MS, move |sim| { sim.release(claim); });
//!     });
//! });
//! let end = sim.run();
//! assert!(end > 5 * MS);
//! assert_eq!(sim.node_stats(NodeId(1)).user_core_us, 5 * MS);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod network;
mod resources;
mod sim;

pub use network::NetConfig;
pub use resources::{ClaimId, CoreState, CpuReport, NodeId, NodeSpec, NodeStats};
pub use sim::{Time, MS, SEC, US};

use resources::{Claim, NodeState};
use std::collections::HashMap;

/// The simulator: virtual clock, event queue, nodes, and network.
pub struct Sim {
    now: Time,
    queue: sim::EventQueue,
    nodes: Vec<NodeState>,
    net: NetConfig,
    claims: HashMap<ClaimId, Claim>,
    next_claim: u64,
    horizon: Option<Time>,
}

impl Sim {
    /// Creates a simulator with the given nodes and network.
    pub fn new(specs: &[NodeSpec], net: NetConfig) -> Sim {
        Sim {
            now: 0,
            queue: sim::EventQueue::new(),
            nodes: specs.iter().map(|s| NodeState::new(*s)).collect(),
            net,
            claims: HashMap::new(),
            next_claim: 0,
            horizon: None,
        }
    }

    /// The current virtual time, in µs.
    pub fn now(&self) -> Time {
        self.now
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// The network configuration.
    pub fn net(&self) -> &NetConfig {
        &self.net
    }

    /// Schedules `f` to run after `delay` µs of virtual time.
    pub fn schedule(&mut self, delay: Time, f: impl FnOnce(&mut Sim) + 'static) {
        self.queue.push(self.now + delay, Box::new(f));
    }

    /// Runs until the event queue is empty (or the horizon, if set).
    /// Returns the final virtual time.
    pub fn run(&mut self) -> Time {
        while let Some((at, f)) = self.queue.pop() {
            if let Some(h) = self.horizon {
                if at > h {
                    self.now = h;
                    break;
                }
            }
            debug_assert!(at >= self.now, "time went backwards");
            self.now = at;
            f(self);
        }
        self.now
    }

    /// Stops [`Sim::run`] once virtual time would pass `t` (a safety net
    /// against runaway simulations in tests).
    pub fn set_horizon(&mut self, t: Time) {
        self.horizon = Some(t);
    }

    /// Pending event count (for diagnostics).
    pub fn pending_events(&self) -> usize {
        self.queue.len()
    }

    /// True if no events remain.
    pub fn is_idle(&self) -> bool {
        self.queue.is_empty()
    }

    // ------------------------------------------------------------------
    // Cores and RAM.
    // ------------------------------------------------------------------

    /// Attempts to claim `cores` cores and `ram` bytes on `node`,
    /// starting in `state`. Returns `None` if resources are unavailable —
    /// the caller (an engine) queues the request and retries on release.
    pub fn try_claim(
        &mut self,
        node: NodeId,
        cores: u32,
        ram: u64,
        state: CoreState,
    ) -> Option<ClaimId> {
        let ns = &mut self.nodes[node.0];
        if ns.cores_free < cores || ns.ram_free < ram {
            return None;
        }
        ns.cores_free -= cores;
        ns.ram_free -= ram;
        let id = ClaimId(self.next_claim);
        self.next_claim += 1;
        self.claims.insert(
            id,
            Claim {
                node,
                cores,
                ram,
                state,
                since: self.now,
            },
        );
        Some(id)
    }

    /// Changes what a claim's cores are doing (accrues the prior state).
    ///
    /// # Panics
    ///
    /// Panics if the claim is unknown (already released).
    pub fn set_claim_state(&mut self, id: ClaimId, state: CoreState) {
        let now = self.now;
        let claim = self.claims.get_mut(&id).expect("live claim");
        let elapsed = now - claim.since;
        let node = claim.node;
        let cores = claim.cores;
        let old_state = claim.state;
        claim.state = state;
        claim.since = now;
        self.nodes[node.0].accrue(old_state, cores, elapsed);
    }

    /// Releases a claim, accruing its final interval.
    ///
    /// # Panics
    ///
    /// Panics if the claim is unknown (double release).
    pub fn release(&mut self, id: ClaimId) {
        let claim = self.claims.remove(&id).expect("live claim");
        let elapsed = self.now - claim.since;
        let ns = &mut self.nodes[claim.node.0];
        ns.accrue(claim.state, claim.cores, elapsed);
        ns.cores_free += claim.cores;
        ns.ram_free += claim.ram;
    }

    /// Free cores on a node right now.
    pub fn cores_free(&self, node: NodeId) -> u32 {
        self.nodes[node.0].cores_free
    }

    /// Free RAM on a node right now.
    pub fn ram_free(&self, node: NodeId) -> u64 {
        self.nodes[node.0].ram_free
    }

    /// Records a completed task on a node (for the stats report).
    pub fn count_task(&mut self, node: NodeId) {
        self.nodes[node.0].stats.tasks_run += 1;
    }

    // ------------------------------------------------------------------
    // Network.
    // ------------------------------------------------------------------

    /// Sends a control message (latency only); `f` runs on delivery.
    pub fn message(&mut self, src: NodeId, dst: NodeId, f: impl FnOnce(&mut Sim) + 'static) {
        let delay = self.net.latency(src, dst);
        self.schedule(delay, f);
    }

    /// Transfers `bytes` from `src` to `dst`; `f` runs when the last byte
    /// arrives. Models FIFO queueing on both NICs plus propagation delay.
    pub fn transfer(
        &mut self,
        src: NodeId,
        dst: NodeId,
        bytes: u64,
        f: impl FnOnce(&mut Sim) + 'static,
    ) {
        if src == dst {
            // Local: no NIC involvement; deliver "immediately" (next event).
            self.schedule(0, f);
            return;
        }
        let ser = self.net.serialization_us(bytes);
        let lat = self.net.latency(src, dst);

        // Queue behind earlier traffic on the egress NIC...
        let egress_start = self.nodes[src.0].egress_free_at.max(self.now);
        let egress_done = egress_start + ser;
        self.nodes[src.0].egress_free_at = egress_done;
        // ...and on the ingress NIC (store-and-forward).
        let ingress_start = self.nodes[dst.0].ingress_free_at.max(egress_done + lat);
        let arrival = ingress_start; // Serialization already paid at egress.
        self.nodes[dst.0].ingress_free_at = arrival;

        self.nodes[src.0].stats.bytes_out += bytes;
        self.nodes[dst.0].stats.bytes_in += bytes;
        let delay = arrival - self.now;
        self.schedule(delay, f);
    }

    // ------------------------------------------------------------------
    // Statistics.
    // ------------------------------------------------------------------

    /// A snapshot of one node's counters.
    pub fn node_stats(&self, node: NodeId) -> NodeStats {
        self.nodes[node.0].stats
    }

    /// Aggregates a CPU report over `nodes` (or all nodes if empty),
    /// against the elapsed virtual time.
    pub fn cpu_report(&self, nodes: &[NodeId]) -> CpuReport {
        let ids: Vec<NodeId> = if nodes.is_empty() {
            (0..self.nodes.len()).map(NodeId).collect()
        } else {
            nodes.to_vec()
        };
        let mut report = CpuReport {
            elapsed: self.now,
            ..CpuReport::default()
        };
        for id in ids {
            let ns = &self.nodes[id.0];
            report.capacity_core_us += ns.spec.cores as u64 * self.now;
            report.user_core_us += ns.stats.user_core_us;
            report.system_core_us += ns.stats.system_core_us;
            report.waiting_core_us += ns.stats.waiting_core_us;
        }
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::Cell;
    use std::rc::Rc;

    fn two_nodes() -> Sim {
        Sim::new(
            &[NodeSpec::default(), NodeSpec::default()],
            NetConfig::default(),
        )
    }

    #[test]
    fn claims_track_cpu_states() {
        let mut sim = two_nodes();
        sim.schedule(0, |sim| {
            let c = sim
                .try_claim(NodeId(0), 2, 1 << 30, CoreState::Waiting)
                .unwrap();
            sim.schedule(100, move |sim| {
                sim.set_claim_state(c, CoreState::User);
                sim.schedule(300, move |sim| sim.release(c));
            });
        });
        sim.run();
        let stats = sim.node_stats(NodeId(0));
        assert_eq!(stats.waiting_core_us, 2 * 100);
        assert_eq!(stats.user_core_us, 2 * 300);
        assert_eq!(sim.cores_free(NodeId(0)), 32);
        assert_eq!(sim.ram_free(NodeId(0)), 128 << 30);
    }

    #[test]
    fn over_claim_is_refused() {
        let mut sim = two_nodes();
        sim.schedule(0, |sim| {
            assert!(sim.try_claim(NodeId(0), 33, 0, CoreState::User).is_none());
            let _c = sim.try_claim(NodeId(0), 32, 0, CoreState::User).unwrap();
            assert!(sim.try_claim(NodeId(0), 1, 0, CoreState::User).is_none());
        });
        sim.run();
    }

    #[test]
    fn ram_is_tracked_separately() {
        let mut sim = two_nodes();
        sim.schedule(0, |sim| {
            let big = sim
                .try_claim(NodeId(0), 1, 100 << 30, CoreState::User)
                .unwrap();
            assert!(sim
                .try_claim(NodeId(0), 1, 100 << 30, CoreState::User)
                .is_none());
            sim.release(big);
            assert!(sim
                .try_claim(NodeId(0), 1, 100 << 30, CoreState::User)
                .is_some());
        });
        sim.run();
    }

    #[test]
    fn transfer_pays_latency_and_serialization() {
        let mut sim = two_nodes();
        let done_at = Rc::new(Cell::new(0u64));
        let d2 = Rc::clone(&done_at);
        sim.schedule(0, move |sim| {
            // 1.25 GB at 1.25 GB/s = 1 s serialization + 50 µs latency.
            sim.transfer(NodeId(0), NodeId(1), 1_250_000_000, move |sim| {
                d2.set(sim.now());
            });
        });
        sim.run();
        assert_eq!(done_at.get(), 1_000_000 + 50);
    }

    #[test]
    fn transfers_queue_on_the_egress_nic() {
        let mut sim = two_nodes();
        let times = Rc::new(std::cell::RefCell::new(Vec::new()));
        let t2 = Rc::clone(&times);
        sim.schedule(0, move |sim| {
            for _ in 0..3 {
                let t3 = Rc::clone(&t2);
                // Each transfer serializes for 100 ms.
                sim.transfer(NodeId(0), NodeId(1), 125_000_000, move |sim| {
                    t3.borrow_mut().push(sim.now());
                });
            }
        });
        sim.run();
        let times = times.borrow();
        // Arrivals are spaced by the serialization time, not concurrent.
        assert_eq!(times.len(), 3);
        assert_eq!(times[0], 100_000 + 50);
        assert_eq!(times[1], 200_000 + 50);
        assert_eq!(times[2], 300_000 + 50);
    }

    #[test]
    fn local_transfer_is_free() {
        let mut sim = two_nodes();
        let done_at = Rc::new(Cell::new(u64::MAX));
        let d2 = Rc::clone(&done_at);
        sim.schedule(10, move |sim| {
            sim.transfer(NodeId(0), NodeId(0), 1 << 30, move |sim| d2.set(sim.now()));
        });
        sim.run();
        assert_eq!(done_at.get(), 10);
    }

    #[test]
    fn message_pays_latency_only() {
        let storage = NodeId(1);
        let net = NetConfig::default().with_extra_latency(storage, 150_000);
        let mut sim = Sim::new(&[NodeSpec::default(); 2], net);
        let done_at = Rc::new(Cell::new(0u64));
        let d2 = Rc::clone(&done_at);
        sim.schedule(0, move |sim| {
            sim.message(NodeId(0), storage, move |sim| d2.set(sim.now()));
        });
        sim.run();
        assert_eq!(done_at.get(), 150_050);
    }

    #[test]
    fn cpu_report_matches_paper_shape() {
        let mut sim = two_nodes();
        sim.schedule(0, |sim| {
            let c = sim.try_claim(NodeId(0), 32, 0, CoreState::Waiting).unwrap();
            sim.schedule(900, move |sim| {
                sim.set_claim_state(c, CoreState::User);
                sim.schedule(100, move |sim| sim.release(c));
            });
        });
        sim.run();
        let report = sim.cpu_report(&[NodeId(0)]);
        assert_eq!(report.elapsed, 1000);
        assert_eq!(report.capacity_core_us, 32 * 1000);
        assert_eq!(report.user_core_us, 32 * 100);
        // 90% of the time all cores were claimed-but-waiting (or idle).
        assert!((report.waiting_percent() - 90.0).abs() < 1e-9);
    }

    #[test]
    fn horizon_stops_runaway_simulations() {
        let mut sim = two_nodes();
        fn tick(sim: &mut Sim) {
            sim.schedule(1000, tick);
        }
        sim.schedule(0, tick);
        sim.set_horizon(50_000);
        let end = sim.run();
        assert!(end <= 50_000);
    }

    #[test]
    fn task_counter() {
        let mut sim = two_nodes();
        sim.schedule(0, |sim| {
            sim.count_task(NodeId(1));
            sim.count_task(NodeId(1));
        });
        sim.run();
        assert_eq!(sim.node_stats(NodeId(1)).tasks_run, 2);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;
    use std::cell::RefCell;
    use std::rc::Rc;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// For any program of scheduled delays, events fire exactly once
        /// each, in nondecreasing virtual time, and the clock ends at
        /// the latest delay.
        #[test]
        fn events_fire_once_in_time_order(
            delays in proptest::collection::vec(0u64..100_000, 1..40),
        ) {
            let mut sim = Sim::new(&[NodeSpec::default()], NetConfig::default());
            let fired: Rc<RefCell<Vec<Time>>> = Rc::new(RefCell::new(Vec::new()));
            for &d in &delays {
                let fired = Rc::clone(&fired);
                sim.schedule(d, move |sim| fired.borrow_mut().push(sim.now()));
            }
            let end = sim.run();
            let fired = fired.borrow();
            prop_assert_eq!(fired.len(), delays.len());
            prop_assert!(fired.windows(2).all(|w| w[0] <= w[1]));
            let mut expect = delays.clone();
            expect.sort_unstable();
            prop_assert_eq!(&*fired, &expect[..]);
            prop_assert_eq!(end, *expect.last().unwrap());
        }

        /// Transfer completion time is monotone in payload size, and a
        /// transfer never completes before latency + serialization.
        #[test]
        fn transfer_time_monotone_in_size(
            sizes in proptest::collection::vec(1u64..1_000_000_000, 2..8),
        ) {
            let net = NetConfig::default();
            let mut done: Vec<(u64, Time)> = Vec::new();
            for &bytes in &sizes {
                let mut sim = Sim::new(&[NodeSpec::default(); 2], net.clone());
                let t: Rc<RefCell<Time>> = Rc::new(RefCell::new(0));
                let t2 = Rc::clone(&t);
                sim.transfer(NodeId(0), NodeId(1), bytes, move |sim| {
                    *t2.borrow_mut() = sim.now();
                });
                sim.run();
                let at = *t.borrow();
                let floor = net.latency(NodeId(0), NodeId(1)) + net.serialization_us(bytes);
                prop_assert!(at >= floor, "{bytes} B arrived at {at} < floor {floor}");
                done.push((bytes, at));
            }
            done.sort_unstable();
            prop_assert!(done.windows(2).all(|w| w[0].1 <= w[1].1));
        }

        /// Claims never exceed a node's cores or RAM, and releasing
        /// restores exactly what was claimed.
        #[test]
        fn claims_conserve_resources(
            requests in proptest::collection::vec((1u32..8, 1u64..(8 << 30)), 1..20),
        ) {
            let spec = NodeSpec { cores: 16, ram_bytes: 32 << 30 };
            let mut sim = Sim::new(&[spec], NetConfig::default());
            let mut held = Vec::new();
            let (mut cores_used, mut ram_used) = (0u32, 0u64);
            for &(cores, ram) in &requests {
                match sim.try_claim(NodeId(0), cores, ram, CoreState::User) {
                    Some(id) => {
                        cores_used += cores;
                        ram_used += ram;
                        held.push(id);
                    }
                    None => {
                        // Refusal must be for a real shortage.
                        prop_assert!(
                            cores_used + cores > spec.cores
                                || ram_used + ram > spec.ram_bytes
                        );
                    }
                }
                prop_assert!(cores_used <= spec.cores);
                prop_assert!(ram_used <= spec.ram_bytes);
                prop_assert_eq!(sim.cores_free(NodeId(0)), spec.cores - cores_used);
                prop_assert_eq!(sim.ram_free(NodeId(0)), spec.ram_bytes - ram_used);
            }
            for id in held {
                sim.release(id);
            }
            prop_assert_eq!(sim.cores_free(NodeId(0)), spec.cores);
            prop_assert_eq!(sim.ram_free(NodeId(0)), spec.ram_bytes);
        }
    }
}
