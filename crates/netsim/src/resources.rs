//! Node resources: cores and RAM, with CPU-state accounting.
//!
//! The paper measures "how much of these gains come from avoiding
//! starvation" with Linux CPU-state statistics (user / system /
//! idle+iowait+irq, §5.3). The simulator reproduces that methodology:
//! every claimed core is, at each instant, either *computing* (user or
//! system) or *waiting* (claimed but stalled on I/O — the signature of
//! "internal" I/O); unclaimed cores are idle. Totals per node come out
//! of [`NodeStats`].

use crate::sim::Time;

/// Identifies a simulated node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub usize);

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "node{}", self.0)
    }
}

/// Hardware description of one node.
#[derive(Debug, Clone, Copy)]
pub struct NodeSpec {
    /// Number of CPU cores.
    pub cores: u32,
    /// Bytes of RAM.
    pub ram_bytes: u64,
}

impl Default for NodeSpec {
    fn default() -> Self {
        // The paper's m5.8xlarge: 32 vCPUs, 128 GiB.
        NodeSpec {
            cores: 32,
            ram_bytes: 128 << 30,
        }
    }
}

/// What a claimed core is currently doing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CoreState {
    /// Running user computation.
    User,
    /// Running platform work (orchestration, serialization, ...).
    System,
    /// Claimed but stalled (the "I/O + wait" bucket of Fig. 8).
    Waiting,
}

/// A live claim of cores (and optionally RAM) on a node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ClaimId(pub(crate) u64);

#[derive(Debug)]
pub(crate) struct Claim {
    pub node: NodeId,
    pub cores: u32,
    pub ram: u64,
    pub state: CoreState,
    pub since: Time,
}

/// Accumulated per-node statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NodeStats {
    /// Core-microseconds spent in user computation.
    pub user_core_us: u64,
    /// Core-microseconds spent in system/platform work.
    pub system_core_us: u64,
    /// Core-microseconds claimed but waiting on I/O.
    pub waiting_core_us: u64,
    /// Bytes received over the network.
    pub bytes_in: u64,
    /// Bytes sent over the network.
    pub bytes_out: u64,
    /// Completed task executions.
    pub tasks_run: u64,
}

impl NodeStats {
    /// Busy core-microseconds (user + system).
    pub fn busy_core_us(&self) -> u64 {
        self.user_core_us + self.system_core_us
    }
}

pub(crate) struct NodeState {
    pub spec: NodeSpec,
    pub cores_free: u32,
    pub ram_free: u64,
    pub stats: NodeStats,
    /// Time at which the node's egress NIC frees up.
    pub egress_free_at: Time,
    /// Time at which the node's ingress NIC frees up.
    pub ingress_free_at: Time,
}

impl NodeState {
    pub fn new(spec: NodeSpec) -> NodeState {
        NodeState {
            spec,
            cores_free: spec.cores,
            ram_free: spec.ram_bytes,
            stats: NodeStats::default(),
            egress_free_at: 0,
            ingress_free_at: 0,
        }
    }

    /// Accrues `cores × duration` into the bucket for `state`.
    pub fn accrue(&mut self, state: CoreState, cores: u32, duration: Time) {
        let amount = cores as u64 * duration;
        match state {
            CoreState::User => self.stats.user_core_us += amount,
            CoreState::System => self.stats.system_core_us += amount,
            CoreState::Waiting => self.stats.waiting_core_us += amount,
        }
    }
}

/// A cluster-wide CPU-state summary, in the shape of the paper's Fig. 8
/// tables.
#[derive(Debug, Clone, Copy, Default)]
pub struct CpuReport {
    /// Wall-clock duration of the run (virtual).
    pub elapsed: Time,
    /// Total core capacity (cores × elapsed).
    pub capacity_core_us: u64,
    /// User computation.
    pub user_core_us: u64,
    /// Platform work.
    pub system_core_us: u64,
    /// Claimed-but-waiting.
    pub waiting_core_us: u64,
}

impl CpuReport {
    /// The paper's "CPU waiting %": idle + iowait as a share of capacity.
    ///
    /// Cores that are not doing user/system work are either idle or
    /// claimed-and-waiting; both count as starvation.
    pub fn waiting_percent(&self) -> f64 {
        if self.capacity_core_us == 0 {
            return 0.0;
        }
        let busy = self.user_core_us + self.system_core_us;
        100.0 * (self.capacity_core_us.saturating_sub(busy)) as f64 / self.capacity_core_us as f64
    }

    /// Utilization % (user + system over capacity).
    pub fn utilization_percent(&self) -> f64 {
        100.0 - self.waiting_percent()
    }
}
