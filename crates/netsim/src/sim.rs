//! The discrete-event core: a virtual clock and an event queue.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Virtual time, in microseconds.
pub type Time = u64;

/// One microsecond.
pub const US: Time = 1;
/// One millisecond in microseconds.
pub const MS: Time = 1_000;
/// One second in microseconds.
pub const SEC: Time = 1_000_000;

/// A deferred simulation action, run when its instant arrives.
type EventFn = Box<dyn FnOnce(&mut crate::Sim)>;

pub(crate) struct EventQueue {
    heap: BinaryHeap<Reverse<(Time, u64)>>,
    events: std::collections::HashMap<u64, EventFn>,
    next_seq: u64,
}

impl EventQueue {
    pub fn new() -> EventQueue {
        EventQueue {
            heap: BinaryHeap::new(),
            events: std::collections::HashMap::new(),
            next_seq: 0,
        }
    }

    pub fn push(&mut self, at: Time, f: EventFn) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Reverse((at, seq)));
        self.events.insert(seq, f);
    }

    pub fn pop(&mut self) -> Option<(Time, EventFn)> {
        let Reverse((at, seq)) = self.heap.pop()?;
        let f = self.events.remove(&seq).expect("event body present");
        Some((at, f))
    }

    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    pub fn len(&self) -> usize {
        self.heap.len()
    }
}

#[cfg(test)]
mod tests {
    use crate::{NetConfig, NodeSpec, Sim};

    #[test]
    fn events_fire_in_time_order() {
        let mut sim = Sim::new(&[NodeSpec::default()], NetConfig::default());
        let log = std::rc::Rc::new(std::cell::RefCell::new(Vec::new()));
        for &delay in &[30u64, 10, 20] {
            let log = std::rc::Rc::clone(&log);
            sim.schedule(delay, move |sim| {
                log.borrow_mut().push((sim.now(), delay));
            });
        }
        sim.run();
        assert_eq!(&*log.borrow(), &[(10, 10), (20, 20), (30, 30)]);
    }

    #[test]
    fn same_time_events_fire_in_submission_order() {
        let mut sim = Sim::new(&[NodeSpec::default()], NetConfig::default());
        let log = std::rc::Rc::new(std::cell::RefCell::new(Vec::new()));
        for i in 0..5 {
            let log = std::rc::Rc::clone(&log);
            sim.schedule(100, move |_| log.borrow_mut().push(i));
        }
        sim.run();
        assert_eq!(&*log.borrow(), &[0, 1, 2, 3, 4]);
    }

    #[test]
    fn nested_scheduling() {
        let mut sim = Sim::new(&[NodeSpec::default()], NetConfig::default());
        let log = std::rc::Rc::new(std::cell::RefCell::new(Vec::new()));
        let l2 = std::rc::Rc::clone(&log);
        sim.schedule(5, move |sim| {
            l2.borrow_mut().push(sim.now());
            let l3 = std::rc::Rc::clone(&l2);
            sim.schedule(7, move |sim| l3.borrow_mut().push(sim.now()));
        });
        let end = sim.run();
        assert_eq!(&*log.borrow(), &[5, 12]);
        assert_eq!(end, 12);
    }

    #[test]
    fn clock_never_goes_backwards() {
        let mut sim = Sim::new(&[NodeSpec::default()], NetConfig::default());
        let last = std::rc::Rc::new(std::cell::Cell::new(0u64));
        for &d in &[50u64, 1, 99, 3, 3, 70] {
            let last = std::rc::Rc::clone(&last);
            sim.schedule(d, move |sim| {
                assert!(sim.now() >= last.get());
                last.set(sim.now());
            });
        }
        sim.run();
    }
}
