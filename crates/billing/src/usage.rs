//! Metered usage for one invocation: what the provider measures and
//! what each billing model reads from it.

use crate::perf::PerfSample;
use fix_core::error::Result;
use fix_core::handle::Handle;
use fix_core::invocation::Invocation;
use fixpoint::Runtime;
use std::sync::atomic::Ordering;

/// Everything metered for one invocation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct InvocationUsage {
    /// Input data footprint in bytes (known *before* launch: the
    /// minimum repository — this is what makes the upfront component
    /// computable by the client, too).
    pub input_bytes: u64,
    /// RAM reservation in bytes (from the invocation's resource limits).
    pub ram_reserved_bytes: u64,
    /// Instructions retired.
    pub instructions: u64,
    /// L1 data-cache misses.
    pub l1_misses: u64,
    /// L2 misses.
    pub l2_misses: u64,
    /// L3 misses (metered but never billed under pay-for-results).
    pub l3_misses: u64,
    /// Wall-clock occupancy of the slice, in µs — what pay-for-effort
    /// bills, *including* time spent waiting on I/O or neighbors.
    pub wall_us: u64,
    /// How long the provider may delay the result (0 = due now).
    pub deadline_slack_us: u64,
}

impl InvocationUsage {
    /// Combines a perf sample with the invocation-shape fields.
    pub fn from_perf(
        input_bytes: u64,
        ram_reserved_bytes: u64,
        sample: PerfSample,
        deadline_slack_us: u64,
    ) -> InvocationUsage {
        InvocationUsage {
            input_bytes,
            ram_reserved_bytes,
            instructions: sample.instructions,
            l1_misses: sample.l1_misses,
            l2_misses: sample.l2_misses,
            l3_misses: sample.l3_misses,
            wall_us: sample.wall_us,
            deadline_slack_us,
        }
    }
}

/// Meters a real evaluation on a [`Runtime`]: evaluates `thunk` and
/// returns the result together with usage derived from the run.
///
/// The footprint is computed from the thunk (the same analysis the
/// scheduler uses pre-launch); RAM comes from the invocation's resource
/// limits; instructions come from guest fuel (exact for FixVM codelets;
/// native codelets retire no guest fuel and meter as zero — the
/// simulation-based experiments use [`InvocationUsage::from_perf`]
/// instead). Cache counters need hardware and stay zero here.
pub fn meter_eval(rt: &Runtime, thunk: Handle) -> Result<(Handle, InvocationUsage)> {
    let fp = rt.footprint(thunk)?;
    let def = rt.get_tree(thunk.thunk_definition()?)?;
    let limits = Invocation::from_tree(&def)?.limits;
    let fuel = |rt: &Runtime| rt.engine().stats.fuel_used.load(Ordering::Relaxed);
    let start = std::time::Instant::now();
    let fuel_before = fuel(rt);
    let result = rt.eval(thunk)?;
    let usage = InvocationUsage {
        input_bytes: fp.total_bytes,
        ram_reserved_bytes: limits.memory_bytes,
        instructions: fuel(rt) - fuel_before,
        l1_misses: 0,
        l2_misses: 0,
        l3_misses: 0,
        wall_us: (start.elapsed().as_micros() as u64).max(1),
        deadline_slack_us: 0,
    };
    Ok((result, usage))
}

#[cfg(test)]
mod tests {
    use super::*;
    use fix_core::data::Blob;
    use fix_core::limits::ResourceLimits;

    #[test]
    fn meter_vm_invocation_captures_fuel_and_footprint() {
        let rt = Runtime::builder().build();
        let add = rt
            .install_vm_module(
                r#"
                func apply args=0 locals=0
                  const 0
                  const 2
                  tree.get
                  const 0
                  blob.read_u64
                  const 0
                  const 3
                  tree.get
                  const 0
                  blob.read_u64
                  add
                  blob.create_u64
                  ret_handle
                end
                "#,
            )
            .unwrap();
        // A large, non-literal arg so the footprint is visible.
        let a = rt.put_blob(Blob::from_u64(40));
        let b = rt.put_blob(Blob::from_u64(2));
        let limits = ResourceLimits::new(1 << 20, 1 << 20);
        let thunk = rt.apply(limits, add, &[a, b]).unwrap();
        let (out, usage) = meter_eval(&rt, thunk).unwrap();
        assert_eq!(rt.get_u64(out).unwrap(), 42);
        assert!(usage.instructions > 0, "VM fuel must be metered");
        assert_eq!(usage.ram_reserved_bytes, 1 << 20);
        assert!(usage.input_bytes > 0, "module blob is in the footprint");
        assert!(usage.wall_us >= 1);
    }
}
