//! A deterministic analytic performance model: instructions, cache
//! misses per level, and wall time — with and without a noisy neighbor.
//!
//! Real deployments read these from hardware counters (`perf`,
//! RDPMC); this repo has no hardware, so the model below stands in.
//! What the billing experiments need from it is *structure*, not
//! absolute accuracy:
//!
//! * instructions and L1/L2 misses depend only on the program and its
//!   working set — they are identical whether or not a neighbor is
//!   thrashing the shared L3;
//! * L3 misses and wall time degrade under contention (the neighbor
//!   steals L3 capacity and memory bandwidth).
//!
//! The miss model is the classic cache-capacity approximation: a
//! uniformly-accessed working set `W` against a cache of size `C`
//! misses at rate `max(0, 1 − C/W)`, cascaded level by level. Wall
//! time is instructions at a base IPC plus per-miss stall cycles.

/// Cache hierarchy sizes (per-core L1/L2, shared L3). Defaults follow
/// the m5.8xlarge's Skylake-SP layout in round numbers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheSpec {
    /// L1 data cache size in bytes (per core).
    pub l1_bytes: u64,
    /// L2 size in bytes (per core).
    pub l2_bytes: u64,
    /// L3 size in bytes (shared across the socket).
    pub l3_bytes: u64,
}

impl Default for CacheSpec {
    fn default() -> Self {
        CacheSpec {
            l1_bytes: 32 << 10,
            l2_bytes: 1 << 20,
            l3_bytes: 32 << 20,
        }
    }
}

/// Who shares the machine with the invocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Contention {
    /// Dedicated socket: the full L3 and memory bandwidth.
    Isolated,
    /// A neighbor occupies part of the shared L3 and slows each
    /// memory-level access.
    Noisy {
        /// Percent of L3 capacity still available to this tenant (< 100).
        l3_available_percent: u8,
        /// Percent slowdown applied to DRAM accesses (bandwidth sharing).
        dram_slowdown_percent: u8,
    },
}

/// One invocation's synthetic hardware counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PerfSample {
    /// Instructions retired.
    pub instructions: u64,
    /// L1 data misses.
    pub l1_misses: u64,
    /// L2 misses.
    pub l2_misses: u64,
    /// L3 misses (DRAM fills).
    pub l3_misses: u64,
    /// Wall-clock execution time in microseconds.
    pub wall_us: u64,
}

/// Memory references per instruction, in percent (typical integer code
/// issues roughly one memory op per three instructions).
const MEM_REF_PERCENT: u64 = 33;
/// Base IPC ×1000 on cache hits.
const BASE_IPC_MILLI: u64 = 2_000;
/// Clock in MHz (cycles per µs).
const CLOCK_MHZ: u64 = 3_000;
/// Stall cycles per miss, by level (L1→L2 fill, L2→L3 fill, L3→DRAM).
const L1_FILL_CYCLES: u64 = 12;
const L2_FILL_CYCLES: u64 = 40;
const DRAM_FILL_CYCLES: u64 = 200;

/// Miss count for `refs` uniform accesses to a working set of
/// `working_set` bytes against a `cache`-byte cache.
fn misses(refs: u64, working_set: u64, cache_bytes: u64) -> u64 {
    if working_set <= cache_bytes || working_set == 0 {
        // Fits: only cold fills, one per 64-byte line, bounded by refs.
        return (working_set / 64).min(refs);
    }
    // Capacity misses: rate 1 − C/W.
    let miss_rate_ppm = 1_000_000 - (cache_bytes.saturating_mul(1_000_000) / working_set);
    ((refs as u128 * miss_rate_ppm as u128) / 1_000_000) as u64
}

/// Projects counters for `instructions` of work over a uniformly
/// accessed `working_set_bytes`, under the given contention.
pub fn project(
    instructions: u64,
    working_set_bytes: u64,
    cache: CacheSpec,
    contention: Contention,
) -> PerfSample {
    let refs = instructions * MEM_REF_PERCENT / 100;
    let l1_misses = misses(refs, working_set_bytes, cache.l1_bytes);
    let l2_misses = misses(l1_misses, working_set_bytes, cache.l2_bytes);
    let (l3_effective, dram_penalty_percent) = match contention {
        Contention::Isolated => (cache.l3_bytes, 0u64),
        Contention::Noisy {
            l3_available_percent,
            dram_slowdown_percent,
        } => (
            cache.l3_bytes * l3_available_percent.min(100) as u64 / 100,
            dram_slowdown_percent as u64,
        ),
    };
    let l3_misses = misses(l2_misses, working_set_bytes, l3_effective);

    let base_cycles = instructions * 1_000 / BASE_IPC_MILLI;
    let dram_cycles = l3_misses * DRAM_FILL_CYCLES * (100 + dram_penalty_percent) / 100;
    let stall_cycles = l1_misses * L1_FILL_CYCLES + l2_misses * L2_FILL_CYCLES + dram_cycles;
    let wall_us = (base_cycles + stall_cycles).div_ceil(CLOCK_MHZ).max(1);

    PerfSample {
        instructions,
        l1_misses,
        l2_misses,
        l3_misses,
        wall_us,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const GI: u64 = 1_000_000_000;

    #[test]
    fn small_working_set_mostly_hits() {
        let s = project(GI, 16 << 10, CacheSpec::default(), Contention::Isolated);
        assert_eq!(s.instructions, GI);
        // Only cold fills, which propagate through every level to DRAM.
        assert!(s.l1_misses <= (16 << 10) / 64);
        assert!(s.l3_misses <= (16 << 10) / 64);
        // Near base IPC: 10⁹ instr / 2 IPC / 3 GHz ≈ 167 ms.
        assert!((166_000..=168_000).contains(&s.wall_us), "{}", s.wall_us);
    }

    #[test]
    fn misses_cascade_and_shrink_per_level() {
        let s = project(
            GI,
            256 << 20, // Far larger than every cache level.
            CacheSpec::default(),
            Contention::Isolated,
        );
        assert!(s.l1_misses > s.l2_misses);
        assert!(s.l2_misses > s.l3_misses);
        assert!(s.l3_misses > 0);
    }

    #[test]
    fn neighbor_inflates_only_l3_and_wall() {
        let ws = 24 << 20; // Fits in a full L3, not in half of one.
        let alone = project(GI, ws, CacheSpec::default(), Contention::Isolated);
        let crowded = project(
            GI,
            ws,
            CacheSpec::default(),
            Contention::Noisy {
                l3_available_percent: 50,
                dram_slowdown_percent: 30,
            },
        );
        assert_eq!(alone.instructions, crowded.instructions);
        assert_eq!(alone.l1_misses, crowded.l1_misses);
        assert_eq!(alone.l2_misses, crowded.l2_misses);
        assert!(crowded.l3_misses > alone.l3_misses);
        assert!(crowded.wall_us > alone.wall_us);
    }

    #[test]
    fn wall_time_never_zero() {
        let s = project(1, 0, CacheSpec::default(), Contention::Isolated);
        assert_eq!(s.wall_us, 1);
    }

    #[test]
    fn larger_working_sets_run_slower() {
        let mut last = 0;
        for ws in [16 << 10, 512 << 10, 8 << 20, 128 << 20] {
            let s = project(GI, ws, CacheSpec::default(), Contention::Isolated);
            assert!(s.wall_us >= last, "wall time monotone in working set");
            last = s.wall_us;
        }
    }
}
