//! `fix-billing`: pay-for-results pricing for Fix (paper §6).
//!
//! Today's serverless platforms are "pay-for-effort": the customer is
//! billed for every millisecond a function occupies its slice, idle or
//! not — so bad placement, slow storage, and noisy neighbors all show
//! up on the *customer's* bill, and the provider has no direct
//! incentive to schedule better. Because Fix invocations declare their
//! data footprint up front and run to completion without blocking, a
//! provider can instead quote:
//!
//! * an **upfront** price, computable from the invocation description
//!   alone (input footprint bytes + RAM reservation), and
//! * a **runtime** price over counters that are the invocation's own
//!   fault — instructions retired and L1/L2 cache-miss penalties, but
//!   *not* L3 misses (a neighbor can cause those) and *not* wall time —
//!   discounted for far deadlines that let the provider spread load.
//!
//! Modules:
//!
//! * [`money`] — exact fixed-point amounts (picodollars);
//! * [`price`] — the provider's published [`PriceSheet`];
//! * [`perf`] — a deterministic analytic stand-in for hardware perf
//!   counters, with a noisy-neighbor mode;
//! * [`usage`] — per-invocation metering ([`meter_eval`] for real
//!   runs on a `fixpoint::Runtime`);
//! * [`bill`](mod@bill) — itemized [`Invoice`]s under both models;
//! * [`experiment`] — the noisy-neighbor and scheduling-incentive
//!   experiments (the latter re-runs Fig. 8a on the simulated cluster
//!   under both binding policies and compares aggregate bills).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bill;
pub mod experiment;
pub mod money;
pub mod perf;
pub mod price;
pub mod usage;

pub use bill::{aggregate, bill, bill_effort, bill_results, Invoice, LineItem, Model};
pub use experiment::{
    noisy_neighbor, scheduling_incentive, NoisyNeighborOutcome, SchedulingIncentiveOutcome,
};
pub use money::Money;
pub use perf::{project, CacheSpec, Contention, PerfSample};
pub use price::PriceSheet;
pub use usage::{meter_eval, InvocationUsage};

#[cfg(test)]
mod tests {
    use super::*;

    /// End-to-end: meter a real VM evaluation, bill it both ways.
    #[test]
    fn real_run_bills_under_both_models() {
        let rt = fixpoint::Runtime::builder().build();
        let neg = rt
            .install_vm_module(
                r#"
                func apply args=0 locals=0
                  const 0
                  const 2
                  tree.get
                  const 0
                  blob.read_u64
                  const 0
                  sub
                  blob.create_u64
                  ret_handle
                end
                "#,
            )
            .unwrap();
        let x = rt.put_blob(fix_core::data::Blob::from_u64(7));
        let thunk = rt
            .apply(
                fix_core::limits::ResourceLimits::new(1 << 20, 1 << 20),
                neg,
                &[x],
            )
            .unwrap();
        let (_, usage) = meter_eval(&rt, thunk).unwrap();
        let price = PriceSheet::default();
        let effort = bill_effort(&usage, &price);
        let results = bill_results(&usage, &price);
        // A microsecond-scale run on a 1 MiB reservation: both bills are
        // tiny but well-formed and itemized.
        assert_eq!(effort.items.len(), 1);
        assert_eq!(results.items.len(), 6);
        assert!(results
            .items
            .iter()
            .any(|i| i.label.contains("instructions") && i.quantity > 0));
    }
}
