//! Fixed-point money: picodollars.
//!
//! Cloud prices are tiny per unit (AWS Lambda charges about
//! $0.0000000167 per MB-ms), so floating point would accumulate rounding
//! across millions of invocations. All amounts here are integers in
//! units of 10⁻¹² dollars; a `u128` holds about 3.4 × 10²⁶ dollars,
//! comfortably beyond any invoice.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Mul};

/// An exact, non-negative amount of money in picodollars (10⁻¹² $).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Money(u128);

/// Picodollars per dollar.
const PICOS: u128 = 1_000_000_000_000;

impl Money {
    /// Zero dollars.
    pub const ZERO: Money = Money(0);

    /// Constructs from raw picodollars.
    pub const fn from_picos(picos: u128) -> Money {
        Money(picos)
    }

    /// Constructs from whole dollars.
    pub const fn from_dollars(dollars: u64) -> Money {
        Money(dollars as u128 * PICOS)
    }

    /// Constructs from microdollars (10⁻⁶ $), a convenient price-sheet
    /// granularity.
    pub const fn from_micros(micros: u64) -> Money {
        Money(micros as u128 * 1_000_000)
    }

    /// The raw picodollar count.
    pub const fn picos(self) -> u128 {
        self.0
    }

    /// The amount in (approximate) dollars, for display and plotting.
    pub fn as_dollars_f64(self) -> f64 {
        self.0 as f64 / PICOS as f64
    }

    /// `self × numerator / denominator` with intermediate headroom;
    /// rounds down. Used for fractional quantities (e.g. GiB-ms from
    /// byte-µs) and basis-point multipliers.
    pub fn scaled(self, numerator: u128, denominator: u128) -> Money {
        assert!(denominator != 0, "scaling by zero denominator");
        Money(self.0 * numerator / denominator)
    }
}

impl Add for Money {
    type Output = Money;
    fn add(self, rhs: Money) -> Money {
        Money(self.0.checked_add(rhs.0).expect("invoice overflow"))
    }
}

impl AddAssign for Money {
    fn add_assign(&mut self, rhs: Money) {
        *self = *self + rhs;
    }
}

impl Mul<u128> for Money {
    type Output = Money;
    fn mul(self, rhs: u128) -> Money {
        Money(self.0.checked_mul(rhs).expect("invoice overflow"))
    }
}

impl Sum for Money {
    fn sum<I: Iterator<Item = Money>>(iter: I) -> Money {
        iter.fold(Money::ZERO, Add::add)
    }
}

impl fmt::Display for Money {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let dollars = self.0 / PICOS;
        let frac = self.0 % PICOS;
        // Six fractional digits is plenty for display; amounts smaller
        // than a microdollar print as $0.000000…
        write!(f, "${dollars}.{:06}", frac / 1_000_000)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_display() {
        assert_eq!(Money::from_dollars(3).picos(), 3 * PICOS);
        assert_eq!(
            Money::from_micros(2_500_000),
            Money::from_dollars(2) + Money::from_micros(500_000)
        );
        assert_eq!(Money::from_dollars(1).to_string(), "$1.000000");
        assert_eq!(Money::from_micros(1).to_string(), "$0.000001");
        assert_eq!(Money::from_picos(999_999).to_string(), "$0.000000");
    }

    #[test]
    fn scaled_rounds_down_exactly() {
        let m = Money::from_picos(10);
        assert_eq!(m.scaled(1, 3).picos(), 3);
        assert_eq!(m.scaled(2, 3).picos(), 6);
        assert_eq!(m.scaled(3, 3), m);
    }

    #[test]
    fn sum_and_ordering() {
        let items = [Money::from_micros(10), Money::from_micros(5)];
        let total: Money = items.iter().copied().sum();
        assert_eq!(total, Money::from_micros(15));
        assert!(items[1] < items[0]);
    }

    #[test]
    #[should_panic(expected = "overflow")]
    fn overflow_is_loud() {
        let _ = Money::from_picos(u128::MAX) + Money::from_picos(1);
    }
}
