//! Price sheets: the provider's published rates.
//!
//! Two models share one sheet (paper §1 and §6):
//!
//! * **pay-for-effort** — the status quo: a single rate per GiB-ms of
//!   occupied machine slice, idle or not (AWS Lambda's GB-second);
//! * **pay-for-results** — an *upfront* cost a client can compute from
//!   the invocation description alone (input footprint bytes + RAM
//!   reservation), plus a *runtime* cost from counters that are the
//!   core's own fault — instructions retired and L1/L2 cache-miss
//!   penalties — explicitly excluding L3 misses, which a noisy neighbor
//!   can inflate. Far-deadline invocations get a discount because they
//!   let the provider spread load.
//!
//! Default rates are illustrative, anchored on public serverless
//! pricing (Lambda ≈ $1.67 × 10⁻⁸ per GiB-ms); what the experiments
//! depend on is the *structure* — which terms exist — not magnitudes.

use crate::money::Money;

/// Deadline slack tiers and their price multipliers, in basis points.
///
/// Immediate work pays full price; work the provider may delay up to an
/// hour pays half. Tiers (rather than a curve) keep invoices auditable.
const DEADLINE_TIERS_BPS: &[(u64, u32)] = &[
    (1_000_000, 10_000),    // < 1 s slack: 100 %
    (60_000_000, 9_000),    // < 1 min: 90 %
    (3_600_000_000, 7_500), // < 1 h: 75 %
];
/// Slack beyond the last tier.
const DEADLINE_FLOOR_BPS: u32 = 5_000;

/// Published rates for one provider.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PriceSheet {
    /// Pay-for-effort: per GiB-ms of occupied slice (RAM × wall time).
    pub effort_per_gib_ms: Money,
    /// Upfront: per GiB of input data footprint (what the platform must
    /// move or pin for the invocation).
    pub upfront_per_input_gib: Money,
    /// Upfront: per GiB of RAM reserved for the invocation.
    pub upfront_per_ram_gib: Money,
    /// Runtime: per 10⁹ instructions retired.
    pub per_giga_instruction: Money,
    /// Runtime: per 10⁶ L1 misses (the core's fault: poor locality).
    pub per_mega_l1_miss: Money,
    /// Runtime: per 10⁶ L2 misses. L3 misses carry no charge — they may
    /// be the neighbors' fault.
    pub per_mega_l2_miss: Money,
}

impl Default for PriceSheet {
    fn default() -> Self {
        PriceSheet {
            // Lambda-like: $0.0000166667 per GiB-s ≈ 16_667 pico$/GiB-ms.
            effort_per_gib_ms: Money::from_picos(16_667),
            // S3-GET-plus-transfer-like order of magnitude.
            upfront_per_input_gib: Money::from_micros(400),
            upfront_per_ram_gib: Money::from_micros(10),
            // EC2-like: ~$0.04 per vCPU-hour at ~10⁹ instr/s ⇒ ~$10⁻⁸/GI
            // rounded up for margin.
            per_giga_instruction: Money::from_micros(15),
            per_mega_l1_miss: Money::from_micros(1),
            per_mega_l2_miss: Money::from_micros(4),
        }
    }
}

impl PriceSheet {
    /// The deadline multiplier in basis points for an invocation that
    /// may be delayed by `slack_us` before its result is due.
    ///
    /// Monotone nonincreasing in slack, never below the floor.
    pub fn deadline_multiplier_bps(&self, slack_us: u64) -> u32 {
        for &(limit, bps) in DEADLINE_TIERS_BPS {
            if slack_us < limit {
                return bps;
            }
        }
        DEADLINE_FLOOR_BPS
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deadline_discount_is_monotone() {
        let p = PriceSheet::default();
        let slacks = [0, 999_999, 1_000_000, 59_000_000, 3_599_999_999, u64::MAX];
        let mut last = u32::MAX;
        for s in slacks {
            let bps = p.deadline_multiplier_bps(s);
            assert!(bps <= last, "discount must not shrink with slack");
            assert!(bps >= DEADLINE_FLOOR_BPS);
            last = bps;
        }
        assert_eq!(p.deadline_multiplier_bps(0), 10_000);
        assert_eq!(p.deadline_multiplier_bps(u64::MAX), 5_000);
    }
}
