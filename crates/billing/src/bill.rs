//! Invoices under the two service models.
//!
//! *Pay-for-effort* bills the occupied machine slice by wall time —
//! every millisecond, idle or not, like today's FaaS platforms. A
//! provider that schedules poorly (or a neighbor that thrashes the
//! cache) makes the *customer's* bill go up.
//!
//! *Pay-for-results* bills an upfront component computable from the
//! invocation description alone, plus a runtime component over counters
//! that are the invocation's own fault (instructions, L1/L2 misses) —
//! never L3 misses or wall time. Identical work yields an identical
//! bill, however badly it was placed (paper §6).

use crate::money::Money;
use crate::price::PriceSheet;
use crate::usage::InvocationUsage;

const GIB: u128 = 1 << 30;

/// The two service models.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Model {
    /// Wall-clock × RAM occupancy (status quo).
    PayForEffort,
    /// Upfront + own-fault runtime counters (Fix's proposal).
    PayForResults,
}

/// One charged line of an invoice.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LineItem {
    /// What is being charged.
    pub label: &'static str,
    /// The metered quantity, in the unit named by the label.
    pub quantity: u128,
    /// The charge.
    pub amount: Money,
}

/// An itemized invoice for one invocation (or an aggregate of many).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Invoice {
    /// Which model produced it.
    pub model: Model,
    /// The charged lines.
    pub items: Vec<LineItem>,
}

impl Invoice {
    /// The invoice total.
    pub fn total(&self) -> Money {
        self.items.iter().map(|i| i.amount).sum()
    }
}

impl std::fmt::Display for Invoice {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "{:?}", self.model)?;
        for item in &self.items {
            writeln!(
                f,
                "  {:<28} {:>16}  {}",
                item.label, item.quantity, item.amount
            )?;
        }
        write!(f, "  {:<28} {:>16}  {}", "TOTAL", "", self.total())
    }
}

/// Bills an invocation under pay-for-effort: GiB-ms of occupied slice.
pub fn bill_effort(usage: &InvocationUsage, price: &PriceSheet) -> Invoice {
    // GiB-ms = (ram_bytes × wall_us) / (GiB × 1000), in exact integers.
    let byte_us = usage.ram_reserved_bytes as u128 * usage.wall_us as u128;
    let amount = price.effort_per_gib_ms.scaled(byte_us, GIB * 1_000);
    Invoice {
        model: Model::PayForEffort,
        items: vec![LineItem {
            label: "slice occupancy (GiB-ms)",
            quantity: byte_us / (GIB * 1_000),
            amount,
        }],
    }
}

/// Bills an invocation under pay-for-results.
///
/// Upfront lines use only pre-launch facts; runtime lines use only
/// own-fault counters, scaled by the deadline multiplier. L3 misses
/// appear as a zero-charge line so the exclusion is visible on the
/// invoice.
pub fn bill_results(usage: &InvocationUsage, price: &PriceSheet) -> Invoice {
    let bps = price.deadline_multiplier_bps(usage.deadline_slack_us) as u128;
    let scaled = |m: Money| m.scaled(bps, 10_000);
    let items = vec![
        LineItem {
            label: "input footprint (bytes)",
            quantity: usage.input_bytes as u128,
            amount: price
                .upfront_per_input_gib
                .scaled(usage.input_bytes as u128, GIB),
        },
        LineItem {
            label: "RAM reservation (bytes)",
            quantity: usage.ram_reserved_bytes as u128,
            amount: price
                .upfront_per_ram_gib
                .scaled(usage.ram_reserved_bytes as u128, GIB),
        },
        LineItem {
            label: "instructions retired",
            quantity: usage.instructions as u128,
            amount: scaled(
                price
                    .per_giga_instruction
                    .scaled(usage.instructions as u128, 1_000_000_000),
            ),
        },
        LineItem {
            label: "L1 misses",
            quantity: usage.l1_misses as u128,
            amount: scaled(
                price
                    .per_mega_l1_miss
                    .scaled(usage.l1_misses as u128, 1_000_000),
            ),
        },
        LineItem {
            label: "L2 misses",
            quantity: usage.l2_misses as u128,
            amount: scaled(
                price
                    .per_mega_l2_miss
                    .scaled(usage.l2_misses as u128, 1_000_000),
            ),
        },
        LineItem {
            label: "L3 misses (not billed)",
            quantity: usage.l3_misses as u128,
            amount: Money::ZERO,
        },
    ];
    Invoice {
        model: Model::PayForResults,
        items,
    }
}

/// Bills under either model.
pub fn bill(model: Model, usage: &InvocationUsage, price: &PriceSheet) -> Invoice {
    match model {
        Model::PayForEffort => bill_effort(usage, price),
        Model::PayForResults => bill_results(usage, price),
    }
}

/// Sums many usages into one aggregate usage (a statement line).
pub fn aggregate(usages: &[InvocationUsage]) -> InvocationUsage {
    let mut total = InvocationUsage::default();
    for u in usages {
        total.input_bytes += u.input_bytes;
        total.ram_reserved_bytes += u.ram_reserved_bytes;
        total.instructions += u.instructions;
        total.l1_misses += u.l1_misses;
        total.l2_misses += u.l2_misses;
        total.l3_misses += u.l3_misses;
        total.wall_us += u.wall_us;
        // Aggregate slack is the tightest deadline in the batch.
        total.deadline_slack_us = if total.deadline_slack_us == 0 {
            u.deadline_slack_us
        } else {
            total.deadline_slack_us.min(u.deadline_slack_us)
        };
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_usage() -> InvocationUsage {
        InvocationUsage {
            input_bytes: 64 << 20,
            ram_reserved_bytes: 1 << 30,
            instructions: 2_000_000_000,
            l1_misses: 5_000_000,
            l2_misses: 1_000_000,
            l3_misses: 400_000,
            wall_us: 1_500_000,
            deadline_slack_us: 0,
        }
    }

    #[test]
    fn effort_bill_is_ram_times_wall() {
        let p = PriceSheet::default();
        let inv = bill_effort(&sample_usage(), &p);
        // 1 GiB × 1500 ms at 16 667 pico$/GiB-ms.
        assert_eq!(inv.total(), Money::from_picos(16_667 * 1_500));
    }

    #[test]
    fn results_bill_ignores_wall_time_and_l3() {
        let p = PriceSheet::default();
        let mut slow = sample_usage();
        slow.wall_us *= 10; // Noisy neighbor, or terrible placement.
        slow.l3_misses *= 50;
        let fast = sample_usage();
        assert_eq!(
            bill_results(&fast, &p).total(),
            bill_results(&slow, &p).total(),
            "pay-for-results must be placement/neighbor invariant"
        );
        // While pay-for-effort punishes the customer 10×.
        assert_eq!(
            bill_effort(&slow, &p).total(),
            bill_effort(&fast, &p).total() * 10,
        );
    }

    #[test]
    fn results_bill_has_upfront_and_runtime_lines() {
        let p = PriceSheet::default();
        let inv = bill_results(&sample_usage(), &p);
        assert_eq!(inv.items.len(), 6);
        let l3 = inv
            .items
            .iter()
            .find(|i| i.label.contains("L3"))
            .expect("L3 line present");
        assert_eq!(l3.amount, Money::ZERO);
        assert!(inv.total() > Money::ZERO);
    }

    #[test]
    fn far_deadlines_discount_runtime_but_not_upfront() {
        let p = PriceSheet::default();
        let now = sample_usage();
        let mut later = now;
        later.deadline_slack_us = 7_200_000_000; // Two hours.
        let inv_now = bill_results(&now, &p);
        let inv_later = bill_results(&later, &p);
        assert!(inv_later.total() < inv_now.total());
        // Upfront lines (first two) are identical.
        assert_eq!(inv_now.items[0], inv_later.items[0]);
        assert_eq!(inv_now.items[1], inv_later.items[1]);
        // Instruction line halves at the floor multiplier.
        assert_eq!(
            inv_later.items[2].amount,
            inv_now.items[2].amount.scaled(1, 2)
        );
    }

    #[test]
    fn aggregate_sums_counters_and_keeps_tightest_deadline() {
        let mut a = sample_usage();
        a.deadline_slack_us = 50;
        let mut b = sample_usage();
        b.deadline_slack_us = 10;
        let total = aggregate(&[a, b]);
        assert_eq!(total.instructions, 2 * a.instructions);
        assert_eq!(total.deadline_slack_us, 10);
    }

    #[test]
    fn zero_usage_bills_zero() {
        let p = PriceSheet::default();
        assert_eq!(
            bill_effort(&InvocationUsage::default(), &p).total(),
            Money::ZERO
        );
        assert_eq!(
            bill_results(&InvocationUsage::default(), &p).total(),
            Money::ZERO
        );
    }
}
