//! The two billing experiments behind the paper's §6 argument.
//!
//! 1. **Noisy neighbor**: the same logical work runs on a dedicated
//!    socket and next to a cache-thrashing tenant. Pay-for-effort bills
//!    the inflated wall time to the customer; pay-for-results charges
//!    identically, because instructions and L1/L2 misses don't change.
//!
//! 2. **Scheduling incentive**: the Fig. 8a workload (1,024 one-off
//!    invocations, inputs behind 150 ms storage) runs on the simulated
//!    cluster with late binding (Fix) and with early binding (status
//!    quo "internal" I/O). Under pay-for-effort the *same results* cost
//!    the customer ~10× more on the poorly-scheduled platform — and the
//!    provider pockets it, which is the perverse incentive the paper
//!    calls out. Under pay-for-results the bills are equal, so the
//!    provider only profits by scheduling better.

use crate::bill::{bill_effort, bill_results, Invoice};
use crate::money::Money;
use crate::perf::{project, CacheSpec, Contention, PerfSample};
use crate::price::PriceSheet;
use crate::usage::InvocationUsage;
use fix_cluster::{run_fix, Binding, ClusterSetup, FixConfig, RunReport};
use fix_netsim::{NetConfig, NodeId, NodeSpec, MS};
use fix_workloads::wordcount::{fig8a_graph, Fig8aParams};

/// Outcome of the noisy-neighbor experiment.
#[derive(Debug, Clone)]
pub struct NoisyNeighborOutcome {
    /// Counters on the dedicated socket.
    pub isolated: PerfSample,
    /// Counters next to the noisy tenant.
    pub contended: PerfSample,
    /// (effort, results) invoices on the dedicated socket.
    pub isolated_bills: (Invoice, Invoice),
    /// (effort, results) invoices under contention.
    pub contended_bills: (Invoice, Invoice),
}

/// Runs the noisy-neighbor experiment: 10⁹ instructions over a 24 MiB
/// working set, billed under both models with and without a neighbor
/// taking half the L3 and a third of the memory bandwidth.
pub fn noisy_neighbor(price: &PriceSheet) -> NoisyNeighborOutcome {
    let instructions = 1_000_000_000;
    let working_set = 24 << 20;
    let ram = 1u64 << 30;
    let cache = CacheSpec::default();

    let isolated = project(instructions, working_set, cache, Contention::Isolated);
    let contended = project(
        instructions,
        working_set,
        cache,
        Contention::Noisy {
            l3_available_percent: 50,
            dram_slowdown_percent: 30,
        },
    );
    let usage = |s: PerfSample| InvocationUsage::from_perf(working_set, ram, s, 0);
    NoisyNeighborOutcome {
        isolated,
        contended,
        isolated_bills: (
            bill_effort(&usage(isolated), price),
            bill_results(&usage(isolated), price),
        ),
        contended_bills: (
            bill_effort(&usage(contended), price),
            bill_results(&usage(contended), price),
        ),
    }
}

/// Outcome of the scheduling-incentive experiment.
#[derive(Debug, Clone)]
pub struct SchedulingIncentiveOutcome {
    /// Cluster run with late binding (Fix).
    pub late: RunReport,
    /// Cluster run with early binding ("internal" I/O).
    pub early: RunReport,
    /// Aggregate customer bill under pay-for-effort: (late, early).
    pub effort_bills: (Money, Money),
    /// Aggregate customer bill under pay-for-results: (late, early) —
    /// equal by construction, shown for the table.
    pub results_bills: (Money, Money),
}

/// Builds the paper's Fig. 8a cluster: one 32-core/64-GiB worker and a
/// storage node 150 ms away holding every input.
fn fig8a_setup(params: &Fig8aParams) -> ClusterSetup {
    let net = NetConfig::default().with_extra_latency(params.storage, 150 * MS);
    ClusterSetup {
        specs: vec![
            NodeSpec {
                cores: 32,
                ram_bytes: 64 << 30,
            },
            NodeSpec::default(),
        ],
        net,
        workers: vec![NodeId(0)],
        client: None,
    }
}

/// Runs Fig. 8a under both binding policies and bills the aggregate.
///
/// Effort billing charges each invocation's slice occupancy — which the
/// simulator reports as busy + claimed-but-waiting core time; with one
/// core and `ram` per task, GiB-ms occupancy is that time scaled by the
/// per-task RAM. Results billing uses the task shape only (inputs, RAM,
/// instructions projected from the task's compute time), so both runs
/// bill identically.
pub fn scheduling_incentive(
    price: &PriceSheet,
    params: &Fig8aParams,
) -> SchedulingIncentiveOutcome {
    let setup = fig8a_setup(params);
    let graph = fig8a_graph(params);
    let late = run_fix(&setup, &graph, &FixConfig::default());
    let early = run_fix(
        &setup,
        &graph,
        &FixConfig {
            binding: Binding::Early,
            ..FixConfig::default()
        },
    );

    let n = params.n_tasks as u64;
    let effort_total = |r: &RunReport| {
        // Slice occupancy across all invocations, in core-µs.
        let occupancy_us = r.cpu.user_core_us + r.cpu.system_core_us + r.cpu.waiting_core_us;
        let per_task = InvocationUsage {
            ram_reserved_bytes: params.ram,
            wall_us: occupancy_us / n,
            ..InvocationUsage::default()
        };
        bill_effort(&per_task, price).total() * n as u128
    };

    // Pay-for-results: identical per-task shape on both runs.
    // Instructions: compute_us at 2 IPC × 3 GHz (the perf model's base).
    let instructions = params.compute_us * 6_000;
    let sample = project(
        instructions,
        params.input_size,
        CacheSpec::default(),
        Contention::Isolated,
    );
    let per_task = InvocationUsage::from_perf(params.input_size, params.ram, sample, 0);
    let results_total = bill_results(&per_task, price).total() * n as u128;

    SchedulingIncentiveOutcome {
        late,
        early,
        effort_bills: (effort_total(&late), effort_total(&early)),
        results_bills: (results_total, results_total),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noisy_neighbor_inflates_effort_not_results() {
        let p = PriceSheet::default();
        let out = noisy_neighbor(&p);
        assert!(out.contended.wall_us > out.isolated.wall_us);
        // Effort: the customer pays for the neighbor.
        assert!(out.contended_bills.0.total() > out.isolated_bills.0.total());
        // Results: immunized.
        assert_eq!(out.contended_bills.1.total(), out.isolated_bills.1.total());
    }

    #[test]
    fn early_binding_costs_customers_under_effort_billing() {
        let p = PriceSheet::default();
        // Shrink the workload for test speed; shape is unchanged.
        let params = Fig8aParams {
            n_tasks: 128,
            ..Fig8aParams::default()
        };
        let out = scheduling_incentive(&p, &params);
        let (late_effort, early_effort) = out.effort_bills;
        // The paper's 8.7× throughput gap shows up as a similar billing
        // gap: holding a slice through a 150 ms fetch is ~1000× the
        // occupancy of a 100 µs compute, so demand at least 5×.
        assert!(
            early_effort > late_effort.scaled(5, 1),
            "early {early_effort} vs late {late_effort}"
        );
        // Results: placement-invariant.
        assert_eq!(out.results_bills.0, out.results_bills.1);
        assert!(out.results_bills.0 > Money::ZERO);
        // And the runs really were different.
        assert!(out.early.makespan_us > out.late.makespan_us);
    }
}
