//! Closed-loop tenants: a fixed client population with think times.
//!
//! An open-loop generator keeps offering traffic at its configured rate
//! no matter what the platform does — the right model for measuring a
//! static configuration, and a caricature of real clients, who wait for
//! (or give up on) one request before issuing the next. A closed-loop
//! tenant is the feedback version: `clients` independent clients, each
//! cycling *think → request → (completion | shed | expiry) → think*.
//! Under overload the population self-throttles, because a client
//! cannot offer its next request until its previous one resolved.
//!
//! Everything is driven by the virtual clock and per-client seeded
//! exponential think streams, so a closed-loop tenant's arrivals are
//! exactly as deterministic as an open-loop timeline — they are just
//! computed during the simulation (they depend on completions) instead
//! of before it.

use fix_serve::{Micros, RequestKind, SloClass};
use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

/// One closed-loop tenant: a client population with think times.
#[derive(Debug, Clone)]
pub struct ClosedLoopSpec {
    /// Display name (the table row key).
    pub name: String,
    /// Weighted-fair share within the tenant's SLO tier.
    pub weight: u32,
    /// Number of concurrent clients (each has at most one request
    /// outstanding).
    pub clients: usize,
    /// Mean of each client's exponential think time, µs.
    pub think_mean_us: f64,
    /// Weighted request mix, drawn per request like an open tenant's.
    pub mix: Vec<(RequestKind, u32)>,
    /// The tenant's SLO class.
    pub slo: SloClass,
}

/// One draw of a platform-stable uniform in `(0, 1]` (53 bits, matching
/// the load generator's stream discipline so closed-loop think times
/// are exactly as portable as open-loop inter-arrivals).
fn unit_open(rng: &mut StdRng) -> f64 {
    ((rng.next_u64() >> 11) + 1) as f64 / (1u64 << 53) as f64
}

/// Per-client seeded think-time streams for one closed-loop tenant.
pub(crate) struct ThinkStreams {
    rngs: Vec<StdRng>,
    mean_us: f64,
}

impl ThinkStreams {
    /// Streams for `clients` clients of tenant `tenant`, derived from
    /// the run seed (stream ids offset by 100 so they never collide
    /// with the arrival/mix/corpus streams the open-loop path uses).
    pub(crate) fn new(run_seed: u64, tenant: usize, clients: usize, mean_us: f64) -> ThinkStreams {
        ThinkStreams {
            rngs: (0..clients)
                .map(|c| {
                    StdRng::seed_from_u64(fix_serve::loadgen::tenant_seed(
                        run_seed,
                        tenant,
                        100 + c as u64,
                    ))
                })
                .collect(),
            mean_us,
        }
    }

    /// The client's next think time, ≥ 1 µs (zero-length thinks would
    /// let a client re-arrive at its own resolution instant).
    pub(crate) fn next(&mut self, client: usize) -> Micros {
        let u = unit_open(&mut self.rngs[client]);
        ((-u.ln() * self.mean_us).round() as Micros).max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn think_streams_are_seeded_and_independent() {
        let mut a = ThinkStreams::new(7, 0, 2, 500.0);
        let mut b = ThinkStreams::new(7, 0, 2, 500.0);
        let draws_a: Vec<Micros> = (0..50).map(|i| a.next(i % 2)).collect();
        let draws_b: Vec<Micros> = (0..50).map(|i| b.next(i % 2)).collect();
        assert_eq!(draws_a, draws_b, "same seed, same thinks");
        let mut d = ThinkStreams::new(8, 0, 2, 500.0);
        let draws_d: Vec<Micros> = (0..50).map(|i| d.next(i % 2)).collect();
        assert_ne!(draws_a, draws_d, "a different run seed shifts thinks");
        // Exponential with mean 500: the empirical mean lands nearby.
        let mean = draws_a.iter().sum::<Micros>() as f64 / draws_a.len() as f64;
        assert!((200.0..900.0).contains(&mean), "mean {mean}");
        assert!(draws_a.iter().all(|&t| t >= 1));
    }
}
