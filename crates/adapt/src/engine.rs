//! The adaptive serving engine: [`fix_serve::serve`]'s two-halves loop
//! with the control plane closed over it.
//!
//! Half one is still a deterministic virtual-time simulation — but now
//! three event sources merge into it (open-loop timelines, closed-loop
//! client re-arrivals, SNF packet-batch schedules), an admission
//! controller prices deadline arrivals at the door, and an autoscaler
//! ticks between dispatches resizing the active driver pool. Every
//! decision is a pure function of the seed and configuration, so the
//! report — including the rejection column and the scaling timeline —
//! is bit-identical across runs and across backends.
//!
//! Half two is unchanged in kind: the exact batches the virtual drivers
//! planned are drained by real OS threads through the submission API.
//! The pool is provisioned at `scaler.max_drivers`; drivers that the
//! controller never activated simply carry empty plans.

use crate::closed_loop::{ClosedLoopSpec, ThinkStreams};
use crate::controller::{AdmissionPolicy, Autoscaler, ScalerConfig};
use crate::snf::{SnfPipeline, SnfSpec};
use fix_core::api::{BatchTicket, InvocationApi, Priority, SubmitApi, SubmitOptions};
use fix_core::error::{Error, Result};
use fix_core::handle::Handle;
use fix_obs::EventKind;
use fix_serve::loadgen::{merge_timelines, tenant_seed};
use fix_serve::tenant::draw_kind;
use fix_serve::{
    Arrival, ArrivalProcess, DriverReport, LatencyHistogram, Micros, QueuedRequest, RequestFactory,
    RequestKind, ServeReport, SloClass, TenantClass, TenantQueues, TenantReport, TenantSpec,
};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, HashSet, VecDeque};

/// One tenant of an adaptive run.
#[derive(Debug, Clone)]
pub enum AdaptTenant {
    /// A plain open-loop tenant (any [`ArrivalProcess`], including the
    /// hostile `FlashCrowd` and `Diurnal` shapes).
    Open(TenantSpec),
    /// A closed-loop client population.
    Closed(ClosedLoopSpec),
    /// An SNF streaming pipeline.
    Snf(SnfSpec),
}

impl AdaptTenant {
    /// The tenant's display name.
    pub fn name(&self) -> &str {
        match self {
            AdaptTenant::Open(t) => &t.name,
            AdaptTenant::Closed(t) => &t.name,
            AdaptTenant::Snf(t) => &t.name,
        }
    }

    /// The tenant's weighted-fair share.
    pub fn weight(&self) -> u32 {
        match self {
            AdaptTenant::Open(t) => t.weight,
            AdaptTenant::Closed(t) => t.weight,
            AdaptTenant::Snf(t) => t.weight,
        }
    }

    /// The tenant's SLO class.
    pub fn slo(&self) -> SloClass {
        match self {
            AdaptTenant::Open(t) => t.slo,
            AdaptTenant::Closed(t) => t.slo,
            AdaptTenant::Snf(t) => t.slo,
        }
    }
}

/// Configuration of one adaptive serve run.
#[derive(Debug, Clone)]
pub struct AdaptConfig {
    /// Run seed; every random choice derives from it.
    pub seed: u64,
    /// Generation horizon, in virtual µs (closed-loop clients stop
    /// re-arriving past it).
    pub duration_us: Micros,
    /// Maximum requests per batch.
    pub batch: usize,
    /// Per-tenant queue bound; arrivals beyond it are shed.
    pub queue_capacity: usize,
    /// Fixed per-batch dispatch overhead, virtual µs.
    pub batch_overhead_us: Micros,
    /// In-flight submission window per driver thread (see
    /// [`fix_serve::ServeConfig::inflight`]).
    pub inflight: usize,
    /// The admission controller, or `None` for capacity-only admission
    /// (the static baseline).
    pub admission: Option<AdmissionPolicy>,
    /// The driver-pool scaler ([`ScalerConfig::fixed`] expresses a
    /// static pool in the same engine).
    pub scaler: ScalerConfig,
    /// The tenants.
    pub tenants: Vec<AdaptTenant>,
}

impl AdaptConfig {
    /// Validates structural invariants.
    pub fn validate(&self) -> std::result::Result<(), String> {
        if self.batch == 0 {
            return Err("batch size must be positive".into());
        }
        if self.queue_capacity == 0 {
            return Err("queue capacity must be positive".into());
        }
        if self.duration_us == 0 {
            return Err("duration must be positive".into());
        }
        if self.inflight == 0 {
            return Err("in-flight window must hold at least one batch".into());
        }
        self.scaler.validate()?;
        if self.tenants.is_empty() {
            return Err("at least one tenant is required".into());
        }
        for t in &self.tenants {
            if t.weight() == 0 {
                return Err(format!("tenant '{}' has zero weight", t.name()));
            }
            match t {
                AdaptTenant::Open(o) if o.mix.is_empty() => {
                    return Err(format!("tenant '{}' has an empty mix", o.name));
                }
                AdaptTenant::Closed(c) => {
                    if c.mix.is_empty() {
                        return Err(format!("tenant '{}' has an empty mix", c.name));
                    }
                    if c.clients == 0 {
                        return Err(format!("tenant '{}' has no clients", c.name));
                    }
                    // NaN must fail too, hence the partial_cmp form.
                    if c.think_mean_us.partial_cmp(&0.0) != Some(std::cmp::Ordering::Greater) {
                        return Err(format!("tenant '{}' needs a positive think time", c.name));
                    }
                }
                AdaptTenant::Snf(s) => {
                    if s.flows == 0 {
                        return Err(format!("tenant '{}' has no flows", s.name));
                    }
                    if s.batch_period_us == 0 {
                        return Err(format!("tenant '{}' needs a positive period", s.name));
                    }
                }
                _ => {}
            }
        }
        Ok(())
    }
}

/// Non-deterministic control-plane diagnostics: wall-timing-dependent
/// scheduler readings sampled once at the end of the execution phase.
/// Reported beside the deterministic tables (like
/// [`ServeReport::execution_wall`]), never inside them.
#[derive(Debug, Clone, Copy)]
pub struct ControlDiagnostics {
    /// `sched.parked` at sample time: worker threads blocked on the
    /// scheduler condvar (0 once a drained pool unparks).
    pub sched_parked: i64,
    /// `sched.steal_rate` at sample time: cross-slot steals in permille
    /// of all successful scheduler pops.
    pub sched_steal_rate_permille: i64,
}

/// The outcome of one adaptive serve run: the full (deterministic)
/// [`ServeReport`] — rejection column and scaling timeline populated —
/// plus the wall-clock control diagnostics.
pub struct AdaptReport {
    /// The deterministic report (its `Display` is the bit-identical
    /// table surface).
    pub serve: ServeReport,
    /// Wall-clock scheduler readings (non-deterministic).
    pub diag: ControlDiagnostics,
}

impl AdaptReport {
    /// The non-deterministic half, as one line: real execution wall
    /// time and throughput plus the scheduler gauges. Kept out of
    /// [`Display`](std::fmt::Display) so the printed tables stay
    /// bit-identical.
    pub fn wall_summary(&self) -> String {
        format!(
            "execution wall {:?} ({:.0} req/s real), sched parked {}, steal rate {}‰",
            self.serve.execution_wall,
            self.serve.wall_rps(),
            self.diag.sched_parked,
            self.diag.sched_steal_rate_permille,
        )
    }
}

impl std::fmt::Display for AdaptReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.serve.fmt(f)
    }
}

/// Trace id of a request (first 8 bytes of its thunk handle), matching
/// the serve layer's convention so adaptive spans stitch with scheduler
/// spans.
fn req_trace_id(h: Handle) -> u64 {
    u64::from_le_bytes(h.raw()[..8].try_into().expect("handle has 32 bytes"))
}

/// A planned batch (requests + the tier it was assembled from).
struct PlannedBatch {
    requests: Vec<QueuedRequest>,
    priority: Priority,
}

/// The virtual-time simulation state. One struct so admission, the
/// event loop, and the controllers share the queues without fighting
/// the borrow checker.
struct Sim<'a, A: InvocationApi> {
    rt: &'a A,
    cfg: &'a AdaptConfig,
    factory: &'a RequestFactory,
    snf: Vec<Option<SnfPipeline>>,
    queues: TenantQueues,
    seen: HashSet<Handle>,
    /// Pre-generated arrivals (open-loop + SNF), merged and sorted.
    timeline: Vec<Arrival>,
    next: usize,
    /// Pending closed-loop re-arrivals: `Reverse((time, tenant,
    /// client))` — a deterministic min-heap order.
    heap: BinaryHeap<Reverse<(Micros, usize, usize)>>,
    think: Vec<Option<ThinkStreams>>,
    /// Next sequence number per closed-loop tenant, assigned in
    /// processed-arrival order (which is time order).
    closed_seq: Vec<u64>,
    /// Outstanding closed-loop requests: (tenant, seq) → client.
    outstanding: HashMap<(usize, u64), usize>,
    admitted: Vec<u64>,
    active: usize,
    tracing: bool,
}

impl<'a, A: InvocationApi> Sim<'a, A> {
    /// The next pending arrival's (time, tenant), across both sources.
    /// A tenant is exclusively open/SNF (timeline) or closed (heap), so
    /// the pair totally orders the merge.
    fn peek(&self) -> Option<(Micros, usize)> {
        let tl = self.timeline.get(self.next).map(|a| (a.time_us, a.tenant));
        let cl = self.heap.peek().map(|Reverse((t, ten, _))| (*t, *ten));
        match (tl, cl) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }

    /// Schedules a closed-loop client's next arrival after a think.
    fn schedule_client(&mut self, tenant: usize, client: usize, resolved_at: Micros) {
        let think = self.think[tenant]
            .as_mut()
            .expect("closed tenant has think streams")
            .next(client);
        let at = resolved_at + think;
        if at < self.cfg.duration_us {
            self.heap.push(Reverse((at, tenant, client)));
        }
    }

    /// Processes every pending arrival with time ≤ `t`, in (time,
    /// tenant, order) — admission, rejection, or shedding each.
    fn admit_up_to(&mut self, t: Micros) -> Result<()> {
        while let Some((at, _)) = self.peek() {
            if at > t {
                break;
            }
            let tl = self.timeline.get(self.next).map(|a| (a.time_us, a.tenant));
            let cl = self.heap.peek().map(|Reverse((tt, ten, _))| (*tt, *ten));
            let take_timeline = match (tl, cl) {
                (Some(a), Some(b)) => a <= b,
                (Some(_), None) => true,
                _ => false,
            };
            if take_timeline {
                let a = self.timeline[self.next];
                self.next += 1;
                self.offer(a, None)?;
            } else {
                let Reverse((time_us, tenant, client)) =
                    self.heap.pop().expect("peek saw a heap entry");
                let seq = self.closed_seq[tenant];
                self.closed_seq[tenant] += 1;
                self.offer(
                    Arrival {
                        time_us,
                        tenant,
                        seq,
                    },
                    Some(client),
                )?;
            }
        }
        Ok(())
    }

    /// Offers one arrival: capacity shed, admission pricing, then
    /// enqueue — mirroring [`fix_serve::serve`]'s admission path with
    /// the controller spliced in between the O(1) capacity check and
    /// the (thunk-minting) enqueue.
    fn offer(&mut self, a: Arrival, client: Option<usize>) -> Result<()> {
        let spec = &self.cfg.tenants[a.tenant];
        // Capacity first: a shed arrival must stay O(1), before any
        // pricing or minting work.
        if self.queues.at_capacity(a.tenant) {
            self.queues.shed(a.tenant);
            if self.tracing {
                fix_obs::emit(
                    EventKind::ServeShed,
                    a.time_us,
                    0,
                    a.tenant as u32,
                    self.queues.tenant_depth(a.tenant) as u32,
                );
            }
            if let Some(c) = client {
                // The client's request resolved (badly) on the spot;
                // it thinks, then retries.
                self.schedule_client(a.tenant, c, a.time_us);
            }
            return Ok(());
        }
        let deadline_us = spec.slo().deadline_us.map(|d| a.time_us + d);
        // Admission pricing: still no thunk minted — rejection must be
        // cheap under exactly the overload that triggers it.
        if let Some(policy) = &self.cfg.admission {
            let pool = crate::PoolShape {
                active_drivers: self.active,
                batch: self.cfg.batch,
                batch_overhead_us: self.cfg.batch_overhead_us,
            };
            if let Some(wait) = policy.price(&self.queues, a.tenant, a.time_us, deadline_us, pool) {
                self.queues.reject(a.tenant);
                if self.tracing {
                    fix_obs::emit(
                        EventKind::CtrlReject,
                        a.time_us,
                        0,
                        a.tenant as u32,
                        wait.min(u32::MAX as Micros) as u32,
                    );
                }
                if let Some(c) = client {
                    self.schedule_client(a.tenant, c, a.time_us);
                }
                return Ok(());
            }
        }
        // Admitted path: mint the (content-addressed) thunk and price
        // its service.
        let (kind, thunk, service_us) = match spec {
            AdaptTenant::Snf(_) => {
                let p = self.snf[a.tenant]
                    .as_ref()
                    .expect("SNF tenant has a pipeline");
                let (flow, batch) = (p.flow_of(a.seq), p.batch_of(a.seq));
                let service = p.service_us(flow, batch);
                let thunk = p.mint(self.rt, flow, batch)?;
                // The kind is a carrier field here (dispatch re-pricing
                // is a fix-dispatch concern); the SNF service model
                // already priced the fold.
                (RequestKind::Add, thunk, service)
            }
            AdaptTenant::Open(t) => self.mint_kind(&t.mix, a)?,
            AdaptTenant::Closed(t) => self.mint_kind(&t.mix, a)?,
        };
        if self.queues.offer(QueuedRequest {
            arrival_us: a.time_us,
            tenant: a.tenant,
            seq: a.seq,
            kind,
            thunk,
            service_us,
            deadline_us,
        }) {
            self.admitted[a.tenant] += 1;
            self.seen.insert(thunk);
            if let AdaptTenant::Snf(_) = spec {
                let p = self.snf[a.tenant].as_mut().expect("pipeline exists");
                let (flow, batch) = (p.flow_of(a.seq), p.batch_of(a.seq));
                p.admit(flow, batch, thunk)?;
            }
            if let Some(c) = client {
                self.outstanding.insert((a.tenant, a.seq), c);
            }
            if self.tracing {
                fix_obs::emit(
                    EventKind::ServeAdmit,
                    a.time_us,
                    req_trace_id(thunk),
                    a.tenant as u32,
                    self.queues.tenant_depth(a.tenant) as u32,
                );
            }
        } else if let Some(c) = client {
            self.schedule_client(a.tenant, c, a.time_us);
        }
        Ok(())
    }

    /// Mints a mix-drawn request (the open/closed path), priced
    /// cold/warm by first admitted sight — the same memoization mirror
    /// as the serve layer.
    fn mint_kind(
        &mut self,
        mix: &[(RequestKind, u32)],
        a: Arrival,
    ) -> Result<(RequestKind, Handle, Micros)> {
        let kind = draw_kind(mix, tenant_seed(self.cfg.seed, a.tenant, 1), a.seq);
        let thunk = self.factory.mint(self.rt, a.tenant, a.seq, kind)?;
        let service_us = if self.seen.contains(&thunk) {
            kind.warm_service_us()
        } else {
            kind.cold_service_us()
        };
        Ok((kind, thunk, service_us))
    }

    /// Total modeled service queued across all tenants, µs — the
    /// scaler's pressure signal.
    fn total_backlog_us(&self) -> Micros {
        (0..self.cfg.tenants.len())
            .map(|t| self.queues.tenant_backlog_us(t))
            .sum()
    }
}

/// Runs the adaptive serving pipeline against `rt`: merge the three
/// arrival sources, admit/price/schedule them in virtual time under the
/// closed-loop controllers, then execute the planned batches on a real
/// driver-thread pool through the submission API (see the module docs).
///
/// # Examples
///
/// ```
/// use fix_adapt::{adaptive_serve, AdaptConfig, AdaptTenant, ScalerConfig};
/// use fix_serve::{ArrivalProcess, RequestKind, TenantSpec};
///
/// let cfg = AdaptConfig {
///     seed: 7,
///     duration_us: 50_000,
///     batch: 8,
///     queue_capacity: 64,
///     batch_overhead_us: 5,
///     inflight: 2,
///     admission: None,
///     scaler: ScalerConfig::fixed(2),
///     tenants: vec![AdaptTenant::Open(TenantSpec::uniform_mix(
///         "t0",
///         1,
///         ArrivalProcess::Uniform { period_us: 500 },
///         RequestKind::Add,
///     ))],
/// };
/// let rt = fixpoint::Runtime::builder().build();
/// let report = adaptive_serve(&rt, &cfg).unwrap();
/// assert_eq!(report.serve.completed, 100);
/// ```
pub fn adaptive_serve<A: SubmitApi + InvocationApi + Send + Sync>(
    rt: &A,
    cfg: &AdaptConfig,
) -> Result<AdaptReport> {
    cfg.validate().map_err(|message| Error::Backend {
        backend: "adapt",
        message,
    })?;
    // The factory sees every tenant as a TenantSpec view (the arrivals
    // field of closed/SNF views is a placeholder — their arrivals come
    // from the heap and the SNF schedule, never from `generate`).
    let views: Vec<TenantSpec> = cfg
        .tenants
        .iter()
        .map(|t| match t {
            AdaptTenant::Open(o) => o.clone(),
            AdaptTenant::Closed(c) => TenantSpec {
                name: c.name.clone(),
                weight: c.weight,
                arrivals: ArrivalProcess::Uniform { period_us: 1 },
                mix: c.mix.clone(),
                slo: c.slo,
            },
            AdaptTenant::Snf(s) => TenantSpec {
                name: s.name.clone(),
                weight: s.weight,
                arrivals: ArrivalProcess::Uniform { period_us: 1 },
                mix: vec![(RequestKind::Add, 1)],
                slo: s.slo,
            },
        })
        .collect();
    let factory = RequestFactory::install(rt, &views, cfg.seed)?;
    let snf: Vec<Option<SnfPipeline>> = cfg
        .tenants
        .iter()
        .map(|t| match t {
            AdaptTenant::Snf(s) => Some(SnfPipeline::install(rt, s.flows)),
            _ => None,
        })
        .collect();

    // Pre-generated arrivals: open-loop streams and SNF schedules.
    let per_tenant: Vec<Vec<Micros>> = cfg
        .tenants
        .iter()
        .enumerate()
        .map(|(i, t)| match t {
            AdaptTenant::Open(o) => o
                .arrivals
                .generate(tenant_seed(cfg.seed, i, 0), cfg.duration_us),
            AdaptTenant::Closed(_) => Vec::new(),
            AdaptTenant::Snf(s) => s.arrival_times(cfg.duration_us),
        })
        .collect();
    let timeline = merge_timelines(per_tenant);

    let classes: Vec<TenantClass> = cfg
        .tenants
        .iter()
        .map(|t| {
            let slo = t.slo();
            TenantClass {
                weight: t.weight(),
                priority: slo.priority,
                deadline_us: slo.deadline_us,
            }
        })
        .collect();
    let n_tenants = cfg.tenants.len();
    let tracing = fix_obs::tracing_enabled();
    let mut sim = Sim {
        rt,
        cfg,
        factory: &factory,
        snf,
        queues: TenantQueues::new(classes, cfg.queue_capacity),
        seen: HashSet::new(),
        timeline,
        next: 0,
        heap: BinaryHeap::new(),
        think: cfg
            .tenants
            .iter()
            .enumerate()
            .map(|(i, t)| match t {
                AdaptTenant::Closed(c) => {
                    Some(ThinkStreams::new(cfg.seed, i, c.clients, c.think_mean_us))
                }
                _ => None,
            })
            .collect(),
        closed_seq: vec![0; n_tenants],
        outstanding: HashMap::new(),
        admitted: vec![0; n_tenants],
        active: cfg.scaler.min_drivers,
        tracing,
    };
    // Every closed-loop client thinks once before its first request.
    for (i, t) in cfg.tenants.iter().enumerate() {
        if let AdaptTenant::Closed(c) = t {
            for client in 0..c.clients {
                sim.schedule_client(i, client, 0);
            }
        }
    }

    let mut scaler = Autoscaler::new(cfg.scaler);
    let max_drivers = cfg.scaler.max_drivers;
    let mut next_control = cfg.scaler.control_interval_us;
    let mut free: Vec<Micros> = vec![0; max_drivers];
    let mut plans: Vec<Vec<PlannedBatch>> = (0..max_drivers).map(|_| Vec::new()).collect();
    let mut drivers: Vec<DriverReport> = (0..max_drivers)
        .map(|_| DriverReport {
            batches: 0,
            requests: 0,
            busy_us: 0,
            latency: LatencyHistogram::new(),
        })
        .collect();
    let mut tenant_hists: Vec<LatencyHistogram> =
        (0..n_tenants).map(|_| LatencyHistogram::new()).collect();
    let mut wait_hists = tenant_hists.clone();
    let mut service_hists = tenant_hists.clone();
    let mut fill_hists = tenant_hists.clone();
    let depth_gauges: Vec<fix_obs::Gauge> = cfg
        .tenants
        .iter()
        .map(|t| fix_obs::global().gauge(&format!("serve.{}.queue_depth", t.name())))
        .collect();
    let mut expired_per_tenant = vec![0u64; n_tenants];
    let mut makespan: Micros = 0;

    loop {
        let active = scaler.active();
        // The earliest-free *active* driver serves next (ties to the
        // lowest index). Inactive drivers are simply outside the scan.
        let d = (0..active)
            .min_by_key(|&i| (free[i], i))
            .expect("active pool is non-empty");
        let now = free[d];
        // A controller tick due at or before the dispatch instant runs
        // first, over the queue state as of the tick: admit arrivals up
        // to it, tick, then re-pick the driver (a scale-up introduces a
        // driver free at the tick instant; a scale-down shrinks the
        // scan — either way the dispatch decision is re-made).
        if next_control <= now {
            sim.admit_up_to(next_control)?;
            let backlog = sim.total_backlog_us();
            if let Some(new_active) = scaler.tick(next_control, backlog, tracing) {
                if new_active > active {
                    // A newly activated driver is free from the tick
                    // instant — not from whenever it last ran (virtual
                    // time moved on while it was deactivated).
                    for f in free.iter_mut().take(new_active).skip(active) {
                        *f = (*f).max(next_control);
                    }
                }
                sim.active = new_active;
            }
            next_control = next_control.saturating_add(cfg.scaler.control_interval_us);
            continue;
        }
        sim.admit_up_to(now)?;
        if sim.queues.is_empty() {
            let Some((t, _)) = sim.peek() else {
                break; // No queued work, no future arrivals: drained.
            };
            if next_control < t {
                // Keep ticking across the idle gap: an idle pool is
                // exactly when the scaler should be shedding drivers.
                sim.admit_up_to(next_control)?;
                if let Some(new_active) = scaler.tick(next_control, 0, tracing) {
                    if new_active > sim.active {
                        for f in free.iter_mut().take(new_active).skip(sim.active) {
                            *f = (*f).max(next_control);
                        }
                    }
                    sim.active = new_active;
                }
                next_control = next_control.saturating_add(cfg.scaler.control_interval_us);
                continue;
            }
            // Idle-advance every driver to the next arrival instant and
            // admit everything stamped exactly there.
            sim.admit_up_to(t)?;
            for f in free.iter_mut() {
                *f = (*f).max(t);
            }
            continue;
        }
        let dispatch = sim.queues.next_dispatch(cfg.batch, now);
        for r in &dispatch.expired {
            expired_per_tenant[r.tenant] += 1;
            if tracing {
                fix_obs::emit(
                    EventKind::ServeExpire,
                    now,
                    req_trace_id(r.thunk),
                    r.tenant as u32,
                    0,
                );
            }
            // An expired closed-loop request resolves its client, which
            // thinks and retries.
            if let Some(c) = sim.outstanding.remove(&(r.tenant, r.seq)) {
                sim.schedule_client(r.tenant, c, now);
            }
        }
        let batch = dispatch.requests;
        if batch.is_empty() {
            continue;
        }
        let service: Micros =
            cfg.batch_overhead_us + batch.iter().map(|r| r.service_us).sum::<Micros>();
        let done = now + service;
        let mut sampled: Vec<usize> = batch.iter().map(|r| r.tenant).collect();
        sampled.sort_unstable();
        sampled.dedup();
        for &t in &sampled {
            let depth = sim.queues.tenant_depth(t);
            depth_gauges[t].set(depth as i64);
            if tracing {
                fix_obs::emit(EventKind::ServeQueueDepth, now, 0, t as u32, depth as u32);
            }
        }
        for r in &batch {
            debug_assert!(r.arrival_us <= now, "service must not precede arrival");
            let latency = done - r.arrival_us;
            let wait = now - r.arrival_us;
            let fill = service - r.service_us;
            tenant_hists[r.tenant].record(latency);
            wait_hists[r.tenant].record(wait);
            service_hists[r.tenant].record(r.service_us);
            fill_hists[r.tenant].record(fill);
            drivers[d].latency.record(latency);
            // A served closed-loop request completes at `done`; its
            // client thinks, then re-arrives.
            if let Some(c) = sim.outstanding.remove(&(r.tenant, r.seq)) {
                sim.schedule_client(r.tenant, c, done);
            }
            if tracing {
                let id = req_trace_id(r.thunk);
                let clamp = |v: Micros| v.min(u32::MAX as Micros) as u32;
                fix_obs::emit(
                    EventKind::ServeDispatch,
                    now,
                    id,
                    r.tenant as u32,
                    clamp(wait),
                );
                fix_obs::emit(
                    EventKind::ServeComplete,
                    done,
                    id,
                    r.tenant as u32,
                    clamp(latency),
                );
            }
        }
        drivers[d].batches += 1;
        drivers[d].requests += batch.len() as u64;
        drivers[d].busy_us += service;
        free[d] = done;
        makespan = makespan.max(done);
        plans[d].push(PlannedBatch {
            requests: batch,
            priority: dispatch.priority,
        });
    }

    // ------------------------------------------------------------------
    // Real execution: identical to the serve layer's driver pool — one
    // OS thread per provisioned driver, an in-flight window each.
    // ------------------------------------------------------------------
    let exec_start = std::time::Instant::now();
    let outcomes: Vec<Tally> = std::thread::scope(|scope| {
        let handles: Vec<_> = plans
            .iter()
            .map(|plan| {
                let inflight = cfg.inflight;
                scope.spawn(move || {
                    let mut tally = Tally::new(n_tenants);
                    let settle =
                        |batch: &PlannedBatch, results: Vec<Result<Handle>>, tally: &mut Tally| {
                            for (r, req) in results.iter().zip(&batch.requests) {
                                match r {
                                    Ok(_) => tally.ok[req.tenant] += 1,
                                    Err(Error::DeadlineExceeded { .. }) => {
                                        tally.expired[req.tenant] += 1
                                    }
                                    Err(Error::Cancelled) => tally.cancelled[req.tenant] += 1,
                                    Err(_) => tally.errors[req.tenant] += 1,
                                }
                            }
                        };
                    let mut window: VecDeque<(&PlannedBatch, BatchTicket)> =
                        VecDeque::with_capacity(inflight);
                    for batch in plan {
                        while window.len() >= inflight {
                            let (done, ticket) = window.pop_front().expect("window is non-empty");
                            settle(done, ticket.wait(), &mut tally);
                        }
                        let thunks: Vec<Handle> = batch.requests.iter().map(|r| r.thunk).collect();
                        let options = SubmitOptions::default().with_priority(batch.priority);
                        window.push_back((batch, rt.submit_with(&thunks, options)));
                    }
                    while let Some((done, ticket)) = window.pop_front() {
                        settle(done, ticket.wait(), &mut tally);
                    }
                    tally
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("driver thread must not panic"))
            .collect()
    });
    let execution_wall = exec_start.elapsed();

    let mut totals = Tally::new(n_tenants);
    for tally in outcomes {
        totals.absorb(&tally);
    }

    let tenants: Vec<TenantReport> = cfg
        .tenants
        .iter()
        .enumerate()
        .map(|(i, t)| {
            fix_obs::global()
                .histogram(&format!("serve.{}.latency_us", t.name()))
                .merge_from(&tenant_hists[i]);
            TenantReport {
                name: t.name().to_string(),
                class: t.slo().priority.label(),
                offered: sim.queues.offered[i],
                admitted: sim.admitted[i],
                dropped: sim.queues.dropped[i],
                rejected: sim.queues.rejected[i],
                ok: totals.ok[i],
                errors: totals.errors[i],
                expired: expired_per_tenant[i] + totals.expired[i],
                cancelled: totals.cancelled[i],
                latency: std::mem::take(&mut tenant_hists[i]),
                queue_wait: std::mem::take(&mut wait_hists[i]),
                service: std::mem::take(&mut service_hists[i]),
                fill: std::mem::take(&mut fill_hists[i]),
            }
        })
        .collect();
    let completed = tenants.iter().map(|t| t.ok + t.errors).sum();
    let diag = ControlDiagnostics {
        sched_parked: fix_obs::global().gauge("sched.parked").get(),
        sched_steal_rate_permille: fix_obs::global().gauge("sched.steal_rate").get(),
    };
    Ok(AdaptReport {
        serve: ServeReport {
            tenants,
            drivers,
            nodes: Vec::new(),
            scaling: scaler.into_timeline(),
            makespan_us: makespan,
            completed,
            execution_wall,
        },
        diag,
    })
}

/// Per-tenant outcome counters a driver thread accumulates (the serve
/// layer's tally, reproduced here because it is private there).
struct Tally {
    ok: Vec<u64>,
    errors: Vec<u64>,
    expired: Vec<u64>,
    cancelled: Vec<u64>,
}

impl Tally {
    fn new(n: usize) -> Tally {
        Tally {
            ok: vec![0; n],
            errors: vec![0; n],
            expired: vec![0; n],
            cancelled: vec![0; n],
        }
    }

    fn absorb(&mut self, other: &Tally) {
        for t in 0..self.ok.len() {
            self.ok[t] += other.ok[t];
            self.errors[t] += other.errors[t];
            self.expired[t] += other.expired[t];
            self.cancelled[t] += other.cancelled[t];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fix_serve::SloClass;
    use fixpoint::Runtime;

    fn hostile_cfg(seed: u64) -> AdaptConfig {
        AdaptConfig {
            seed,
            duration_us: 150_000,
            batch: 8,
            queue_capacity: 128,
            batch_overhead_us: 5,
            inflight: 2,
            admission: Some(AdmissionPolicy::default()),
            scaler: ScalerConfig {
                min_drivers: 2,
                max_drivers: 6,
                control_interval_us: 2_000,
                up_backlog_us: 400,
                down_backlog_us: 60,
                hold_ticks: 2,
            },
            tenants: vec![
                AdaptTenant::Open(
                    TenantSpec::uniform_mix(
                        "crowd",
                        1,
                        ArrivalProcess::FlashCrowd {
                            base_rps: 2_000.0,
                            spike_at_us: 40_000,
                            spike_len_us: 40_000,
                            spike_rps: 20_000.0,
                        },
                        RequestKind::Fib { max_n: 256 },
                    )
                    .with_slo(SloClass::latency(3_000)),
                ),
                AdaptTenant::Closed(ClosedLoopSpec {
                    name: "portal".into(),
                    weight: 1,
                    clients: 8,
                    think_mean_us: 2_000.0,
                    mix: vec![(RequestKind::SebsHtml { users: 4 }, 1)],
                    slo: SloClass::latency(8_000),
                }),
                AdaptTenant::Snf(SnfSpec {
                    name: "snf".into(),
                    weight: 1,
                    flows: 4,
                    batch_period_us: 2_000,
                    slo: SloClass::default(),
                }),
            ],
        }
    }

    #[test]
    fn adaptive_run_accounts_for_every_arrival() {
        let rt = Runtime::builder().build();
        let r = adaptive_serve(&rt, &hostile_cfg(42)).unwrap().serve;
        for t in &r.tenants {
            assert_eq!(
                t.offered,
                t.admitted + t.dropped + t.rejected,
                "tenant {}",
                t.name
            );
            assert_eq!(
                t.admitted,
                t.ok + t.errors + t.expired + t.cancelled,
                "tenant {}",
                t.name
            );
            assert_eq!(
                t.errors, 0,
                "tenant {}: all minted requests are valid",
                t.name
            );
        }
        // The flash crowd forces the controller's hand and the scaler up.
        assert!(
            r.total_rejected() > 0,
            "admission must reject under the spike"
        );
        assert!(
            r.scaling.iter().any(|s| s.to > s.from),
            "the spike must scale the pool up"
        );
        assert!(
            r.scaling.iter().any(|s| s.to < s.from),
            "the drain must scale the pool back down"
        );
        // The SNF tenant never sheds: its chains stay gap-free.
        let snf = &r.tenants[2];
        assert_eq!(snf.offered, snf.admitted);
        assert_eq!(snf.ok, snf.admitted);
    }

    #[test]
    fn same_seed_same_tables_and_timeline() {
        let a = adaptive_serve(&Runtime::builder().build(), &hostile_cfg(42)).unwrap();
        let b = adaptive_serve(&Runtime::builder().build(), &hostile_cfg(42)).unwrap();
        assert_eq!(a.serve.to_string(), b.serve.to_string());
        assert_eq!(a.serve.scaling, b.serve.scaling);
        let c = adaptive_serve(&Runtime::builder().build(), &hostile_cfg(43)).unwrap();
        assert_ne!(a.serve.to_string(), c.serve.to_string());
    }

    #[test]
    fn identical_on_a_worker_pool_runtime() {
        let cfg = hostile_cfg(11);
        let inline = adaptive_serve(&Runtime::builder().build(), &cfg).unwrap();
        let workers = adaptive_serve(&Runtime::builder().workers(4).build(), &cfg).unwrap();
        assert_eq!(inline.serve.to_string(), workers.serve.to_string());
    }

    #[test]
    fn static_pool_with_no_admission_matches_serve_semantics() {
        // The degenerate configuration — fixed pool, no controller,
        // open tenants only — must reproduce plain serve() accounting.
        let cfg = AdaptConfig {
            seed: 5,
            duration_us: 60_000,
            batch: 8,
            queue_capacity: 64,
            batch_overhead_us: 5,
            inflight: 2,
            admission: None,
            scaler: ScalerConfig::fixed(2),
            tenants: vec![AdaptTenant::Open(TenantSpec::uniform_mix(
                "poisson",
                1,
                ArrivalProcess::Poisson { rate_rps: 2_000.0 },
                RequestKind::Fib { max_n: 8 },
            ))],
        };
        let adapt = adaptive_serve(&Runtime::builder().build(), &cfg)
            .unwrap()
            .serve;
        let plain = fix_serve::serve(
            &Runtime::builder().build(),
            &fix_serve::ServeConfig {
                seed: 5,
                duration_us: 60_000,
                drivers: 2,
                batch: 8,
                queue_capacity: 64,
                batch_overhead_us: 5,
                inflight: 2,
                tenants: vec![TenantSpec::uniform_mix(
                    "poisson",
                    1,
                    ArrivalProcess::Poisson { rate_rps: 2_000.0 },
                    RequestKind::Fib { max_n: 8 },
                )],
            },
        )
        .unwrap();
        assert_eq!(adapt.to_string(), plain.to_string());
    }

    #[test]
    fn closed_loop_self_throttles_under_a_slow_pool() {
        // One driver, expensive requests: an open-loop tenant at the
        // same nominal rate would shed; the closed population limits
        // its own offered load to clients × completions.
        let cfg = AdaptConfig {
            seed: 3,
            duration_us: 100_000,
            batch: 4,
            queue_capacity: 16,
            batch_overhead_us: 10,
            inflight: 1,
            admission: None,
            scaler: ScalerConfig::fixed(1),
            tenants: vec![AdaptTenant::Closed(ClosedLoopSpec {
                name: "clients".into(),
                weight: 1,
                clients: 4,
                think_mean_us: 500.0,
                mix: vec![(
                    RequestKind::Wordcount {
                        shard_bytes: 65_536,
                    },
                    1,
                )],
                slo: SloClass::default(),
            })],
        };
        let r = adaptive_serve(&Runtime::builder().build(), &cfg)
            .unwrap()
            .serve;
        let t = &r.tenants[0];
        assert_eq!(t.offered, t.admitted, "a closed population never floods");
        assert_eq!(t.dropped, 0);
        assert!(t.ok > 0);
        // Never more requests outstanding than clients: the queue bound
        // was never even approachable.
        assert!(t.offered <= 4 * (t.ok + 1));
    }

    #[test]
    fn validation_rejects_degenerate_configs() {
        let rt = Runtime::builder().build();
        let mut cfg = hostile_cfg(1);
        cfg.tenants.clear();
        assert!(adaptive_serve(&rt, &cfg).is_err());
        let mut cfg = hostile_cfg(1);
        cfg.scaler.max_drivers = 1; // < min_drivers = 2
        assert!(adaptive_serve(&rt, &cfg).is_err());
        let mut cfg = hostile_cfg(1);
        cfg.scaler.down_backlog_us = cfg.scaler.up_backlog_us; // no dead band
        assert!(adaptive_serve(&rt, &cfg).is_err());
        let mut cfg = hostile_cfg(1);
        if let AdaptTenant::Closed(c) = &mut cfg.tenants[1] {
            c.clients = 0;
        }
        assert!(adaptive_serve(&rt, &cfg).is_err());
    }
}
