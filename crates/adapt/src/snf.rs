//! SNF-style streaming tenants: per-flow state folds chained on the
//! previous state handle.
//!
//! A serverless network function is not a bag of independent requests:
//! packet batch `k` of a flow folds into the state produced by batch
//! `k−1`. In Fix terms each batch is an application thunk whose first
//! argument is the *strict-encoded previous state* — the engine must
//! force the predecessor chain before the fold runs, which is exactly
//! the externally-visible dependency structure the paper's SNF case
//! study stresses. Two consequences the adaptive scenario leans on:
//!
//! * **Skipping is not free.** If the platform sheds batches `k..k+j`,
//!   batch `k+j+1` does not get cheaper — it must catch up over every
//!   unprocessed packet range, so its modeled service is
//!   `(j+1) × snf_step_us` (the calibrated
//!   [`snf_step_us`](fix_core::calibration::Calibration::snf_step_us)
//!   per folded batch). Backlog deferred is backlog owed.
//! * **Identity is content-addressed.** The thunk for a batch is a pure
//!   function of (flow, folded packet range, previous state), so every
//!   backend mints bit-identical handles and the serving tables stay
//!   backend-independent.

use fix_core::api::InvocationApi;
use fix_core::data::Blob;
use fix_core::error::Result;
use fix_core::handle::Handle;
use fix_core::limits::ResourceLimits;
use fix_serve::{Micros, SloClass};
use std::sync::Arc;

/// One SNF streaming tenant: `flows` flow-state shards, each offered
/// one packet batch per period.
#[derive(Debug, Clone)]
pub struct SnfSpec {
    /// Display name (the table row key).
    pub name: String,
    /// Weighted-fair share within the tenant's SLO tier.
    pub weight: u32,
    /// Flow-state shards (independent chains).
    pub flows: usize,
    /// Per-flow packet-batch period, µs: flow `f` offers batch `k` at
    /// `k × period + f × period / flows` (flows staggered across the
    /// period so the tenant's aggregate rate is smooth).
    pub batch_period_us: Micros,
    /// The tenant's SLO class. Leave the deadline off for a
    /// never-shed-never-expire pipeline (the streaming state must not
    /// silently lose folds); give it a deadline to let admission
    /// trade state freshness against catch-up cost.
    pub slo: SloClass,
}

impl SnfSpec {
    /// The tenant's deterministic arrival instants over the horizon,
    /// sorted. The merged timeline assigns sequence numbers in this
    /// order, so arrival `seq` is batch `seq / flows` of flow
    /// `seq % flows` — the inverse mapping [`SnfPipeline::flow_of`] and
    /// [`SnfPipeline::batch_of`] rely on.
    pub fn arrival_times(&self, duration_us: Micros) -> Vec<Micros> {
        let mut out = Vec::new();
        let stagger = self.batch_period_us / self.flows.max(1) as Micros;
        'outer: for k in 0.. {
            for f in 0..self.flows as Micros {
                let t = k * self.batch_period_us + f * stagger;
                if t >= duration_us {
                    break 'outer;
                }
                out.push(t);
            }
        }
        out
    }
}

/// Per-flow chain state.
struct FlowState {
    /// The first argument of the *next* fold: the initial-state blob,
    /// or the strict-encoded thunk of the last admitted batch.
    arg: Handle,
    /// Next packet-batch index the chain has not folded yet (batches
    /// below it are admitted; batches from it up to the one being
    /// minted are the catch-up range).
    next_batch: u64,
}

/// The per-backend SNF request factory: one registered fold procedure
/// plus the live chain head of every flow.
pub struct SnfPipeline {
    proc: Handle,
    limits: ResourceLimits,
    init: Handle,
    flows: Vec<FlowState>,
}

impl SnfPipeline {
    /// Registers the fold codelet on `rt` and initializes `flows`
    /// chains from the zero state.
    pub fn install<R: InvocationApi>(rt: &R, flows: usize) -> SnfPipeline {
        // The fold: new_state = prev_state + packets_in_range. The
        // packet blob carries (flow, from, to) so the thunk's identity
        // covers exactly the range it folds — and a catch-up fold over
        // a wider range is a *different* thunk than the never-shed one.
        let proc = rt.register_native(
            "adapt/snf-fold",
            Arc::new(|ctx| {
                let prev = ctx.arg_blob(0)?.as_u64().unwrap_or(0);
                let packets = ctx.arg_blob(1)?;
                let b = packets.as_slice();
                let word = |i: usize| {
                    b.get(i * 8..i * 8 + 8)
                        .map(|w| u64::from_le_bytes(w.try_into().expect("8 bytes")))
                        .unwrap_or(0)
                };
                let (from, to) = (word(1), word(2));
                let folded = to.saturating_sub(from) + 1;
                ctx.host
                    .create_blob(prev.wrapping_add(folded).to_le_bytes().to_vec())
            }),
        );
        let init = rt.put_blob(Blob::from_u64(0));
        SnfPipeline {
            proc,
            limits: ResourceLimits::default_limits(),
            init,
            flows: (0..flows)
                .map(|_| FlowState {
                    arg: init,
                    next_batch: 0,
                })
                .collect(),
        }
    }

    /// The flow an arrival sequence number belongs to.
    pub fn flow_of(&self, seq: u64) -> usize {
        (seq % self.flows.len().max(1) as u64) as usize
    }

    /// The packet-batch index of an arrival sequence number.
    pub fn batch_of(&self, seq: u64) -> u64 {
        seq / self.flows.len().max(1) as u64
    }

    /// Batches the fold for (`flow`, `batch`) would cover: everything
    /// the chain has not folded yet, through `batch`. 1 when the chain
    /// is caught up; larger after sheds (the catch-up debt).
    pub fn fold_span(&self, flow: usize, batch: u64) -> u64 {
        batch + 1 - self.flows[flow].next_batch
    }

    /// Modeled service of the fold for (`flow`, `batch`), in virtual
    /// µs: the calibrated per-batch step times the catch-up span.
    pub fn service_us(&self, flow: usize, batch: u64) -> Micros {
        fix_core::calibration::SERVICE_COSTS.snf_step_us * self.fold_span(flow, batch)
    }

    /// Mints the fold thunk for (`flow`, `batch`): the chain head
    /// (strict-encoded previous state) applied to the pending packet
    /// range. Does not advance the chain — call
    /// [`admit`](Self::admit) once the request is actually admitted.
    pub fn mint<R: InvocationApi>(&self, rt: &R, flow: usize, batch: u64) -> Result<Handle> {
        let f = &self.flows[flow];
        let mut packets = Vec::with_capacity(24);
        packets.extend_from_slice(&(flow as u64).to_le_bytes());
        packets.extend_from_slice(&f.next_batch.to_le_bytes());
        packets.extend_from_slice(&batch.to_le_bytes());
        let range = rt.put_blob(Blob::from_vec(packets));
        rt.apply(self.limits, self.proc, &[f.arg, range])
    }

    /// Advances `flow`'s chain head past `batch`: the next fold will
    /// chain on `thunk`'s strict encode (forcing this fold — and,
    /// transitively, the whole admitted prefix — before it runs).
    pub fn admit(&mut self, flow: usize, batch: u64, thunk: Handle) -> Result<()> {
        let f = &mut self.flows[flow];
        f.arg = thunk.strict()?;
        f.next_batch = batch + 1;
        Ok(())
    }

    /// Resets every chain to the zero state (used by determinism tests
    /// re-running one pipeline).
    pub fn reset(&mut self) {
        for f in &mut self.flows {
            f.arg = self.init;
            f.next_batch = 0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fixpoint::Runtime;

    #[test]
    fn arrivals_stagger_flows_across_the_period() {
        let s = SnfSpec {
            name: "snf".into(),
            weight: 1,
            flows: 4,
            batch_period_us: 100,
            slo: SloClass::default(),
        };
        let times = s.arrival_times(250);
        assert_eq!(times, vec![0, 25, 50, 75, 100, 125, 150, 175, 200, 225]);
        // seq ↔ (flow, batch) round-trips under the staggered order.
        let rt = Runtime::builder().build();
        let p = SnfPipeline::install(&rt, 4);
        assert_eq!((p.flow_of(0), p.batch_of(0)), (0, 0));
        assert_eq!((p.flow_of(5), p.batch_of(5)), (1, 1));
        assert_eq!((p.flow_of(11), p.batch_of(11)), (3, 2));
    }

    #[test]
    fn chained_folds_force_the_admitted_prefix() {
        let rt = Runtime::builder().build();
        let mut p = SnfPipeline::install(&rt, 2);
        // Flow 0 admits batches 0 and 1; each fold covers one batch.
        for batch in 0..2 {
            assert_eq!(p.fold_span(0, batch), 1);
            let t = p.mint(&rt, 0, batch).unwrap();
            p.admit(0, batch, t).unwrap();
        }
        // Batch 4 after shedding 2 and 3: a catch-up fold over 3
        // batches, priced accordingly…
        assert_eq!(p.fold_span(0, 4), 3);
        assert_eq!(
            p.service_us(0, 4),
            3 * fix_core::calibration::SERVICE_COSTS.snf_step_us
        );
        let t = p.mint(&rt, 0, 4).unwrap();
        p.admit(0, 4, t).unwrap();
        // …and evaluating the head forces the whole chain: 5 batches
        // folded in total, one packet range each.
        let out = rt.eval(t).unwrap();
        let blob = rt.get_blob(out).unwrap();
        assert_eq!(blob.as_u64(), Some(5));
        // Flow 1 is an independent chain, still at its initial state.
        assert_eq!(p.fold_span(1, 0), 1);
    }

    #[test]
    fn minting_is_deterministic_across_backends() {
        let rt = Runtime::builder().build();
        let cc = fix_cluster::ClusterClient::builder().build().unwrap();
        let mut pa = SnfPipeline::install(&rt, 2);
        let mut pb = SnfPipeline::install(&cc, 2);
        for batch in 0..4 {
            let a = pa.mint(&rt, 1, batch).unwrap();
            let b = pb.mint(&cc, 1, batch).unwrap();
            assert_eq!(a, b, "content addressing is backend-agnostic");
            // Skip admitting batch 2 on both: the catch-up thunk for
            // batch 3 must also agree.
            if batch != 2 {
                pa.admit(1, batch, a).unwrap();
                pb.admit(1, batch, b).unwrap();
            }
        }
        pa.reset();
        assert_eq!(pa.fold_span(1, 0), 1);
    }
}
