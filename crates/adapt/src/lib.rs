//! `fix-adapt`: the adaptive control plane for serving under hostile
//! traffic.
//!
//! The plain serving layer (`fix-serve`) is open loop all the way down:
//! a fixed driver pool, capacity-only admission, and tenants that keep
//! offering traffic no matter what comes back. That is the right
//! harness for measuring a static configuration, and exactly the wrong
//! one for surviving a flash crowd. This crate closes the loop — on the
//! same virtual clock, with the same bit-identical-tables discipline:
//!
//! * **Attainment-driven admission** ([`AdmissionPolicy`]). Every
//!   arrival with a deadline is priced at the door against the
//!   calibrated service model and the tenant's queued backlog. A
//!   request that provably cannot dispatch before its deadline is
//!   *rejected* — accounted in the report's `rejectd` column, separate
//!   from capacity sheds — instead of queueing as dead work that
//!   expires after eating queue space.
//! * **An autoscaling driver pool** ([`Autoscaler`]). A deterministic
//!   controller ticks on the virtual clock and grows or shrinks the
//!   active driver count between configured bounds on per-driver
//!   backlog thresholds, with consecutive-tick hysteresis. Every resize
//!   lands in the report's scaling timeline
//!   ([`ScaleEvent`](fix_serve::ScaleEvent)) and prints with the table.
//! * **Closed-loop clients** ([`ClosedLoopSpec`]). Tenants whose next
//!   arrival depends on the previous completion: a fixed client
//!   population with exponential think times, merged deterministically
//!   with the open-loop timeline. Under overload a closed-loop tenant
//!   self-throttles — the feedback open-loop generators cannot model.
//! * **SNF-style streaming tenants** ([`SnfSpec`]). Serverless network
//!   functions as a pipeline of flow-state shards: each packet batch is
//!   a thunk *chained on the previous state handle* (a strict-encoded
//!   argument forces the predecessor before the fold runs). Missed
//!   batches make the successor dearer — the long memoized dependency
//!   chain that makes load shedding a correctness question, not just a
//!   latency one.
//!
//! [`adaptive_serve`] runs all of it through the same two-halves
//! engine as [`fix_serve::serve`]: a deterministic virtual-time
//! simulation that plans batches, then a real driver-thread pool that
//! executes exactly those batches through the submission API on any
//! [`SubmitApi`](fix_core::api::SubmitApi) backend. Everything printed
//! is bit-identical across runs and backends for one seed; wall-clock
//! readings ([`AdaptReport::wall_summary`], scheduler park/steal
//! gauges) are reported separately and never enter the tables.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod closed_loop;
pub mod controller;
pub mod engine;
pub mod snf;

pub use closed_loop::ClosedLoopSpec;
pub use controller::{AdmissionPolicy, Autoscaler, PoolShape, ScalerConfig};
pub use engine::{adaptive_serve, AdaptConfig, AdaptReport, AdaptTenant, ControlDiagnostics};
pub use snf::{SnfPipeline, SnfSpec};
