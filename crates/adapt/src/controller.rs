//! The two deterministic controllers: admission pricing and the
//! driver-pool autoscaler.
//!
//! Both run on the virtual clock inside the simulation loop, so their
//! decisions are part of the bit-identical report surface — the same
//! seed produces the same rejections and the same scaling timeline on
//! every backend. (The *wall-clock* scheduler gauges they can be
//! steered by in a live deployment — `sched.parked`,
//! `sched.steal_rate` — are sampled only into the non-deterministic
//! diagnostics, never into a decision that shapes a table.)

use fix_obs::EventKind;
use fix_serve::{Micros, ScaleEvent, TenantQueues};

/// Attainment-driven admission: reject an arrival that provably cannot
/// dispatch before its deadline.
///
/// The bound prices the arrival against the tenant's *FIFO-prefix*
/// backlog. When the new request finally dispatches, at most
/// `active_drivers × batch − 1` of its FIFO predecessors can still be
/// co-batched or in service beside it; every earlier predecessor must
/// already have been served. The modeled service time of that prefix,
/// spread across the active drivers, therefore lower-bounds the new
/// arrival's queue wait:
///
/// ```text
/// wait ≥ batch_overhead + prefix_backlog / active_drivers
/// ```
///
/// If `arrival + wait` already exceeds the absolute deadline, queueing
/// the request only manufactures an expiry — so the controller refuses
/// it at the door (`rejected` accounting, O(drivers × batch) work, no
/// thunk minted).
///
/// The bound is exact under the usual idealization — work-conserving
/// drivers, no predecessor expiring first, cross-tenant interference
/// ignored. Interference only *delays* dispatch further, so ignoring it
/// under-rejects (the safe direction); a predecessor expiring first
/// could free capacity the bound did not credit, which is why the bound
/// is applied only to deadlines the prefix already overruns outright.
#[derive(Debug, Clone, Copy, Default)]
pub struct AdmissionPolicy {
    /// Extra predicted-wait slack, in virtual µs, tolerated before
    /// rejecting: an arrival is refused only when
    /// `now + wait > deadline + headroom_us`. Zero (the default) is the
    /// pure provable-expiry bound; raising it admits borderline work.
    pub headroom_us: Micros,
}

/// The dispatch capacity an arrival is priced against: the live driver
/// count beside the fixed batch shape. The engine rebuilds this from
/// the autoscaler's current `active` on every priced arrival, so the
/// admission bound always reflects the pool the autoscaler just chose.
#[derive(Debug, Clone, Copy)]
pub struct PoolShape {
    /// Drivers currently active (the autoscaler's live count).
    pub active_drivers: usize,
    /// Requests pulled per dispatched batch.
    pub batch: usize,
    /// Fixed per-batch dispatch overhead, virtual µs.
    pub batch_overhead_us: Micros,
}

impl AdmissionPolicy {
    /// The lower bound on the queue wait a new arrival of `tenant`
    /// would face, in virtual µs (see the type docs for the argument).
    pub fn predicted_wait_us(
        &self,
        queues: &TenantQueues,
        tenant: usize,
        pool: PoolShape,
    ) -> Micros {
        let drivers = pool.active_drivers.max(1);
        let immediate = drivers * pool.batch.max(1);
        let prefix = queues.tenant_backlog_prefix_us(tenant, immediate - 1);
        pool.batch_overhead_us + prefix / drivers as Micros
    }

    /// Prices one arrival at `now_us` with absolute deadline
    /// `deadline_us`; returns the predicted wait if the request must be
    /// rejected, `None` if it may be admitted. Deadline-free arrivals
    /// are always admitted — there is nothing to provably miss.
    pub fn price(
        &self,
        queues: &TenantQueues,
        tenant: usize,
        now_us: Micros,
        deadline_us: Option<Micros>,
        pool: PoolShape,
    ) -> Option<Micros> {
        let deadline = deadline_us?;
        let wait = self.predicted_wait_us(queues, tenant, pool);
        (now_us + wait > deadline.saturating_add(self.headroom_us)).then_some(wait)
    }
}

/// Configuration of the driver-pool autoscaler.
#[derive(Debug, Clone, Copy)]
pub struct ScalerConfig {
    /// Smallest active pool (also the starting size).
    pub min_drivers: usize,
    /// Largest active pool (the capacity actually provisioned: the
    /// execution phase spawns this many real driver threads).
    pub max_drivers: usize,
    /// Controller tick period on the virtual clock, µs.
    pub control_interval_us: Micros,
    /// Scale *up* one driver when the per-active-driver queued backlog
    /// has been at or above this for [`hold_ticks`](Self::hold_ticks)
    /// consecutive ticks.
    pub up_backlog_us: Micros,
    /// Scale *down* one driver when the per-active-driver backlog has
    /// been at or below this for the hold count. Keep it well under
    /// [`up_backlog_us`](Self::up_backlog_us): the dead band between
    /// the two thresholds is the hysteresis that stops flapping.
    pub down_backlog_us: Micros,
    /// Consecutive out-of-band ticks required before a resize.
    pub hold_ticks: u32,
}

impl ScalerConfig {
    /// A fixed pool of `drivers`: the degenerate scaler (min = max)
    /// whose tick can never resize. This is how the static baseline is
    /// expressed in the same engine as the adaptive configuration.
    pub fn fixed(drivers: usize) -> ScalerConfig {
        ScalerConfig {
            min_drivers: drivers,
            max_drivers: drivers,
            control_interval_us: Micros::MAX,
            up_backlog_us: Micros::MAX,
            down_backlog_us: 0,
            hold_ticks: 1,
        }
    }

    /// Structural validation (positive bounds, min ≤ max, a real dead
    /// band, a positive tick period).
    pub fn validate(&self) -> Result<(), String> {
        if self.min_drivers == 0 {
            return Err("scaler needs at least one driver".into());
        }
        if self.max_drivers < self.min_drivers {
            return Err("scaler max_drivers must be ≥ min_drivers".into());
        }
        if self.control_interval_us == 0 {
            return Err("scaler control interval must be positive".into());
        }
        if self.hold_ticks == 0 {
            return Err("scaler hold_ticks must be positive".into());
        }
        if self.min_drivers != self.max_drivers && self.down_backlog_us >= self.up_backlog_us {
            return Err("scaler thresholds must leave a dead band (down < up)".into());
        }
        Ok(())
    }
}

/// The deterministic driver-pool controller: ticks on the virtual
/// clock, compares per-active-driver backlog against the configured
/// band, and resizes one driver at a time after the hold count —
/// recording every move in the [`ScaleEvent`] timeline the report
/// prints.
#[derive(Debug)]
pub struct Autoscaler {
    cfg: ScalerConfig,
    active: usize,
    over: u32,
    under: u32,
    timeline: Vec<ScaleEvent>,
}

impl Autoscaler {
    /// A scaler starting at `cfg.min_drivers` active drivers.
    pub fn new(cfg: ScalerConfig) -> Autoscaler {
        Autoscaler {
            active: cfg.min_drivers,
            cfg,
            over: 0,
            under: 0,
            timeline: Vec::new(),
        }
    }

    /// Currently active drivers.
    pub fn active(&self) -> usize {
        self.active
    }

    /// The controller tick period, µs.
    pub fn interval_us(&self) -> Micros {
        self.cfg.control_interval_us
    }

    /// The resizes so far, in virtual-time order.
    pub fn timeline(&self) -> &[ScaleEvent] {
        &self.timeline
    }

    /// Consumes the scaler, yielding its timeline for the report.
    pub fn into_timeline(self) -> Vec<ScaleEvent> {
        self.timeline
    }

    /// One controller tick at virtual `at_us` with `backlog_us` total
    /// modeled service queued across all tenants. Returns the new
    /// active count when the tick resized the pool.
    pub fn tick(&mut self, at_us: Micros, backlog_us: Micros, tracing: bool) -> Option<usize> {
        let per_driver = backlog_us / self.active.max(1) as Micros;
        if per_driver >= self.cfg.up_backlog_us && self.active < self.cfg.max_drivers {
            self.under = 0;
            self.over += 1;
            if self.over >= self.cfg.hold_ticks {
                self.over = 0;
                return Some(self.resize(at_us, self.active + 1, tracing));
            }
        } else if per_driver <= self.cfg.down_backlog_us && self.active > self.cfg.min_drivers {
            self.over = 0;
            self.under += 1;
            if self.under >= self.cfg.hold_ticks {
                self.under = 0;
                return Some(self.resize(at_us, self.active - 1, tracing));
            }
        } else {
            // In the dead band: the hold counters reset, so a resize
            // always reflects *consecutive* pressure, not pressure
            // accumulated across lulls.
            self.over = 0;
            self.under = 0;
        }
        None
    }

    fn resize(&mut self, at_us: Micros, to: usize, tracing: bool) -> usize {
        let from = self.active;
        self.active = to;
        self.timeline.push(ScaleEvent { at_us, from, to });
        if tracing {
            let kind = if to > from {
                EventKind::CtrlScaleUp
            } else {
                EventKind::CtrlScaleDown
            };
            fix_obs::emit(kind, at_us, 0, from as u32, to as u32);
        }
        to
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fix_serve::{QueuedRequest, RequestKind};

    fn queued(tenant: usize, service_us: Micros, deadline_us: Option<Micros>) -> QueuedRequest {
        QueuedRequest {
            arrival_us: 0,
            tenant,
            seq: 0,
            kind: RequestKind::Add,
            thunk: fix_core::data::Blob::from_u64(service_us).handle(),
            service_us,
            deadline_us,
        }
    }

    #[test]
    fn admission_rejects_exactly_the_provably_late() {
        let mut q = TenantQueues::weighted(vec![1], 1000);
        // 1 driver × batch 2 ⇒ the newest 1 predecessor is "immediate";
        // 10 queued 100 µs requests leave a 900 µs prefix.
        for _ in 0..10 {
            q.offer(queued(0, 100, None));
        }
        let pool = |active_drivers| PoolShape {
            active_drivers,
            batch: 2,
            batch_overhead_us: 7,
        };
        let p = AdmissionPolicy::default();
        assert_eq!(p.predicted_wait_us(&q, 0, pool(1)), 907);
        // Deadline past the bound: admit. At/below: reject.
        assert_eq!(p.price(&q, 0, 0, Some(1000), pool(1)), None);
        assert_eq!(p.price(&q, 0, 0, Some(900), pool(1)), Some(907));
        // No deadline ⇒ nothing to provably miss ⇒ never rejected.
        assert_eq!(p.price(&q, 0, 0, None, pool(1)), None);
        // More drivers spread the prefix and shrink the bound.
        assert!(p.predicted_wait_us(&q, 0, pool(4)) < 907);
        // Headroom admits borderline work.
        let lax = AdmissionPolicy { headroom_us: 50 };
        assert_eq!(lax.price(&q, 0, 0, Some(900), pool(1)), None);
    }

    #[test]
    fn scaler_holds_then_resizes_within_bounds() {
        let cfg = ScalerConfig {
            min_drivers: 2,
            max_drivers: 4,
            control_interval_us: 1000,
            up_backlog_us: 100,
            down_backlog_us: 10,
            hold_ticks: 2,
        };
        cfg.validate().unwrap();
        let mut s = Autoscaler::new(cfg);
        assert_eq!(s.active(), 2);
        // One hot tick is not enough (hysteresis)…
        assert_eq!(s.tick(1000, 1000, false), None);
        // …two consecutive are.
        assert_eq!(s.tick(2000, 1000, false), Some(3));
        // A dead-band tick resets the hold counter.
        assert_eq!(s.tick(3000, 150, false), None); // 150/3 = 50: in band
        assert_eq!(s.tick(4000, 1000, false), None);
        assert_eq!(s.tick(5000, 1000, false), Some(4));
        // At max the scaler saturates.
        assert_eq!(s.tick(6000, 9000, false), None);
        assert_eq!(s.tick(7000, 9000, false), None);
        // Draining scales back down to min, never below.
        assert_eq!(s.tick(8000, 0, false), None);
        assert_eq!(s.tick(9000, 0, false), Some(3));
        assert_eq!(s.tick(10_000, 0, false), None);
        assert_eq!(s.tick(11_000, 0, false), Some(2));
        assert_eq!(s.tick(12_000, 0, false), None);
        assert_eq!(s.tick(13_000, 0, false), None);
        assert_eq!(
            s.timeline()
                .iter()
                .map(|e| (e.at_us, e.from, e.to))
                .collect::<Vec<_>>(),
            vec![(2000, 2, 3), (5000, 3, 4), (9000, 4, 3), (11_000, 3, 2)]
        );
    }

    #[test]
    fn fixed_scaler_never_moves() {
        let cfg = ScalerConfig::fixed(3);
        cfg.validate().unwrap();
        let mut s = Autoscaler::new(cfg);
        for t in 0..100u64 {
            assert_eq!(s.tick(t, t * 1_000_000, false), None);
        }
        assert_eq!(s.active(), 3);
        assert!(s.into_timeline().is_empty());
    }
}
