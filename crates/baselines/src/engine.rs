//! A generalized baseline execution engine.
//!
//! Every comparator system in the paper's evaluation is, mechanically, a
//! combination of a few architectural choices. This engine implements
//! those choices as explicit knobs; each baseline is a [`Profile`]:
//!
//! | knob | OpenWhisk+MinIO+K8s | Ray (blocking) | Ray (CPS) | Pheromone | Faasm |
//! |---|---|---|---|---|---|
//! | placement | random (K8s) | data-aware | data-aware | data-aware (collocate) | random |
//! | binding | early (claim, then fetch) | early (blocks in `ray.get`) | late | early for external data | early |
//! | dispatch | controller | driver round trip | driver round trip | shipped workflow | controller |
//! | input source | MinIO (central) | object locations | object locations | buckets (central for external) | local store |
//! | outputs | MinIO (central) | local | local | collocated | local |
//! | per-invocation cost | 30.7 ms | 1.29 ms | 1.29 ms | 35 µs–1.05 ms | 10.6 ms |
//!
//! The per-invocation costs are the paper's own measurements (see
//! [`crate::CostModel`]); the mechanisms above produce the *shapes* of
//! Figs. 7b, 8a, 8b, 9, and 10.

use fix_cluster::{Binding, ClusterSetup, JobGraph, ObjectId, Placement, RunReport, TaskId};
use fix_netsim::{ClaimId, CoreState, NodeId, Sim, Time};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::cell::RefCell;
use std::collections::{HashMap, HashSet, VecDeque};
use std::rc::Rc;

/// The architectural profile of a baseline system.
#[derive(Debug, Clone)]
pub struct Profile {
    /// Display name (table rows).
    pub name: String,
    /// Placement policy.
    pub placement: Placement,
    /// Resource binding relative to input fetches.
    pub binding: Binding,
    /// System time charged per invocation on the executing node.
    pub invocation_overhead_us: Time,
    /// If set, every task dispatch round-trips through this node (a Ray
    /// driver or a FaaS controller) before starting.
    pub dispatch_via: Option<NodeId>,
    /// If set, every *fetch* first round-trips through this node to
    /// resolve the reference (Ray's ObjectRef owner).
    pub fetch_roundtrip_via: Option<NodeId>,
    /// Fetches happen one at a time while holding resources (blocking
    /// `ray.get` style) instead of in parallel.
    pub sequential_fetches: bool,
    /// If non-empty, initial input objects are read from these store
    /// nodes (a MinIO deployment spread over the cluster), regardless of
    /// where the bytes physically started; each object hashes to one
    /// store node.
    pub inputs_from_store: Vec<NodeId>,
    /// If non-empty, task outputs are written to the store, and
    /// dependents read them from there.
    pub outputs_to_store: Vec<NodeId>,
    /// Service time the driver/controller spends per dispatch; dispatches
    /// are serialized through it (a single Ray driver launches tasks one
    /// at a time).
    pub dispatch_service_us: Time,
    /// Per store GET/PUT request overhead.
    pub store_request_us: Time,
    /// Extra cost the first time a function runs on a node (container
    /// start, binary load).
    pub cold_start_us: Time,
    /// Bytes pulled from the central store (or the first input location)
    /// on each cold start (function image / executable).
    pub cold_start_bytes: u64,
    /// RNG seed.
    pub seed: u64,
}

struct State {
    graph: JobGraph,
    profile: Profile,
    workers: Vec<NodeId>,
    client: Option<NodeId>,
    /// Virtual time at which the driver frees up (dispatch pipelining).
    driver_free_at: Time,
    locations: Vec<Vec<NodeId>>,
    remaining_deps: Vec<usize>,
    dependents: Vec<Vec<TaskId>>,
    runnable: HashMap<NodeId, VecDeque<TaskId>>,
    /// Assigned-but-unfinished tasks per node (placement load signal).
    assigned_load: HashMap<NodeId, usize>,
    warm: HashSet<(u32, NodeId)>,
    finished: usize,
    finish_time: Time,
    bytes_moved: u64,
    rng: StdRng,
}

type Shared = Rc<RefCell<State>>;

impl State {
    /// Initial objects are bucket data when `inputs_from_store` is set:
    /// the system cannot express a dependency on them (Pheromone) or has
    /// no shared local cache (OpenWhisk actions, Popen'd executables), so
    /// every invocation GETs them from the store.
    fn is_store_input(&self, o: ObjectId) -> bool {
        !self.profile.inputs_from_store.is_empty()
            && !self.graph.object(o).initial_locations.is_empty()
    }

    /// The store node an object hashes to.
    fn store_node(nodes: &[NodeId], o: ObjectId) -> NodeId {
        nodes[(o.0 as usize) % nodes.len()]
    }

    fn object_at(&self, o: ObjectId, n: NodeId) -> bool {
        if self.is_store_input(o) {
            // Bucket data is behind the store service: the function always
            // issues a GET, and the scheduler cannot see where the bytes
            // physically live (Pheromone §5.3.2, OpenWhisk §5.1).
            return false;
        }
        self.locations[o.0 as usize].contains(&n)
    }

    fn needed_objects(&self, t: TaskId) -> Vec<ObjectId> {
        let spec = self.graph.task(t);
        let mut v = spec.inputs.clone();
        v.extend(spec.deps.iter().map(|d| self.graph.output_of(*d)));
        v
    }

    fn source_of(&self, o: ObjectId) -> NodeId {
        if self.is_store_input(o) {
            return Self::store_node(&self.profile.inputs_from_store, o);
        }
        *self.locations[o.0 as usize]
            .first()
            .expect("object has a source")
    }

    fn missing_bytes(&self, t: TaskId, n: NodeId) -> u64 {
        self.needed_objects(t)
            .iter()
            .filter(|o| !self.object_at(**o, n))
            .map(|o| self.graph.object(*o).size)
            .sum()
    }

    fn choose_node(&mut self, t: TaskId) -> NodeId {
        match self.profile.placement {
            Placement::Random => {
                let i = self.rng.gen_range(0..self.workers.len());
                self.workers[i]
            }
            Placement::Locality => {
                let mut best: Option<(u64, usize, NodeId)> = None;
                for &n in &self.workers {
                    let cost = self.missing_bytes(t, n);
                    let load = self.assigned_load.get(&n).copied().unwrap_or(0);
                    match best {
                        Some((bc, bl, _)) if (cost, load) >= (bc, bl) => {}
                        _ => best = Some((cost, load, n)),
                    }
                }
                best.expect("at least one worker").2
            }
        }
    }
}

/// Runs `graph` under a baseline [`Profile`] on the simulated cluster.
pub fn run_baseline(setup: &ClusterSetup, graph: &JobGraph, profile: &Profile) -> RunReport {
    graph.validate().expect("valid job graph");
    let mut sim = Sim::new(&setup.specs, setup.net.clone());

    let n = graph.tasks.len();
    let mut dependents = vec![Vec::new(); n];
    let mut remaining = vec![0usize; n];
    for (i, t) in graph.tasks.iter().enumerate() {
        remaining[i] = t.deps.len();
        for d in &t.deps {
            dependents[d.0 as usize].push(TaskId(i as u64));
        }
    }
    let state: Shared = Rc::new(RefCell::new(State {
        graph: graph.clone(),
        profile: profile.clone(),
        workers: setup.workers.clone(),
        client: setup.client,
        driver_free_at: 0,
        locations: graph
            .objects
            .iter()
            .map(|o| o.initial_locations.clone())
            .collect(),
        remaining_deps: remaining,
        dependents,
        runnable: HashMap::new(),
        assigned_load: HashMap::new(),
        warm: HashSet::new(),
        finished: 0,
        finish_time: 0,
        bytes_moved: 0,
        rng: StdRng::seed_from_u64(profile.seed),
    }));

    let ready: Vec<TaskId> = (0..n)
        .filter(|i| state.borrow().remaining_deps[*i] == 0)
        .map(|i| TaskId(i as u64))
        .collect();
    let origin = setup.client.unwrap_or(setup.workers[0]);
    let st = Rc::clone(&state);
    sim.schedule(0, move |sim| {
        for t in ready {
            dispatch_task(sim, &st, t, origin);
        }
    });

    sim.run();
    let st = state.borrow();
    assert_eq!(
        st.finished, n,
        "baseline '{}' stalled: {}/{} tasks finished",
        profile.name, st.finished, n
    );
    RunReport {
        makespan_us: st.finish_time,
        cpu: sim.cpu_report(&setup.workers),
        bytes_moved: st.bytes_moved,
        tasks_run: n as u64,
    }
}

/// Routes a ready task through the dispatch path, then places it.
fn dispatch_task(sim: &mut Sim, state: &Shared, t: TaskId, origin: NodeId) {
    let (node, via) = {
        let mut st = state.borrow_mut();
        let node = st.choose_node(t);
        (node, st.profile.dispatch_via)
    };
    match via {
        Some(driver) => {
            // origin -> driver (completion notification / submission),
            // queueing at the single-threaded driver, then
            // driver -> worker (task dispatch).
            let arrive = sim.now() + sim.net().latency(origin, driver);
            let (service, depart) = {
                let mut st = state.borrow_mut();
                let service = st.profile.dispatch_service_us;
                let start = st.driver_free_at.max(arrive);
                st.driver_free_at = start + service;
                (service, start + service)
            };
            let _ = service;
            let delay = (depart - sim.now()) + sim.net().latency(driver, node);
            let s2 = Rc::clone(state);
            sim.schedule(delay, move |sim| enqueue(sim, &s2, t, node));
        }
        None => enqueue(sim, state, t, node),
    }
}

fn enqueue(sim: &mut Sim, state: &Shared, t: TaskId, node: NodeId) {
    {
        let mut st = state.borrow_mut();
        *st.assigned_load.entry(node).or_insert(0) += 1;
        st.runnable.entry(node).or_default().push_back(t);
    }
    pump(sim, state, node);
}

fn pump(sim: &mut Sim, state: &Shared, node: NodeId) {
    loop {
        let (t, cores, ram, binding) = {
            let st = state.borrow();
            let Some(&t) = st.runnable.get(&node).and_then(|q| q.front()) else {
                return;
            };
            let spec = st.graph.task(t);
            (t, spec.cores, spec.ram, st.profile.binding)
        };
        match binding {
            Binding::Early => {
                let Some(claim) = sim.try_claim(node, cores, ram, CoreState::Waiting) else {
                    return;
                };
                state
                    .borrow_mut()
                    .runnable
                    .get_mut(&node)
                    .expect("queue")
                    .pop_front();
                cold_start_then(sim, state, t, node, claim);
            }
            Binding::Late => {
                // Fetch before claiming (fetches need no cores).
                state
                    .borrow_mut()
                    .runnable
                    .get_mut(&node)
                    .expect("queue")
                    .pop_front();
                fetch_inputs(sim, state, t, node, move |sim, state| {
                    claim_and_run(sim, state, t, node);
                });
            }
        }
    }
}

/// Early binding: container/binary cold start while holding the claim.
fn cold_start_then(sim: &mut Sim, state: &Shared, t: TaskId, node: NodeId, claim: ClaimId) {
    let (cold_us, cold_bytes, store) = {
        let mut st = state.borrow_mut();
        let func = st.graph.task(t).func;
        let store = if st.profile.inputs_from_store.is_empty() {
            None
        } else {
            Some(State::store_node(
                &st.profile.inputs_from_store,
                ObjectId(func as u64),
            ))
        };
        if st.warm.insert((func, node)) {
            (st.profile.cold_start_us, st.profile.cold_start_bytes, store)
        } else {
            (0, 0, store)
        }
    };
    let proceed = move |sim: &mut Sim, state: &Shared| {
        fetch_inputs(sim, state, t, node, move |sim, state| {
            begin_run(sim, state, t, node, claim);
        });
    };
    if cold_us == 0 && cold_bytes == 0 {
        proceed(sim, state);
        return;
    }
    // Pull the image/binary, then pay the start cost.
    let src = store.unwrap_or(node);
    state.borrow_mut().bytes_moved += if src == node { 0 } else { cold_bytes };
    let s2 = Rc::clone(state);
    sim.transfer(src, node, cold_bytes, move |sim| {
        let s3 = Rc::clone(&s2);
        sim.schedule(cold_us, move |sim| proceed(sim, &s3));
    });
}

/// Fetches every missing input of `t` to `node`, then calls `done`.
///
/// Respects the profile's fetch mechanics: central store redirection,
/// per-fetch resolution round trips, and sequential (blocking-get)
/// ordering.
fn fetch_inputs(
    sim: &mut Sim,
    state: &Shared,
    t: TaskId,
    node: NodeId,
    done: impl FnOnce(&mut Sim, &Shared) + 'static,
) {
    let missing: Vec<(ObjectId, NodeId, u64)> = {
        let st = state.borrow();
        st.needed_objects(t)
            .into_iter()
            .filter(|o| !st.object_at(*o, node))
            .map(|o| (o, st.source_of(o), st.graph.object(o).size))
            .collect()
    };
    if missing.is_empty() {
        done(sim, state);
        return;
    }
    let sequential = state.borrow().profile.sequential_fetches;
    if sequential {
        fetch_sequentially(sim, state, missing, node, Box::new(done));
    } else {
        // All fetches in flight at once; count down.
        let remaining = Rc::new(RefCell::new(missing.len()));
        let done = Rc::new(RefCell::new(Some(Box::new(done) as DoneBox)));
        for (o, src, size) in missing {
            let remaining = Rc::clone(&remaining);
            let done = Rc::clone(&done);
            let s2 = Rc::clone(state);
            fetch_one(sim, state, o, src, size, node, move |sim| {
                let mut r = remaining.borrow_mut();
                *r -= 1;
                if *r == 0 {
                    if let Some(f) = done.borrow_mut().take() {
                        f(sim, &s2);
                    }
                }
            });
        }
    }
}

type DoneBox = Box<dyn FnOnce(&mut Sim, &Shared)>;

fn fetch_sequentially(
    sim: &mut Sim,
    state: &Shared,
    mut missing: Vec<(ObjectId, NodeId, u64)>,
    node: NodeId,
    done: DoneBox,
) {
    if missing.is_empty() {
        done(sim, state);
        return;
    }
    let (o, src, size) = missing.remove(0);
    let s2 = Rc::clone(state);
    fetch_one(sim, state, o, src, size, node, move |sim| {
        fetch_sequentially(sim, &s2, missing, node, done);
    });
}

/// One fetch: optional resolution round trip, store request overhead,
/// then the data transfer. Updates the location view on arrival.
fn fetch_one(
    sim: &mut Sim,
    state: &Shared,
    o: ObjectId,
    src: NodeId,
    size: u64,
    node: NodeId,
    then: impl FnOnce(&mut Sim) + 'static,
) {
    let (via, store_us) = {
        let st = state.borrow();
        (st.profile.fetch_roundtrip_via, st.profile.store_request_us)
    };
    let resolution_delay = match via {
        Some(owner) => sim.net().latency(node, owner) + sim.net().latency(owner, node),
        None => 0,
    };
    if src != node {
        state.borrow_mut().bytes_moved += size;
    }
    let s2 = Rc::clone(state);
    sim.schedule(resolution_delay + store_us, move |sim| {
        sim.transfer(src, node, size, move |sim| {
            {
                let mut st = s2.borrow_mut();
                // Store inputs are per-invocation GETs: no local reuse.
                if !st.is_store_input(o) {
                    st.locations[o.0 as usize].push(node);
                }
            }
            then(sim);
        });
    });
}

/// Late binding: inputs local, now claim cores.
fn claim_and_run(sim: &mut Sim, state: &Shared, t: TaskId, node: NodeId) {
    let (cores, ram) = {
        let st = state.borrow();
        let spec = st.graph.task(t);
        (spec.cores, spec.ram)
    };
    match sim.try_claim(node, cores, ram, CoreState::System) {
        Some(claim) => begin_run(sim, state, t, node, claim),
        None => {
            // Park at the node until cores free up; pump() won't see this
            // task again, so retry on the next completion at this node.
            let s2 = Rc::clone(state);
            sim.schedule(100, move |sim| claim_and_run(sim, &s2, t, node));
        }
    }
}

fn begin_run(sim: &mut Sim, state: &Shared, t: TaskId, node: NodeId, claim: ClaimId) {
    let (overhead, compute) = {
        let st = state.borrow();
        (
            st.profile.invocation_overhead_us,
            st.graph.task(t).compute_us,
        )
    };
    sim.set_claim_state(claim, CoreState::System);
    let s2 = Rc::clone(state);
    sim.schedule(overhead, move |sim| {
        sim.set_claim_state(claim, CoreState::User);
        let s3 = Rc::clone(&s2);
        sim.schedule(compute, move |sim| {
            sim.release(claim);
            sim.count_task(node);
            write_output(sim, &s3, t, node);
        });
    });
}

/// Materializes the output (locally or via the central store), then
/// wakes dependents.
fn write_output(sim: &mut Sim, state: &Shared, t: TaskId, node: NodeId) {
    let (out, size, store, store_us) = {
        let st = state.borrow();
        let out = st.graph.output_of(t);
        let store = if st.profile.outputs_to_store.is_empty() {
            None
        } else {
            Some(State::store_node(&st.profile.outputs_to_store, out))
        };
        (
            out,
            st.graph.object(out).size,
            store,
            st.profile.store_request_us,
        )
    };
    match store {
        Some(store) if store != node => {
            state.borrow_mut().bytes_moved += size;
            let s2 = Rc::clone(state);
            sim.schedule(store_us, move |sim| {
                sim.transfer(node, store, size, move |sim| {
                    s2.borrow_mut().locations[out.0 as usize].push(store);
                    complete(sim, &s2, t, node);
                });
            });
        }
        _ => {
            state.borrow_mut().locations[out.0 as usize].push(node);
            complete(sim, state, t, node);
        }
    }
}

fn complete(sim: &mut Sim, state: &Shared, t: TaskId, node: NodeId) {
    let (newly_ready, all_done, client, out_size) = {
        let mut st = state.borrow_mut();
        if let Some(load) = st.assigned_load.get_mut(&node) {
            *load = load.saturating_sub(1);
        }
        st.finished += 1;
        let mut ready = Vec::new();
        for &d in st.dependents[t.0 as usize].clone().iter() {
            let r = &mut st.remaining_deps[d.0 as usize];
            *r -= 1;
            if *r == 0 {
                ready.push(d);
            }
        }
        let all_done = st.finished == st.graph.tasks.len();
        let out_size = st.graph.object(st.graph.output_of(t)).size;
        (ready, all_done, st.client, out_size)
    };
    for d in newly_ready {
        dispatch_task(sim, state, d, node);
    }
    if all_done {
        match client {
            Some(client) if client != node => {
                let s2 = Rc::clone(state);
                sim.transfer(node, client, out_size, move |sim| {
                    s2.borrow_mut().finish_time = sim.now();
                });
            }
            _ => state.borrow_mut().finish_time = sim.now(),
        }
    }
    pump(sim, state, node);
}
