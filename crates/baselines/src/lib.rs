//! `fix-baselines`: the comparator systems of the paper's evaluation,
//! as architectural profiles over the shared cluster simulator.
//!
//! We cannot deploy OpenWhisk, Kubernetes, MinIO, Ray, Pheromone, or
//! Faasm here, so each is reproduced as a [`Profile`] — its placement
//! policy, resource-binding order, dispatch path, store usage, and
//! cold-start behavior — executed by one generalized engine
//! ([`run_baseline`]) over the same [`fix_cluster::JobGraph`]s and
//! `fix-netsim` cluster the Fix engine uses. Per-invocation costs are
//! calibrated from the paper's own Fig. 7a measurements
//! ([`CostModel`]); see DESIGN.md for the substitution argument.
//!
//! [`BaselineEvaluator`] puts a profile behind the backend-agnostic
//! `fix_core::api` traits, so any workload written against the One Fix
//! API can be costed under a comparator without modification.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cost;
mod engine;
mod evaluator;
pub mod profiles;

pub use cost::CostModel;
pub use engine::{run_baseline, Profile};
pub use evaluator::{BaselineEvaluator, BaselineEvaluatorBuilder};

#[cfg(test)]
mod tests {
    use super::*;
    use fix_cluster::{
        run_fix, small_task, ClusterSetup, FixConfig, JobGraph, JobGraphBuilder, TaskId,
    };
    use fix_netsim::{NetConfig, NodeId, NodeSpec, MS};

    fn cost() -> CostModel {
        CostModel::default()
    }

    /// 10 workers + node 10 as MinIO store + node 11 as client/driver.
    fn full_setup() -> ClusterSetup {
        ClusterSetup {
            specs: vec![NodeSpec::default(); 12],
            net: NetConfig::default(),
            workers: (0..10).map(NodeId).collect(),
            client: Some(NodeId(11)),
        }
    }

    fn scattered_map(n_chunks: usize, chunk_size: u64, compute_us: u64) -> JobGraph {
        let mut b = JobGraphBuilder::new();
        for i in 0..n_chunks {
            let o = b.object_at(chunk_size, &[NodeId(i % 10)]);
            let mut t = small_task(compute_us, 8);
            t.inputs.push(o);
            b.task(t);
        }
        b.build()
    }

    fn chain(n: usize) -> JobGraph {
        let mut b = JobGraphBuilder::new();
        let mut prev: Option<TaskId> = None;
        for _ in 0..n {
            let mut t = small_task(1, 8);
            if let Some(p) = prev {
                t.deps.push(p);
            }
            prev = Some(b.task(t));
        }
        b.build()
    }

    #[test]
    fn fig7b_shape_ray_pays_per_step_round_trips() {
        // Remote client 21.3 ms RTT away; 500-step chain.
        let client = NodeId(2);
        let net = NetConfig::default().with_extra_latency(client, 10_650);
        let setup = ClusterSetup {
            specs: vec![NodeSpec::default(); 3],
            net,
            workers: vec![NodeId(0), NodeId(1)],
            client: Some(client),
        };
        let g = chain(500);

        let fix = run_fix(&setup, &g, &FixConfig::default());
        let ray = run_baseline(&setup, &g, &profiles::ray_cps(client, &cost()));
        let pher = run_baseline(&setup, &g, &profiles::pheromone(&[NodeId(1)], &cost()));

        // Ray: ~500 round trips; Fix and Pheromone: ~1.
        assert!(
            ray.makespan_us > 400 * 21_300,
            "ray chain too fast: {} µs",
            ray.makespan_us
        );
        assert!(fix.makespan_us < 100 * MS);
        assert!(pher.makespan_us < 200 * MS);
        assert!(fix.makespan_us < pher.makespan_us);
        assert!(pher.makespan_us < ray.makespan_us);
    }

    #[test]
    fn fig8b_shape_system_ordering() {
        // Scattered 16 MiB chunks, compute-light map tasks.
        let setup = full_setup();
        let store = NodeId(10);
        let g = scattered_map(200, 16 << 20, 10_000);

        let fix = run_fix(&setup, &g, &FixConfig::default());
        let ray_cps = run_baseline(&setup, &g, &profiles::ray_cps(NodeId(11), &cost()));
        let ray_blk = run_baseline(&setup, &g, &profiles::ray_blocking(NodeId(11), &cost()));
        let ow = run_baseline(&setup, &g, &profiles::openwhisk(&[store], &cost()));

        // The paper's ordering: Fix < Ray CPS < Ray blocking < OpenWhisk.
        assert!(
            fix.makespan_us < ray_cps.makespan_us,
            "fix {fix} vs cps {ray_cps}"
        );
        assert!(
            ray_cps.makespan_us < ray_blk.makespan_us,
            "cps {ray_cps} vs blocking {ray_blk}"
        );
        assert!(
            ray_blk.makespan_us < ow.makespan_us,
            "blocking {ray_blk} vs openwhisk {ow}"
        );
        // OpenWhisk starves CPUs: it holds claims during store fetches.
        assert!(ow.cpu.waiting_percent() > fix.cpu.waiting_percent());
        // Fix moves (almost) nothing: chunks are processed in place.
        assert_eq!(fix.bytes_moved, 0);
        assert!(ow.bytes_moved > g.total_input_bytes());
    }

    #[test]
    fn cold_starts_charged_once_per_node() {
        let setup = full_setup();
        let store = NodeId(10);
        // Two waves of the same function on one worker.
        let mut b = JobGraphBuilder::new();
        for _ in 0..4 {
            let o = b.object_at(1 << 20, &[NodeId(0)]);
            let mut t = small_task(1_000, 8);
            t.inputs.push(o);
            t.func = 7;
            b.task(t);
        }
        let g = b.build();
        let mut profile = profiles::openwhisk(&[store], &cost());
        profile.placement = fix_cluster::Placement::Locality; // Pin to node 0.
        let report = run_baseline(&setup, &g, &profile);
        // One cold start (500 ms) + warm invocations (30.7 ms each), not 4.
        assert!(report.makespan_us > 500 * MS);
        assert!(
            report.makespan_us < 2 * 500 * MS,
            "double cold start? {} µs",
            report.makespan_us
        );
    }

    #[test]
    fn generalized_engine_agrees_with_fix_engine() {
        let setup = ClusterSetup {
            specs: vec![NodeSpec::default(); 10],
            net: NetConfig::default(),
            workers: (0..10).map(NodeId).collect(),
            client: None,
        };
        let g = scattered_map(100, 8 << 20, 5_000);
        let fix = run_fix(&setup, &g, &FixConfig::default());
        let generalized = run_baseline(&setup, &g, &profiles::fixpoint_like(&cost()));
        // Same placement and binding rules -> nearly identical makespans.
        let ratio = fix.makespan_us as f64 / generalized.makespan_us as f64;
        assert!(
            (0.8..1.25).contains(&ratio),
            "fix {} vs generalized {}",
            fix.makespan_us,
            generalized.makespan_us
        );
        assert_eq!(generalized.bytes_moved, 0);
    }

    #[test]
    fn pheromone_fetches_external_data_from_buckets() {
        // Even with chunks scattered across workers, Pheromone reads
        // external inputs from bucket storage — so bytes move.
        let setup = full_setup();
        let g = scattered_map(50, 8 << 20, 2_000);
        let report = run_baseline(&setup, &g, &profiles::pheromone(&[NodeId(10)], &cost()));
        assert!(report.bytes_moved >= 50 * (8 << 20));
    }

    #[test]
    fn faasm_isolation_without_externalization_pays_per_invocation() {
        // Many tiny tasks: Faasm's heavier runtime path (10.6 ms vs 2 µs
        // per invocation) dominates; mechanisms are otherwise similar.
        let setup = ClusterSetup {
            specs: vec![NodeSpec::default(); 2],
            net: NetConfig::default(),
            workers: vec![NodeId(0), NodeId(1)],
            client: None,
        };
        let mut b = JobGraphBuilder::new();
        for _ in 0..64 {
            b.task(small_task(10, 8));
        }
        let g = b.build();
        let faasm = run_baseline(&setup, &g, &profiles::faasm(&cost()));
        let fixlike = run_baseline(&setup, &g, &profiles::fixpoint_like(&cost()));
        assert!(
            faasm.makespan_us > 100 * fixlike.makespan_us,
            "faasm {} vs fixpoint-like {}",
            faasm.makespan_us,
            fixlike.makespan_us
        );
    }

    #[test]
    fn ray_minio_distributes_binaries_and_uses_the_store() {
        // Fig. 10's mechanism: executables load per node, inputs come
        // from MinIO — so bytes_moved ≥ inputs + per-node binary copies.
        let setup = full_setup();
        let store = NodeId(10);
        let binary = 256 << 20; // A fat llvm-ish binary.
        let g = scattered_map(40, 4 << 20, 2_000);
        let report = run_baseline(
            &setup,
            &g,
            &profiles::ray_minio(NodeId(11), &[store], binary, &cost()),
        );
        assert!(
            report.bytes_moved >= 40 * (4 << 20) + binary,
            "moved only {} bytes",
            report.bytes_moved
        );
        // Against Fix on the same graph: content-addressed deps move once
        // (and inputs are processed in place).
        let fix = run_fix(&setup, &g, &FixConfig::default());
        assert!(fix.bytes_moved < report.bytes_moved / 10);
    }

    #[test]
    fn outputs_to_store_double_the_movement() {
        // OpenWhisk writes results back to MinIO; with big outputs that
        // is visible in bytes_moved even when inputs are tiny.
        let setup = full_setup();
        let store = NodeId(10);
        let mut b = JobGraphBuilder::new();
        for _ in 0..16 {
            let mut t = small_task(1_000, 32 << 20); // 32 MiB outputs.
            let o = b.object_at(1 << 10, &[store]);
            t.inputs.push(o);
            b.task(t);
        }
        let g = b.build();
        let report = run_baseline(&setup, &g, &profiles::openwhisk(&[store], &cost()));
        assert!(
            report.bytes_moved >= 16 * (32 << 20),
            "outputs not shipped to the store: {} bytes",
            report.bytes_moved
        );
    }

    #[test]
    fn baseline_runs_are_deterministic() {
        let setup = full_setup();
        let g = scattered_map(60, 2 << 20, 1_500);
        let p = profiles::openwhisk(&[NodeId(10)], &cost());
        let a = run_baseline(&setup, &g, &p);
        let b = run_baseline(&setup, &g, &p);
        assert_eq!(a.makespan_us, b.makespan_us);
        assert_eq!(a.bytes_moved, b.bytes_moved);
        assert_eq!(a.cpu.waiting_core_us, b.cpu.waiting_core_us);
    }

    #[test]
    fn driver_distance_scales_ray_chains_linearly() {
        // The dispatch round trip is per invocation: moving the driver
        // 10× farther stretches a chain by ≈ the extra RTTs.
        let near_rtt_half = 1_000u64;
        let far_rtt_half = 10_000u64;
        let run_at = |rtt_half: u64| {
            let client = NodeId(2);
            let net = NetConfig::default().with_extra_latency(client, rtt_half);
            let setup = ClusterSetup {
                specs: vec![NodeSpec::default(); 3],
                net,
                workers: vec![NodeId(0), NodeId(1)],
                client: Some(client),
            };
            run_baseline(&setup, &chain(100), &profiles::ray_cps(client, &cost())).makespan_us
        };
        let near = run_at(near_rtt_half);
        let far = run_at(far_rtt_half);
        let extra = far.saturating_sub(near);
        let expect = 100 * 2 * (far_rtt_half - near_rtt_half);
        let ratio = extra as f64 / expect as f64;
        assert!(
            (0.8..1.2).contains(&ratio),
            "extra {extra} µs vs expected {expect} µs"
        );
    }

    #[test]
    fn blocking_gets_hold_cores() {
        // One task with 8 inputs on another node, fetched sequentially
        // while holding the claim: waiting time ≈ 8 × transfer time.
        let setup = ClusterSetup {
            specs: vec![NodeSpec::default(); 2],
            net: NetConfig::default(),
            workers: vec![NodeId(0)],
            client: None,
        };
        let mut b = JobGraphBuilder::new();
        let mut t = small_task(1_000, 8);
        for _ in 0..8 {
            let o = b.object_at(125_000_000, &[NodeId(1)]); // 0.1 s each
            t.inputs.push(o);
        }
        b.task(t);
        let g = b.build();
        let report = run_baseline(&setup, &g, &profiles::ray_blocking(NodeId(1), &cost()));
        assert!(
            report.cpu.waiting_core_us >= 700 * MS,
            "waited {} core-µs",
            report.cpu.waiting_core_us
        );
    }
}
