//! Named baseline profiles, one per comparator system in the paper.

use crate::cost::CostModel;
use crate::engine::Profile;
use fix_cluster::{Binding, Placement};
use fix_netsim::NodeId;

/// OpenWhisk + MinIO + Kubernetes (paper §5.1).
///
/// Kubernetes places containers without data awareness; the function
/// claims its slice, *then* pulls inputs from MinIO and writes outputs
/// back; containers cold-start per (action, node).
pub fn openwhisk(store: &[NodeId], cost: &CostModel) -> Profile {
    Profile {
        name: "OpenWhisk + MinIO + K8s".into(),
        placement: Placement::Random,
        binding: Binding::Early,
        invocation_overhead_us: cost.openwhisk_invocation_us,
        dispatch_via: None,
        fetch_roundtrip_via: None,
        sequential_fetches: false,
        inputs_from_store: store.to_vec(),
        outputs_to_store: store.to_vec(),
        store_request_us: cost.store_request_us,
        cold_start_us: cost.openwhisk_cold_start_us,
        cold_start_bytes: 64 << 20, // Container image layers.
        dispatch_service_us: 0,
        seed: 42,
    }
}

/// Ray, blocking-style I/O (paper Listing 2).
///
/// The function is placed before its `ray.get`s reveal what it needs, so
/// placement is effectively blind; it blocks its worker slot during each
/// sequential get, and every get resolves through the driver.
pub fn ray_blocking(driver: NodeId, cost: &CostModel) -> Profile {
    Profile {
        name: "Ray (blocking)".into(),
        placement: Placement::Random,
        binding: Binding::Early,
        invocation_overhead_us: cost.ray_invocation_us,
        dispatch_via: Some(driver),
        fetch_roundtrip_via: Some(driver),
        sequential_fetches: true,
        inputs_from_store: Vec::new(),
        outputs_to_store: Vec::new(),
        store_request_us: 0,
        cold_start_us: 0,
        cold_start_bytes: 0,
        dispatch_service_us: cost.ray_invocation_us,
        seed: 42,
    }
}

/// Ray, continuation-passing-style I/O (paper Listing 3).
///
/// Dependencies are visible per invocation, so Ray places each new
/// invocation with locality and never blocks a worker — but every
/// invocation pays the driver round trip and Ray's per-call overhead.
pub fn ray_cps(driver: NodeId, cost: &CostModel) -> Profile {
    Profile {
        name: "Ray (continuation-passing)".into(),
        placement: Placement::Locality,
        binding: Binding::Late,
        invocation_overhead_us: cost.ray_invocation_us,
        dispatch_via: Some(driver),
        fetch_roundtrip_via: None,
        sequential_fetches: false,
        inputs_from_store: Vec::new(),
        outputs_to_store: Vec::new(),
        store_request_us: 0,
        cold_start_us: 0,
        cold_start_bytes: 0,
        dispatch_service_us: cost.ray_invocation_us,
        seed: 42,
    }
}

/// Ray + MinIO (paper §5.5): Linux executables launched via `Popen`,
/// reading inputs from and writing outputs to MinIO; executables are
/// loaded onto a node on first use.
pub fn ray_minio(driver: NodeId, store: &[NodeId], binary_bytes: u64, cost: &CostModel) -> Profile {
    Profile {
        name: "Ray + MinIO".into(),
        placement: Placement::Random,
        binding: Binding::Early,
        invocation_overhead_us: cost.ray_invocation_us + cost.linux_process_us,
        dispatch_via: Some(driver),
        fetch_roundtrip_via: None,
        sequential_fetches: false,
        inputs_from_store: store.to_vec(),
        outputs_to_store: store.to_vec(),
        store_request_us: cost.store_request_us,
        cold_start_us: cost.linux_process_us,
        cold_start_bytes: binary_bytes,
        dispatch_service_us: cost.ray_invocation_us,
        seed: 42,
    }
}

/// Pheromone (paper §5.1): workflow shipped once (no per-step driver
/// round trips), intermediate data collocated with consumers, but
/// dependencies on *external* (non-intermediate) data are inexpressible —
/// functions fetch them from bucket storage after starting.
pub fn pheromone(bucket_store: &[NodeId], cost: &CostModel) -> Profile {
    Profile {
        name: "Pheromone + MinIO".into(),
        placement: Placement::Locality,
        binding: Binding::Early,
        invocation_overhead_us: cost.pheromone_step_us,
        dispatch_via: None,
        fetch_roundtrip_via: None,
        sequential_fetches: false,
        inputs_from_store: bucket_store.to_vec(),
        outputs_to_store: Vec::new(),
        store_request_us: cost.store_request_us,
        cold_start_us: cost.pheromone_invocation_us,
        cold_start_bytes: 0,
        dispatch_service_us: 0,
        seed: 42,
    }
}

/// Faasm (paper §5.1): Wasm-based isolation like Fixpoint, but with a
/// general host interface instead of externalized I/O — functions fetch
/// their own state after starting, and the runtime path is heavier.
pub fn faasm(cost: &CostModel) -> Profile {
    Profile {
        name: "Faasm".into(),
        placement: Placement::Random,
        binding: Binding::Early,
        invocation_overhead_us: cost.faasm_invocation_us,
        dispatch_via: None,
        fetch_roundtrip_via: None,
        sequential_fetches: false,
        inputs_from_store: Vec::new(),
        outputs_to_store: Vec::new(),
        store_request_us: 0,
        cold_start_us: 0,
        cold_start_bytes: 0,
        dispatch_service_us: 0,
        seed: 42,
    }
}

/// A Fixpoint-shaped profile for cross-validating the generalized engine
/// against `fix_cluster::run_fix` (they should broadly agree).
pub fn fixpoint_like(cost: &CostModel) -> Profile {
    Profile {
        name: "Fixpoint (generalized engine)".into(),
        placement: Placement::Locality,
        binding: Binding::Late,
        invocation_overhead_us: cost.fixpoint_invocation_us,
        dispatch_via: None,
        fetch_roundtrip_via: None,
        sequential_fetches: false,
        inputs_from_store: Vec::new(),
        outputs_to_store: Vec::new(),
        store_request_us: 0,
        cold_start_us: 0,
        cold_start_bytes: 0,
        dispatch_service_us: 0,
        seed: 42,
    }
}
