//! [`BaselineEvaluator`]: a comparator system behind the One Fix API.
//!
//! The third implementation of the `fix_core::api` trait family: the
//! same workload that runs on `fixpoint::Runtime` (for real) and
//! `fix_cluster::ClusterClient` (Fix engine over netsim) runs here under
//! a baseline [`Profile`] — OpenWhisk, Ray, Pheromone, Faasm — so every
//! generic workload is automatically a cost-model row for every
//! comparator. Results stay bit-identical (semantics come from the
//! embedded Fix node); what differs is the [`RunReport`] each request
//! accumulates: dispatch round trips, store GET/PUTs, cold starts, and
//! early-binding stalls, per the profile.

use crate::engine::{run_baseline, Profile};
use fix_cluster::{ClientCore, ClusterSetup, JobGraph, RunReport};
use fix_core::api::{Evaluator, InvocationApi, NativeFn, ObjectApi};
use fix_core::data::{Blob, Tree};
use fix_core::error::{Error, Result};
use fix_core::handle::Handle;
use fix_core::semantics::Footprint;
use fix_netsim::Time;
use fixpoint::Runtime;

/// A Fix client whose evaluations are costed under a baseline profile.
///
/// # Examples
///
/// ```
/// use fix_baselines::{profiles, BaselineEvaluator, CostModel};
/// use fix_core::api::{Evaluator, InvocationApi, ObjectApi};
/// use fix_core::data::Blob;
/// use fix_core::limits::ResourceLimits;
/// use fix_netsim::NodeId;
/// use std::sync::Arc;
///
/// let profile = profiles::ray_cps(NodeId(9), &CostModel::default());
/// let rb = BaselineEvaluator::builder().profile(profile).build().unwrap();
/// let double = rb.register_native("double", Arc::new(|ctx| {
///     let x = ctx.arg_blob(0)?.as_u64().unwrap();
///     ctx.host.create_blob((2 * x).to_le_bytes().to_vec())
/// }));
/// let thunk = rb.apply(
///     ResourceLimits::default_limits(),
///     double,
///     &[rb.put_blob(Blob::from_u64(21))],
/// ).unwrap();
/// assert_eq!(rb.get_u64(rb.eval(thunk).unwrap()).unwrap(), 42);
/// assert!(rb.last_report().unwrap().makespan_us > 0);
/// ```
pub struct BaselineEvaluator {
    core: ClientCore,
    profile: Profile,
}

/// Configures a [`BaselineEvaluator`].
pub struct BaselineEvaluatorBuilder {
    setup: ClusterSetup,
    profile: Option<Profile>,
    task_compute_us: Time,
}

impl Default for BaselineEvaluatorBuilder {
    fn default() -> Self {
        BaselineEvaluatorBuilder {
            setup: ClusterSetup::workers_only(
                10,
                fix_netsim::NodeSpec::default(),
                fix_netsim::NetConfig::default(),
            ),
            profile: None,
            task_compute_us: fix_core::calibration::SERVICE_COSTS.task_compute_us,
        }
    }
}

impl BaselineEvaluatorBuilder {
    /// The simulated cluster to cost against (default: ten homogeneous
    /// workers).
    pub fn setup(mut self, setup: ClusterSetup) -> Self {
        self.setup = setup;
        self
    }

    /// The baseline profile to run under (required; see
    /// [`crate::profiles`]).
    pub fn profile(mut self, profile: Profile) -> Self {
        self.profile = Some(profile);
        self
    }

    /// Modeled compute time per simulated task, in µs (default: the
    /// shared [`fix_core::calibration::SERVICE_COSTS`] flat charge).
    pub fn task_compute_us(mut self, us: Time) -> Self {
        self.task_compute_us = us;
        self
    }

    /// Builds the evaluator.
    pub fn build(self) -> Result<BaselineEvaluator> {
        let profile = self.profile.ok_or(Error::Backend {
            backend: "baseline",
            message: "no profile configured (see fix_baselines::profiles)".into(),
        })?;
        Ok(BaselineEvaluator {
            core: ClientCore::new("baseline", self.setup, self.task_compute_us, false)?,
            profile,
        })
    }
}

impl BaselineEvaluator {
    /// Starts building a baseline evaluator.
    pub fn builder() -> BaselineEvaluatorBuilder {
        BaselineEvaluatorBuilder::default()
    }

    /// The profile this evaluator costs against.
    pub fn profile(&self) -> &Profile {
        &self.profile
    }

    /// The embedded Fix node.
    pub fn inner(&self) -> &Runtime {
        self.core.inner()
    }

    /// Reports of every simulated run so far, in submission order.
    pub fn reports(&self) -> Vec<RunReport> {
        self.core.reports()
    }

    /// The most recent simulated run, if any.
    pub fn last_report(&self) -> Option<RunReport> {
        self.core.last_report()
    }

    /// The baseline engine under this profile, as a graph runner.
    fn runner(&self) -> impl Fn(&ClusterSetup, &JobGraph) -> RunReport + '_ {
        |setup, graph| run_baseline(setup, graph, &self.profile)
    }
}

impl ObjectApi for BaselineEvaluator {
    fn put_blob(&self, blob: Blob) -> Handle {
        self.inner().put_blob(blob)
    }

    fn put_tree(&self, tree: Tree) -> Handle {
        self.inner().put_tree(tree)
    }

    fn get_blob(&self, handle: Handle) -> Result<Blob> {
        self.inner().get_blob(handle)
    }

    fn get_tree(&self, handle: Handle) -> Result<Tree> {
        self.inner().get_tree(handle)
    }

    fn contains(&self, handle: Handle) -> bool {
        self.inner().store().contains(handle)
    }
}

impl InvocationApi for BaselineEvaluator {
    fn register_native(&self, name: &str, f: NativeFn) -> Handle {
        self.inner().register_native(name, f)
    }
}

impl Evaluator for BaselineEvaluator {
    fn eval(&self, handle: Handle) -> Result<Handle> {
        self.core.eval_with(handle, &self.runner())
    }

    fn eval_strict(&self, handle: Handle) -> Result<Handle> {
        self.core.eval_strict_with(handle, &self.runner())
    }

    fn eval_many(&self, handles: &[Handle]) -> Vec<Result<Handle>> {
        self.core.eval_many_with(handles, &self.runner())
    }

    fn footprint(&self, thunk: Handle) -> Result<Footprint> {
        self.inner().footprint(thunk)
    }

    fn procedures_run(&self) -> u64 {
        self.inner().procedures_run()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profiles;
    use crate::CostModel;
    use fix_core::limits::ResourceLimits;
    use fix_netsim::NodeId;
    use std::sync::Arc;

    fn add_thunk(rb: &BaselineEvaluator, a: u64, b: u64) -> Handle {
        let add = rb.register_native(
            "add",
            Arc::new(|ctx| {
                let a = ctx.arg_blob(0)?.as_u64().unwrap();
                let b = ctx.arg_blob(1)?.as_u64().unwrap();
                ctx.host
                    .create_blob(a.wrapping_add(b).to_le_bytes().to_vec())
            }),
        );
        rb.apply(
            ResourceLimits::default_limits(),
            add,
            &[
                rb.put_blob(Blob::from_u64(a)),
                rb.put_blob(Blob::from_u64(b)),
            ],
        )
        .unwrap()
    }

    #[test]
    fn requires_a_profile() {
        assert!(matches!(
            BaselineEvaluator::builder().build(),
            Err(Error::Backend { .. })
        ));
    }

    #[test]
    fn costs_under_the_profile_and_agrees_on_results() {
        let rb = BaselineEvaluator::builder()
            .profile(profiles::openwhisk(&[NodeId(0)], &CostModel::default()))
            .build()
            .unwrap();
        let t = add_thunk(&rb, 40, 2);
        let out = rb.eval(t).unwrap();
        assert_eq!(rb.get_u64(out).unwrap(), 42);
        let report = rb.last_report().unwrap();
        assert_eq!(report.tasks_run, 1);
        // OpenWhisk's 30.7 ms per-invocation overhead dominates.
        assert!(report.makespan_us > 10_000, "{}", report.makespan_us);
    }

    #[test]
    fn slower_profiles_cost_more_than_the_fix_engine() {
        let cc = fix_cluster::ClusterClient::builder().build().unwrap();
        let t_fix = {
            let add = cc.register_native(
                "add",
                Arc::new(|ctx| {
                    let a = ctx.arg_blob(0)?.as_u64().unwrap();
                    let b = ctx.arg_blob(1)?.as_u64().unwrap();
                    ctx.host
                        .create_blob(a.wrapping_add(b).to_le_bytes().to_vec())
                }),
            );
            let t = cc
                .apply(
                    ResourceLimits::default_limits(),
                    add,
                    &[
                        cc.put_blob(Blob::from_u64(1)),
                        cc.put_blob(Blob::from_u64(2)),
                    ],
                )
                .unwrap();
            cc.eval(t).unwrap();
            cc.last_report().unwrap().makespan_us
        };
        let rb = BaselineEvaluator::builder()
            .profile(profiles::ray_blocking(NodeId(9), &CostModel::default()))
            .build()
            .unwrap();
        let t = add_thunk(&rb, 1, 2);
        rb.eval(t).unwrap();
        let t_ray = rb.last_report().unwrap().makespan_us;
        assert!(
            t_ray > t_fix,
            "ray (blocking) {t_ray} µs should exceed fix {t_fix} µs"
        );
    }

    /// The request-scoped submission path over a baseline profile:
    /// `BlockingOffload` lifts the evaluator onto `SubmitApi`, and the
    /// options — strict mode, priorities, deadlines — behave exactly as
    /// on every other backend (the cross-backend agreement itself is
    /// pinned by tests/api_conformance.rs).
    #[test]
    fn offloaded_submission_honors_request_options() {
        use fix_core::api::{BlockingOffload, Priority, SubmitApi, SubmitOptions};

        let rb = BaselineEvaluator::builder()
            .profile(profiles::openwhisk(
                &(0..4).map(NodeId).collect::<Vec<_>>(),
                &CostModel::default(),
            ))
            .build()
            .unwrap();
        let off = BlockingOffload::new(rb);
        let t1 = add_thunk(off.inner(), 40, 2);
        let t2 = add_thunk(off.inner(), 1, 2);

        // Strict, latency-class submission agrees with eval_strict.
        let opts = SubmitOptions::strict().with_priority(Priority::Latency);
        let results = off.wait_batch(off.submit_with(&[t1, t2], opts));
        assert_eq!(*results[0].as_ref().unwrap(), off.eval_strict(t1).unwrap());
        assert_eq!(off.get_u64(*results[1].as_ref().unwrap()).unwrap(), 3);

        // A deadline the virtual clock has passed expires the batch
        // before the (costly) baseline simulation ever runs.
        off.advance_virtual_clock(10);
        let expired = off.wait_batch(off.submit_with(
            &[add_thunk(off.inner(), 5, 5)],
            SubmitOptions::default().with_deadline(3),
        ));
        assert!(matches!(
            expired[0],
            Err(fix_core::Error::DeadlineExceeded { deadline_us: 3 })
        ));
    }
}
