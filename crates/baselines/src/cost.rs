//! Calibration constants for systems we cannot run.
//!
//! The paper's baselines are real deployments (OpenWhisk on Kubernetes
//! with MinIO, Ray, Pheromone, Faasm). This reproduction cannot run those
//! stacks, so their *per-operation costs* are taken from the paper's own
//! measurements (Fig. 7a per-invocation overheads; Fig. 7b orchestration
//! per-step costs) and their *mechanisms* (who talks to whom, what moves
//! where, when resources are held) are implemented in
//! [`crate::engine`]. Absolute numbers are therefore paper-calibrated;
//! the shapes come from the mechanisms.

use fix_netsim::Time;

/// Per-system cost constants, in µs of virtual time.
#[derive(Debug, Clone)]
pub struct CostModel {
    /// Fixpoint per-invocation overhead (paper: 1.46 µs; we charge 2).
    pub fixpoint_invocation_us: Time,
    /// `vfork`+`exec` of a Linux process (paper: 449 µs).
    pub linux_process_us: Time,
    /// Pheromone per-invocation overhead (paper Fig. 7a: 1.05 ms).
    pub pheromone_invocation_us: Time,
    /// Pheromone per-step orchestration cost inside a shipped workflow
    /// (derived from Fig. 7b: 17.6 ms / 500 steps ≈ 35 µs).
    pub pheromone_step_us: Time,
    /// Ray per-invocation overhead (paper Fig. 7a: 1.29 ms).
    pub ray_invocation_us: Time,
    /// Faasm per-invocation overhead (paper Fig. 7a: 10.6 ms).
    pub faasm_invocation_us: Time,
    /// OpenWhisk warm per-invocation overhead (paper Fig. 7a: 30.7 ms).
    pub openwhisk_invocation_us: Time,
    /// OpenWhisk/K8s container cold start (not measured in the paper;
    /// 500 ms is a conservative, documented assumption).
    pub openwhisk_cold_start_us: Time,
    /// Per-request overhead of a MinIO-style object store (documented
    /// assumption: 1 ms per GET/PUT).
    pub store_request_us: Time,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            fixpoint_invocation_us: 2,
            linux_process_us: 449,
            pheromone_invocation_us: 1_050,
            pheromone_step_us: 35,
            ray_invocation_us: 1_290,
            faasm_invocation_us: 10_600,
            openwhisk_invocation_us: 30_700,
            openwhisk_cold_start_us: 500_000,
            store_request_us: 1_000,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_track_paper_fig7a() {
        let c = CostModel::default();
        // Relative factors the paper headlines (within rounding).
        assert!(c.ray_invocation_us / c.fixpoint_invocation_us >= 500);
        assert!(c.openwhisk_invocation_us / c.fixpoint_invocation_us >= 10_000);
        assert!(c.faasm_invocation_us > c.ray_invocation_us);
        assert!(c.pheromone_invocation_us < c.ray_invocation_us);
    }
}
