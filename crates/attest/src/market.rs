//! The compute marketplace: bidding, double-checking, arbitration, and
//! wrong-answer insurance (paper §6).
//!
//! "Because computations will have a single, unambiguous result,
//! providers could sign statements with their answers … and customers
//! could bid out jobs to any provider that carries acceptable
//! 'wrong answer' insurance and double-check answers if and when they
//! choose."
//!
//! The flow implemented here:
//!
//! 1. the customer ships a self-contained job parcel;
//! 2. providers are ranked by ask; the cheapest `n` (per the checking
//!    policy) each answer with a signed [`Attestation`];
//! 3. statements with bad signatures are discarded; the rest vote by
//!    result Handle — equality is the whole comparison, thanks to
//!    content addressing;
//! 4. on disagreement, the dispute escalates to every remaining
//!    provider, the majority answer wins, and each dissenting provider
//!    owes the policy's payout.

use crate::registry::KeyRegistry;
use crate::statement::{Attestation, ProviderId};
use crate::Provider;
use fix_billing::Money;
use fix_core::error::{Error, Result};
use fix_core::handle::Handle;
use std::collections::HashMap;

/// How much verification the customer buys.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CheckPolicy {
    /// Trust the cheapest provider outright.
    TrustCheapest,
    /// Ask the `n` cheapest providers and require agreement.
    Replicate(usize),
}

/// The published insurance terms every participating provider carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InsurancePolicy {
    /// What a provider pays the customer per wrong answer.
    pub payout_per_wrong_answer: Money,
}

impl Default for InsurancePolicy {
    fn default() -> Self {
        InsurancePolicy {
            payout_per_wrong_answer: Money::from_dollars(10),
        }
    }
}

/// A settled insurance claim.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Claim {
    /// The provider that signed a losing answer.
    pub provider: ProviderId,
    /// The job it answered wrongly.
    pub thunk: Handle,
    /// The payout owed.
    pub payout: Money,
}

/// The outcome of one job submission.
#[derive(Debug, Clone)]
pub struct JobOutcome {
    /// The winning result handle.
    pub result: Handle,
    /// Every *valid* attestation gathered (winners and losers).
    pub attestations: Vec<Attestation>,
    /// Total the customer paid in asks.
    pub paid: Money,
    /// Whether arbitration was needed.
    pub disputed: bool,
    /// Claims settled against wrong-answering providers.
    pub claims: Vec<Claim>,
}

/// A marketplace over a set of providers.
pub struct Marketplace {
    providers: Vec<Provider>,
    registry: KeyRegistry,
    policy: InsurancePolicy,
    claims: Vec<Claim>,
}

impl Marketplace {
    /// Opens a marketplace; registers every provider's verification key.
    pub fn new(providers: Vec<Provider>, policy: InsurancePolicy) -> Marketplace {
        let registry = KeyRegistry::new();
        for p in &providers {
            registry.register(p.id().clone(), p.verification_key());
        }
        Marketplace {
            providers,
            registry,
            policy,
            claims: Vec::new(),
        }
    }

    /// The public key registry (what customers verify against).
    pub fn registry(&self) -> &KeyRegistry {
        &self.registry
    }

    /// All claims settled so far.
    pub fn claims(&self) -> &[Claim] {
        &self.claims
    }

    /// Indices of providers sorted by ask (cheapest first; stable for
    /// equal asks so outcomes are deterministic).
    fn ranked(&self) -> Vec<usize> {
        let mut idx: Vec<usize> = (0..self.providers.len()).collect();
        idx.sort_by_key(|&i| (self.providers[i].ask(), i));
        idx
    }

    /// Gathers verified attestations from the given providers; invalid
    /// signatures are dropped (and would void that provider's answer).
    fn gather(&self, indices: &[usize], job: &[u8]) -> Result<(Vec<Attestation>, Money)> {
        let mut atts = Vec::new();
        let mut paid = Money::ZERO;
        for &i in indices {
            let p = &self.providers[i];
            let att = p.answer(job)?;
            if self.registry.verify(&att) {
                paid += p.ask();
                atts.push(att);
            }
        }
        Ok((atts, paid))
    }

    /// Splits attestations into (majority answer, dissenting statements).
    ///
    /// Returns `None` on a tie — the caller escalates.
    fn majority(atts: &[Attestation]) -> Option<(Handle, Vec<Attestation>)> {
        let mut votes: HashMap<Handle, usize> = HashMap::new();
        for a in atts {
            *votes.entry(a.result).or_default() += 1;
        }
        let best = *votes.values().max()?;
        let winners: Vec<Handle> = votes
            .iter()
            .filter(|(_, &c)| c == best)
            .map(|(h, _)| *h)
            .collect();
        if winners.len() != 1 {
            return None;
        }
        let winner = winners[0];
        let losers = atts
            .iter()
            .filter(|a| a.result != winner)
            .cloned()
            .collect();
        Some((winner, losers))
    }

    /// Submits a job under a checking policy.
    ///
    /// With [`CheckPolicy::Replicate`], disagreement escalates to every
    /// provider in the market and the majority wins; dissenters owe the
    /// insurance payout. A market-wide tie is an error (the customer
    /// needs an out-of-band referee).
    pub fn submit(&mut self, job: &[u8], check: CheckPolicy) -> Result<JobOutcome> {
        let ranked = self.ranked();
        if ranked.is_empty() {
            return Err(Error::Trap("no providers in the market".into()));
        }
        let n = match check {
            CheckPolicy::TrustCheapest => 1,
            CheckPolicy::Replicate(n) => n.clamp(1, ranked.len()),
        };
        let (mut atts, mut paid) = self.gather(&ranked[..n], job)?;
        if atts.is_empty() {
            return Err(Error::Trap("no valid attestations gathered".into()));
        }

        let agreed = atts.iter().all(|a| a.result == atts[0].result);
        let mut disputed = false;
        if !agreed {
            // Escalate: every provider not yet asked answers too.
            disputed = true;
            let (more, extra) = self.gather(&ranked[n..], job)?;
            paid += extra;
            atts.extend(more);
        }
        let (result, losers) = Self::majority(&atts)
            .ok_or_else(|| Error::Trap("market-wide tie: no majority answer".into()))?;

        let claims: Vec<Claim> = losers
            .iter()
            .map(|a| Claim {
                provider: a.provider.clone(),
                thunk: a.thunk,
                payout: self.policy.payout_per_wrong_answer,
            })
            .collect();
        self.claims.extend(claims.iter().cloned());
        Ok(JobOutcome {
            result,
            attestations: atts,
            paid,
            disputed,
            claims,
        })
    }

    /// Fetches the winning result's bytes from any provider that
    /// attested to it (content addressing guarantees the bytes match
    /// the handle, so the customer can't be served a substitute).
    pub fn fetch(&self, outcome: &JobOutcome, into: &fixpoint::Runtime) -> Result<Handle> {
        if outcome.result.is_literal() {
            return Ok(outcome.result);
        }
        for att in &outcome.attestations {
            if att.result != outcome.result {
                continue;
            }
            let provider = self
                .providers
                .iter()
                .find(|p| p.id() == &att.provider)
                .expect("attesting provider exists");
            if let Ok(parcel) = provider.serve(outcome.result) {
                return Ok(into.store().import(parcel));
            }
        }
        Err(Error::NotFound(outcome.result))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::provider::Behavior;
    use fix_core::data::Blob;
    use fix_core::limits::ResourceLimits;
    use fixpoint::Runtime;

    /// A self-contained job: sum three u64 blobs via a VM codelet. The
    /// output is 40 bytes, so results are never literals and fetching
    /// exercises the serve path.
    fn sum_job(a: u64, b: u64) -> (Vec<u8>, u64) {
        let rt = Runtime::builder().build();
        let padded_add = rt
            .install_vm_module(
                r#"
                func apply args=0 locals=0
                  const 64
                  mem.grow
                  drop
                  const 0
                  const 0
                  const 2
                  tree.get
                  const 0
                  blob.read_u64
                  const 0
                  const 3
                  tree.get
                  const 0
                  blob.read_u64
                  add
                  mem.store64
                  const 0
                  const 40
                  blob.create
                  ret_handle
                end
                "#,
            )
            .unwrap();
        let thunk = rt
            .apply(
                ResourceLimits::default_limits(),
                padded_add,
                &[
                    rt.put_blob(Blob::from_u64(a)),
                    rt.put_blob(Blob::from_u64(b)),
                ],
            )
            .unwrap();
        (rt.store().export(thunk).unwrap().to_bytes(), a + b)
    }

    fn market(shady_every: u64) -> Marketplace {
        Marketplace::new(
            vec![
                Provider::new(
                    "Budget",
                    Money::from_micros(10),
                    Behavior::WrongEvery(shady_every),
                ),
                Provider::new("Mid", Money::from_micros(25), Behavior::Honest),
                Provider::new("Premium", Money::from_micros(90), Behavior::Honest),
            ],
            InsurancePolicy::default(),
        )
    }

    #[test]
    fn trusting_the_cheapest_takes_one_bid() {
        let mut m = market(0); // Everyone honest.
        let (job, expect) = sum_job(20, 22);
        let out = m.submit(&job, CheckPolicy::TrustCheapest).unwrap();
        assert!(!out.disputed);
        assert_eq!(out.paid, Money::from_micros(10));
        let customer = Runtime::builder().build();
        let h = m.fetch(&out, &customer).unwrap();
        let blob = customer.get_blob(h).unwrap();
        assert_eq!(
            u64::from_le_bytes(blob.as_slice()[..8].try_into().unwrap()),
            expect
        );
    }

    #[test]
    fn replication_catches_the_liar_and_pays_out() {
        let mut m = market(1); // Budget lies on every job.
        let (job, expect) = sum_job(3, 4);
        let out = m.submit(&job, CheckPolicy::Replicate(2)).unwrap();
        assert!(out.disputed, "cheapest two must disagree");
        // Majority (Mid + Premium) wins; Budget owes the payout.
        assert_eq!(out.claims.len(), 1);
        assert_eq!(out.claims[0].provider, ProviderId("Budget".into()));
        assert_eq!(
            out.claims[0].payout,
            InsurancePolicy::default().payout_per_wrong_answer
        );
        // Escalation paid all three asks.
        assert_eq!(out.paid, Money::from_micros(10 + 25 + 90));
        let customer = Runtime::builder().build();
        let h = m.fetch(&out, &customer).unwrap();
        let blob = customer.get_blob(h).unwrap();
        assert_eq!(
            u64::from_le_bytes(blob.as_slice()[..8].try_into().unwrap()),
            expect
        );
        assert_eq!(m.claims().len(), 1);
    }

    #[test]
    fn trusting_the_cheapest_can_be_fooled() {
        // The flip side: without double-checking, the lie stands — the
        // paper's argument for customers buying verification.
        let mut m = market(1);
        let (job, expect) = sum_job(5, 6);
        let out = m.submit(&job, CheckPolicy::TrustCheapest).unwrap();
        assert!(!out.disputed);
        let customer = Runtime::builder().build();
        let h = m.fetch(&out, &customer).unwrap();
        let blob = customer.get_blob(h).unwrap();
        let got = u64::from_le_bytes(blob.as_slice()[..8].try_into().unwrap());
        assert_ne!(got, expect, "the fabricated answer went unchallenged");
    }

    #[test]
    fn occasional_cheater_passes_some_audits() {
        // WrongEvery(3): jobs 1 and 2 are honest, job 3 lies. Claims
        // accumulate only on dishonest rounds.
        let mut m = market(3);
        let (job, _) = sum_job(1, 1);
        for round in 1..=3u32 {
            let out = m.submit(&job, CheckPolicy::Replicate(2)).unwrap();
            if round == 3 {
                assert!(out.disputed);
            } else {
                assert!(!out.disputed, "round {round} should agree");
            }
        }
        assert_eq!(m.claims().len(), 1);
    }

    #[test]
    fn empty_market_is_an_error() {
        let mut m = Marketplace::new(vec![], InsurancePolicy::default());
        let (job, _) = sum_job(1, 2);
        assert!(m.submit(&job, CheckPolicy::TrustCheapest).is_err());
    }
}
