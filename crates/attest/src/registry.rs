//! The public key registry: which verification key vouches for which
//! provider.
//!
//! In the paper's marketplace, a customer only needs two public facts
//! about a provider: its verification key and its insurance terms.
//! This registry holds the former; [`crate::market::InsurancePolicy`]
//! models the latter.

use crate::statement::{Attestation, ProviderId};
use parking_lot::RwLock;
use std::collections::HashMap;

/// A concurrent `ProviderId → verification key` map.
#[derive(Default)]
pub struct KeyRegistry {
    keys: RwLock<HashMap<ProviderId, [u8; 32]>>,
}

impl KeyRegistry {
    /// Creates an empty registry.
    pub fn new() -> KeyRegistry {
        KeyRegistry::default()
    }

    /// Registers (or rotates) a provider's verification key.
    pub fn register(&self, provider: ProviderId, key: [u8; 32]) {
        self.keys.write().insert(provider, key);
    }

    /// Looks up a provider's key.
    pub fn key_of(&self, provider: &ProviderId) -> Option<[u8; 32]> {
        self.keys.read().get(provider).copied()
    }

    /// Verifies an attestation against the signer's registered key.
    /// Unregistered providers never verify.
    pub fn verify(&self, att: &Attestation) -> bool {
        match self.key_of(&att.provider) {
            Some(key) => att.verify(&key),
            None => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fix_core::data::{Blob, Tree};

    #[test]
    fn registry_verifies_known_signers_only() {
        let registry = KeyRegistry::new();
        let key = [3u8; 32];
        registry.register(ProviderId("Z".into()), key);

        let def = Tree::from_handles(vec![]);
        let thunk = def.handle().application().unwrap();
        let result = Blob::from_slice(&[1u8; 40]).handle();
        let good = Attestation::sign(thunk, result, ProviderId("Z".into()), &key);
        assert!(registry.verify(&good));

        // Same key, unregistered name: rejected.
        let unknown = Attestation::sign(thunk, result, ProviderId("Y".into()), &key);
        assert!(!registry.verify(&unknown));

        // Key rotation invalidates old statements.
        registry.register(ProviderId("Z".into()), [4u8; 32]);
        assert!(!registry.verify(&good));
    }
}
