//! Simulated compute providers: independent Fixpoint nodes that accept
//! jobs as Fix parcels, evaluate them, and sign their answers.
//!
//! Each provider owns its own runtime and storage — jobs arrive as
//! self-contained [`fix_core::wire::Parcel`]s (code as FixVM module
//! blobs, data as content-addressed objects), so no registration or
//! shared state is needed. A provider can be configured to misbehave,
//! which is what the marketplace's double-checking and insurance exist
//! to catch.

use crate::statement::{Attestation, ProviderId};
use fix_billing::Money;
use fix_core::data::Blob;
use fix_core::error::{Error, Result};
use fix_core::handle::Handle;
use fix_core::wire::Parcel;
use fixpoint::Runtime;
use std::sync::atomic::{AtomicU64, Ordering};

/// How a provider behaves when answering jobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Behavior {
    /// Always evaluates faithfully.
    Honest,
    /// Signs a fabricated answer on every `n`-th job (1-based): a
    /// buggy stack, a cosmic ray, or outright fraud — indistinguishable
    /// to the customer, which is the point of double-checking.
    WrongEvery(u64),
}

/// One provider: identity, signing key, price, and a private runtime.
pub struct Provider {
    id: ProviderId,
    key: [u8; 32],
    /// Flat ask per job (a real provider would quote a
    /// `fix_billing::PriceSheet`; a scalar keeps bidding legible).
    ask: Money,
    behavior: Behavior,
    runtime: Runtime,
    jobs_handled: AtomicU64,
}

impl Provider {
    /// Creates a provider. The signing key is derived from the name so
    /// simulations are deterministic; real deployments provision keys.
    pub fn new(name: &str, ask: Money, behavior: Behavior) -> Provider {
        let mut key = [0u8; 32];
        let digest = fix_hash::hash(name.as_bytes());
        key.copy_from_slice(&digest);
        Provider {
            id: ProviderId(name.to_string()),
            key,
            ask,
            behavior,
            runtime: Runtime::builder().build(),
            jobs_handled: AtomicU64::new(0),
        }
    }

    /// The provider's identity.
    pub fn id(&self) -> &ProviderId {
        &self.id
    }

    /// The provider's verification key (what it registers publicly).
    pub fn verification_key(&self) -> [u8; 32] {
        self.key
    }

    /// The provider's flat ask per job.
    pub fn ask(&self) -> Money {
        self.ask
    }

    /// Jobs answered so far.
    pub fn jobs_handled(&self) -> u64 {
        self.jobs_handled.load(Ordering::Relaxed)
    }

    /// Accepts a job parcel, evaluates it, and signs the answer.
    ///
    /// The parcel must be self-contained (the customer ships the
    /// minimum repository; see `Store::export`). Strict evaluation
    /// ensures the claimed result's bytes exist locally, so the
    /// provider can serve them afterwards.
    pub fn answer(&self, parcel_bytes: &[u8]) -> Result<Attestation> {
        let parcel = Parcel::from_bytes(parcel_bytes)?;
        let root = self.runtime.store().import(parcel);
        let honest = self.runtime.eval_strict(root)?;
        let n = self.jobs_handled.fetch_add(1, Ordering::Relaxed) + 1;
        let result = match self.behavior {
            Behavior::Honest => honest,
            Behavior::WrongEvery(k) if k == 0 || !n.is_multiple_of(k) => honest,
            Behavior::WrongEvery(_) => {
                // Fabricate a plausible-but-wrong answer and store its
                // bytes so the provider can even "serve" the lie.
                let mut bogus = format!("bogus-{}-{n}", self.id).into_bytes();
                bogus.resize(40, 0); // Non-literal, always storable.
                self.runtime.put_blob(Blob::from_vec(bogus))
            }
        };
        Ok(Attestation::sign(root, result, self.id.clone(), &self.key))
    }

    /// Serves the bytes behind a previously-attested result.
    pub fn serve(&self, result: Handle) -> Result<Parcel> {
        if !self.runtime.store().contains(result) {
            return Err(Error::NotFound(result));
        }
        self.runtime.store().export(result)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fix_core::limits::ResourceLimits;
    use fixpoint::Runtime;

    /// A customer-side parcel: square(7) as a self-contained VM job.
    pub(crate) fn square_job(x: u64) -> (Vec<u8>, u64) {
        let rt = Runtime::builder().build();
        let square = rt
            .install_vm_module(
                r#"
                func apply args=0 locals=0
                  const 0
                  const 2
                  tree.get
                  const 0
                  blob.read_u64
                  const 0
                  const 2
                  tree.get
                  const 0
                  blob.read_u64
                  mul
                  blob.create_u64
                  ret_handle
                end
                "#,
            )
            .unwrap();
        let thunk = rt
            .apply(
                ResourceLimits::default_limits(),
                square,
                &[rt.put_blob(Blob::from_u64(x))],
            )
            .unwrap();
        // Sanity: the tree exists and exports cleanly.
        let _ = rt.get_tree(thunk.thunk_definition().unwrap()).unwrap();
        (rt.store().export(thunk).unwrap().to_bytes(), x * x)
    }

    #[test]
    fn honest_provider_answers_and_serves() {
        let p = Provider::new("Zeta", Money::from_micros(50), Behavior::Honest);
        let (job, expect) = square_job(7);
        let att = p.answer(&job).unwrap();
        assert!(att.verify(&p.verification_key()));
        // The answer is a literal u64 blob: check by handle decoding.
        let customer = Runtime::builder().build();
        let served = p.serve(att.result);
        // Literals have no bytes to serve; values big enough do.
        if let Ok(parcel) = served {
            customer.store().import(parcel);
        }
        assert_eq!(customer.get_u64(att.result).unwrap(), expect);
    }

    #[test]
    fn wrong_every_fires_on_schedule() {
        let p = Provider::new("Shady", Money::from_micros(10), Behavior::WrongEvery(2));
        let (job, expect) = square_job(9);
        let customer = Runtime::builder().build();
        let a1 = p.answer(&job).unwrap(); // Job 1: honest.
        assert_eq!(customer.get_u64(a1.result).unwrap(), expect);
        let a2 = p.answer(&job).unwrap(); // Job 2: fabricated.
        assert_ne!(a2.result, a1.result);
        // Even the lie is properly signed — signatures authenticate the
        // claim, not its truth.
        assert!(a2.verify(&p.verification_key()));
    }

    #[test]
    fn independent_providers_agree_by_handle_equality() {
        let a = Provider::new("A", Money::from_micros(10), Behavior::Honest);
        let b = Provider::new("B", Money::from_micros(20), Behavior::Honest);
        let (job, _) = square_job(12);
        let ra = a.answer(&job).unwrap();
        let rb = b.answer(&job).unwrap();
        // No bytes compared — content addressing makes answers
        // comparable across administrative domains.
        assert_eq!(ra.result, rb.result);
        assert_ne!(ra.mac, rb.mac, "distinct keys, distinct signatures");
    }

    #[test]
    fn malformed_parcel_is_rejected() {
        let p = Provider::new("Zeta", Money::from_micros(50), Behavior::Honest);
        assert!(p.answer(b"not a parcel").is_err());
    }
}
