//! `fix-attest`: signed results and a compute marketplace (paper §6).
//!
//! A Fix computation has one unambiguous answer, named by a
//! content-addressed Handle. That makes outsourced computing
//! *commoditizable*:
//!
//! * a provider can sign the 64-byte statement "`f(x) → y`, according
//!   to Provider Z" ([`Attestation`]);
//! * a customer can bid a job out to whichever provider is cheapest
//!   ([`Marketplace`]), and double-check by asking several — answers
//!   compare by Handle equality, no data movement needed;
//! * disagreement is arbitrated by majority, and signed wrong answers
//!   cost the dissenting provider its insurance payout
//!   ([`InsurancePolicy`]).
//!
//! Content addressing does the heavy lifting twice over: answers are
//! comparable across administrative domains, and a provider *serving*
//! result bytes cannot substitute different data for an attested
//! handle — the parcel parser re-hashes everything on import.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod market;
mod provider;
mod registry;
mod statement;

pub use market::{CheckPolicy, Claim, InsurancePolicy, JobOutcome, Marketplace};
pub use provider::{Behavior, Provider};
pub use registry::KeyRegistry;
pub use statement::{Attestation, ProviderId};
