//! Signed result statements: "`f(x) → y`, according to Provider Z".
//!
//! Because a Fix computation has a single, unambiguous result named by
//! a content-addressed Handle, a provider can commit to its answer in
//! 32 bytes — and any two providers' answers to the same Thunk are
//! comparable by Handle equality alone, no data transfer needed
//! (paper §6, "Commoditizing cloud computing").
//!
//! Statements are authenticated with keyed BLAKE3 over a canonical
//! encoding. A MAC models the paper's signatures without an asymmetric
//! signature scheme: verification requires the provider's registered
//! verification key (see [`crate::registry::KeyRegistry`]). The
//! trust model is the same — a third party holding the key can check
//! that the provider, and nobody else, issued the statement.

use fix_core::handle::Handle;
use fix_hash::keyed_hash;

/// A provider's identity: a short, unique display name.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ProviderId(pub String);

impl std::fmt::Display for ProviderId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// The fixed domain-separation prefix of every statement encoding,
/// so statement MACs can never collide with other keyed uses.
const DOMAIN: &[u8] = b"fix-attest/v1";

/// A signed claim that evaluating `thunk` yields `result`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Attestation {
    /// The computation (a Thunk handle; its definition names all inputs).
    pub thunk: Handle,
    /// The claimed result (a value handle).
    pub result: Handle,
    /// Who claims it.
    pub provider: ProviderId,
    /// Keyed-BLAKE3 MAC over the canonical statement encoding.
    pub mac: [u8; 32],
}

/// The canonical bytes a provider signs.
fn statement_bytes(thunk: Handle, result: Handle, provider: &ProviderId) -> Vec<u8> {
    let mut out = Vec::with_capacity(DOMAIN.len() + 64 + provider.0.len());
    out.extend_from_slice(DOMAIN);
    out.extend_from_slice(thunk.raw());
    out.extend_from_slice(result.raw());
    out.extend_from_slice(provider.0.as_bytes());
    out
}

impl Attestation {
    /// Signs a statement with the provider's key.
    pub fn sign(
        thunk: Handle,
        result: Handle,
        provider: ProviderId,
        key: &[u8; 32],
    ) -> Attestation {
        let mac = keyed_hash(key, &statement_bytes(thunk, result, &provider));
        Attestation {
            thunk,
            result,
            provider,
            mac,
        }
    }

    /// Checks the MAC against a verification key. Constant content, so
    /// any alteration of thunk, result, or provider invalidates it.
    pub fn verify(&self, key: &[u8; 32]) -> bool {
        let expect = keyed_hash(
            key,
            &statement_bytes(self.thunk, self.result, &self.provider),
        );
        // Fixed 32-byte comparison; not secret-dependent in length.
        expect == self.mac
    }
}

impl std::fmt::Display for Attestation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} → {}, according to {}",
            self.thunk, self.result, self.provider
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fix_core::data::{Blob, Tree};

    fn fixture() -> (Handle, Handle) {
        let def = Tree::from_handles(vec![Blob::from_slice(&[1u8; 40]).handle()]);
        let thunk = def.handle().application().unwrap();
        let result = Blob::from_slice(&[2u8; 40]).handle();
        (thunk, result)
    }

    #[test]
    fn sign_verify_round_trip() {
        let (thunk, result) = fixture();
        let key = [7u8; 32];
        let att = Attestation::sign(thunk, result, ProviderId("Z".into()), &key);
        assert!(att.verify(&key));
    }

    #[test]
    fn wrong_key_fails() {
        let (thunk, result) = fixture();
        let att = Attestation::sign(thunk, result, ProviderId("Z".into()), &[7u8; 32]);
        assert!(!att.verify(&[8u8; 32]));
    }

    #[test]
    fn any_field_tamper_fails() {
        let (thunk, result) = fixture();
        let key = [7u8; 32];
        let att = Attestation::sign(thunk, result, ProviderId("Z".into()), &key);

        let mut swapped = att.clone();
        swapped.result = thunk;
        assert!(!swapped.verify(&key));

        let mut renamed = att.clone();
        renamed.provider = ProviderId("Y".into());
        assert!(!renamed.verify(&key));

        let mut forged = att;
        forged.mac[0] ^= 1;
        assert!(!forged.verify(&key));
    }

    #[test]
    fn statement_encoding_is_injective_on_provider_names() {
        // "ab" signing for thunk t must differ from "a" + first byte of b.
        let (thunk, result) = fixture();
        let key = [9u8; 32];
        let a = Attestation::sign(thunk, result, ProviderId("ab".into()), &key);
        let b = Attestation::sign(thunk, result, ProviderId("a".into()), &key);
        assert_ne!(a.mac, b.mac);
    }
}
