//! Deterministic open-loop load generation.
//!
//! Every experiment in the repo so far was closed-loop: issue a batch,
//! wait, repeat — which can never overload anything, and therefore never
//! produces a queue or a tail. This module generates *open-loop*
//! arrivals (requests arrive on their own clock, whether or not the
//! system has kept up), the regime the serving literature measures.
//!
//! Arrival processes are pure functions of an explicit seed: the same
//! `(seed, duration)` always yields the same timestamps, on every
//! platform, which is what makes the serving tables reproducible enough
//! to assert on in CI.

use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

/// A virtual-time instant or duration, in microseconds.
pub type Micros = u64;

/// An open-loop arrival process over a finite horizon.
#[derive(Debug, Clone)]
pub enum ArrivalProcess {
    /// Poisson arrivals at `rate_rps` requests/second: i.i.d.
    /// exponential inter-arrival gaps (the canonical serving model).
    Poisson {
        /// Mean arrival rate, in requests per second.
        rate_rps: f64,
    },
    /// Evenly spaced arrivals, one every `period_us` (a pessimism-free
    /// baseline that isolates queueing caused purely by service time).
    Uniform {
        /// Gap between consecutive arrivals, in µs.
        period_us: Micros,
    },
    /// `burst` back-to-back arrivals every `period_us` — the on/off
    /// shape that exercises admission control and shedding.
    Bursts {
        /// Gap between the start of consecutive bursts, in µs.
        period_us: Micros,
        /// Requests per burst (all stamped with the same arrival time).
        burst: u32,
    },
    /// Explicit timestamps (µs), e.g. replayed from a trace. Out-of-range
    /// or unsorted entries are sorted and clipped to the horizon.
    Trace(Vec<Micros>),
}

impl ArrivalProcess {
    /// Generates the sorted arrival timestamps in `[0, duration_us)`.
    ///
    /// Deterministic: the stream depends only on `seed` (ignored by the
    /// non-random processes) and the process parameters.
    pub fn generate(&self, seed: u64, duration_us: Micros) -> Vec<Micros> {
        match self {
            ArrivalProcess::Poisson { rate_rps } => {
                assert!(*rate_rps > 0.0, "Poisson rate must be positive");
                let mut rng = StdRng::seed_from_u64(seed);
                let mut out = Vec::new();
                let mut t = 0.0f64;
                loop {
                    // Inverse-CDF exponential gap; u ∈ (0, 1] so ln is
                    // finite. 53 bits keeps the stream platform-stable.
                    let u = ((rng.next_u64() >> 11) + 1) as f64 / (1u64 << 53) as f64;
                    t += -u.ln() * 1e6 / rate_rps;
                    if t >= duration_us as f64 {
                        return out;
                    }
                    out.push(t as Micros);
                }
            }
            ArrivalProcess::Uniform { period_us } => {
                assert!(*period_us > 0, "period must be positive");
                (0..duration_us).step_by(*period_us as usize).collect()
            }
            ArrivalProcess::Bursts { period_us, burst } => {
                assert!(*period_us > 0, "period must be positive");
                let mut out = Vec::new();
                let mut t = 0;
                while t < duration_us {
                    out.extend(std::iter::repeat_n(t, *burst as usize));
                    t += period_us;
                }
                out
            }
            ArrivalProcess::Trace(times) => {
                let mut out: Vec<Micros> =
                    times.iter().copied().filter(|&t| t < duration_us).collect();
                out.sort_unstable();
                out
            }
        }
    }
}

/// One generated request arrival, before admission.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Arrival {
    /// Virtual arrival time, µs.
    pub time_us: Micros,
    /// Index into the configured tenant list.
    pub tenant: usize,
    /// Per-tenant request sequence number (names the request's inputs).
    pub seq: u64,
}

/// Derives tenant `i`'s private RNG stream from the run seed
/// (SplitMix64-style mixing, so adjacent tenants are uncorrelated).
pub fn tenant_seed(run_seed: u64, tenant: usize, stream: u64) -> u64 {
    let mut z = run_seed
        .wrapping_add((tenant as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15))
        .wrapping_add(stream.wrapping_mul(0xBF58_476D_1CE4_E5B9));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Merges per-tenant arrival streams into one globally ordered
/// timeline. Ties break by tenant index then sequence number, so the
/// timeline is a pure function of the configuration.
pub fn merge_timelines(per_tenant: Vec<Vec<Micros>>) -> Vec<Arrival> {
    let mut all: Vec<Arrival> = Vec::with_capacity(per_tenant.iter().map(Vec::len).sum());
    for (tenant, times) in per_tenant.into_iter().enumerate() {
        for (seq, time_us) in times.into_iter().enumerate() {
            all.push(Arrival {
                time_us,
                tenant,
                seq: seq as u64,
            });
        }
    }
    all.sort_by_key(|a| (a.time_us, a.tenant, a.seq));
    all
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn poisson_is_deterministic_and_near_rate() {
        let p = ArrivalProcess::Poisson { rate_rps: 1000.0 };
        let a = p.generate(42, 1_000_000);
        let b = p.generate(42, 1_000_000);
        assert_eq!(a, b, "same seed, same stream");
        // 1000 rps over 1 s: within ±20% whp for this fixed seed.
        assert!((800..1200).contains(&a.len()), "{} arrivals", a.len());
        assert!(a.windows(2).all(|w| w[0] <= w[1]), "sorted");
        let c = p.generate(43, 1_000_000);
        assert_ne!(a, c, "different seed, different stream");
    }

    #[test]
    fn uniform_and_bursts_cover_the_horizon() {
        let u = ArrivalProcess::Uniform { period_us: 250 }.generate(0, 1000);
        assert_eq!(u, vec![0, 250, 500, 750]);
        let b = ArrivalProcess::Bursts {
            period_us: 500,
            burst: 3,
        }
        .generate(0, 1000);
        assert_eq!(b, vec![0, 0, 0, 500, 500, 500]);
    }

    #[test]
    fn trace_is_sorted_and_clipped() {
        let t = ArrivalProcess::Trace(vec![900, 100, 5000, 100]).generate(7, 1000);
        assert_eq!(t, vec![100, 100, 900]);
    }

    #[test]
    fn merged_timeline_is_totally_ordered() {
        let merged = merge_timelines(vec![vec![0, 10, 20], vec![10, 15], vec![10]]);
        let times: Vec<(Micros, usize)> = merged.iter().map(|a| (a.time_us, a.tenant)).collect();
        assert_eq!(
            times,
            vec![(0, 0), (10, 0), (10, 1), (10, 2), (15, 1), (20, 0)]
        );
        // Sequence numbers stay per-tenant.
        assert_eq!(merged[1].seq, 1);
        assert_eq!(merged[3].seq, 0);
    }

    #[test]
    fn tenant_seeds_are_distinct() {
        let s: Vec<u64> = (0..8).map(|i| tenant_seed(1, i, 0)).collect();
        let mut dedup = s.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), s.len());
        assert_ne!(tenant_seed(1, 0, 0), tenant_seed(1, 0, 1));
    }
}
