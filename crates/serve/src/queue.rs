//! Admission control and two-level SLO dispatch.
//!
//! Each tenant gets a bounded FIFO queue; an arrival to a full queue is
//! *shed* and charged to that tenant's drop counter (per-tenant
//! isolation: one tenant's burst cannot grow another tenant's queue).
//!
//! Dispatch is two-level, driven by each tenant's
//! [`SloClass`](crate::tenant::SloClass):
//!
//! 1. **Strict priority across tiers** — a batch is always assembled
//!    from the highest [`Priority`] tier with backlogged requests;
//!    lower tiers wait.
//! 2. **EDF within a tier** — when any tenant of the serving tier
//!    carries a deadline, requests are taken earliest-absolute-deadline
//!    first (deadline-free tenants rank last). When no tenant of the
//!    tier has a deadline, the two request streams are
//!    indistinguishable to EDF and dispatch falls back to
//!    **deficit round robin** weighted by the tenants' shares — the
//!    classic weighted-fair discipline, and exactly the pre-SLO
//!    behavior for the default (single-tier, no-deadline)
//!    configuration.
//!
//! Expiry is part of dispatch: a queued request whose absolute deadline
//! the virtual clock has passed is *expired* — returned separately from
//! the batch so the caller can account it as `DeadlineExceeded` work
//! the platform withdrew instead of served.

use crate::loadgen::Micros;
use crate::tenant::RequestKind;
use fix_core::api::Priority;
use fix_core::handle::Handle;
use std::collections::VecDeque;

/// One admitted request waiting for (or receiving) service.
#[derive(Debug, Clone, Copy)]
pub struct QueuedRequest {
    /// Virtual arrival time, µs.
    pub arrival_us: Micros,
    /// Owning tenant index.
    pub tenant: usize,
    /// Tenant-stream sequence number of the arrival — with `tenant` and
    /// `kind`, everything a [`RequestFactory`](crate::tenant::RequestFactory)
    /// needs to re-mint the identical (content-addressed) thunk on
    /// another backend, which is how the dispatcher moves a queued
    /// request to a different node.
    pub seq: u64,
    /// The drawn request kind (prices a cold evaluation when the
    /// request is re-routed to a node that has not memoized it).
    pub kind: RequestKind,
    /// The thunk to evaluate.
    pub thunk: Handle,
    /// Modeled service time, µs.
    pub service_us: Micros,
    /// Absolute expiry instant on the virtual clock, µs (`None`: never
    /// expires). Within one tenant deadlines are monotone — FIFO
    /// arrivals plus a constant relative deadline — which is what makes
    /// expiry a pop-from-the-front scan.
    pub deadline_us: Option<Micros>,
}

/// The per-tenant dispatch parameters [`TenantQueues`] schedules by:
/// the weighted-fair share plus the SLO tier and relative deadline.
#[derive(Debug, Clone, Copy)]
pub struct TenantClass {
    /// Weighted-fair share within the tenant's tier.
    pub weight: u32,
    /// Strict-priority dispatch tier.
    pub priority: Priority,
    /// Relative deadline (µs from arrival) the tenant's requests carry.
    pub deadline_us: Option<Micros>,
}

/// One assembled dispatch decision: the batch to serve (all from one
/// priority tier) plus the requests that expired instead of serving.
pub struct Dispatch {
    /// The requests to serve, in dispatch order.
    pub requests: Vec<QueuedRequest>,
    /// Requests whose deadline passed while queued: withdrawn, not
    /// served, to be accounted as expired.
    pub expired: Vec<QueuedRequest>,
    /// The tier the batch was assembled from (the whole batch shares
    /// it, so the driver can submit it at that priority).
    pub priority: Priority,
}

/// Per-tenant bounded FIFO queues with two-level SLO dispatch.
pub struct TenantQueues {
    queues: Vec<VecDeque<QueuedRequest>>,
    classes: Vec<TenantClass>,
    capacity: usize,
    deficits: Vec<u64>,
    /// Rotating round-robin start, so equal-weight tenants alternate
    /// who goes first instead of privileging tenant 0 forever.
    cursor: usize,
    queued: usize,
    /// Arrivals offered per tenant (admitted + dropped + rejected).
    pub offered: Vec<u64>,
    /// Arrivals shed at admission per tenant because the queue was at
    /// capacity.
    pub dropped: Vec<u64>,
    /// Arrivals shed at admission per tenant by an admission
    /// *controller* (priced to expire before dispatch) — a policy
    /// decision, accounted separately from capacity sheds.
    pub rejected: Vec<u64>,
    /// Modeled service time queued per tenant, in virtual µs: the
    /// backlog an admission controller prices new arrivals against.
    backlog_us: Vec<Micros>,
}

impl TenantQueues {
    /// Creates queues for tenants with the given dispatch `classes`,
    /// each bounded at `capacity` waiting requests.
    pub fn new(classes: Vec<TenantClass>, capacity: usize) -> TenantQueues {
        assert!(capacity > 0, "queue capacity must be positive");
        assert!(
            classes.iter().all(|c| c.weight > 0),
            "tenant weights must be positive"
        );
        let n = classes.len();
        TenantQueues {
            queues: (0..n).map(|_| VecDeque::new()).collect(),
            classes,
            capacity,
            deficits: vec![0; n],
            cursor: 0,
            queued: 0,
            offered: vec![0; n],
            dropped: vec![0; n],
            rejected: vec![0; n],
            backlog_us: vec![0; n],
        }
    }

    /// Creates single-tier queues from bare weights (normal priority,
    /// no deadlines): the plain weighted-fair configuration.
    pub fn weighted(weights: Vec<u32>, capacity: usize) -> TenantQueues {
        Self::new(
            weights
                .into_iter()
                .map(|weight| TenantClass {
                    weight,
                    priority: Priority::Normal,
                    deadline_us: None,
                })
                .collect(),
            capacity,
        )
    }

    /// True when the tenant's queue is at capacity — the admission
    /// check, exposed separately so callers can shed *before* paying
    /// any per-request construction cost (see [`shed`](Self::shed)).
    pub fn at_capacity(&self, tenant: usize) -> bool {
        self.queues[tenant].len() >= self.capacity
    }

    /// Records one arrival shed at admission without building a
    /// request: under overload, rejecting must stay O(1) — that is the
    /// protection admission control exists to provide.
    pub fn shed(&mut self, tenant: usize) {
        self.offered[tenant] += 1;
        self.dropped[tenant] += 1;
    }

    /// Records one arrival shed by an admission *controller* — the
    /// request was priced (against the calibrated service model and the
    /// current backlog) to expire before it could dispatch, so the
    /// platform refuses it at the door instead of queueing dead work.
    /// Accounted under `rejected`, separate from capacity `dropped`.
    pub fn reject(&mut self, tenant: usize) {
        self.offered[tenant] += 1;
        self.rejected[tenant] += 1;
    }

    /// Modeled service time currently queued for `tenant`, in virtual
    /// µs — the own-tenant backlog an admission controller divides by
    /// the driver count to lower-bound a new arrival's dispatch wait.
    pub fn tenant_backlog_us(&self, tenant: usize) -> Micros {
        self.backlog_us[tenant]
    }

    /// Modeled service time of the tenant's queued requests *excluding*
    /// the newest `keep_last`, in virtual µs. This is the FIFO-prefix
    /// backlog an admission controller's provable-expiry bound divides
    /// by the driver count: when a new arrival dispatches, at most
    /// `drivers × batch − 1` of its FIFO predecessors can still be
    /// co-batched or in service beside it, so every *earlier*
    /// predecessor — the prefix this method sums — must have been served
    /// first (see `fix-adapt`'s admission controller for the argument).
    pub fn tenant_backlog_prefix_us(&self, tenant: usize, keep_last: usize) -> Micros {
        let q = &self.queues[tenant];
        if keep_last >= q.len() {
            return 0;
        }
        // O(keep_last), not O(depth): the prefix is the maintained
        // running backlog minus the newest `keep_last` — an admission
        // controller prices every arrival, so this is on the hot path
        // exactly when the queue is deepest.
        self.backlog_us[tenant]
            - q.iter()
                .rev()
                .take(keep_last)
                .map(|r| r.service_us)
                .sum::<Micros>()
    }

    /// Offers one arrival: enqueues it, or sheds it if the tenant's
    /// queue is at capacity. Returns whether the request was admitted.
    pub fn offer(&mut self, req: QueuedRequest) -> bool {
        self.offered[req.tenant] += 1;
        if self.queues[req.tenant].len() >= self.capacity {
            self.dropped[req.tenant] += 1;
            return false;
        }
        self.backlog_us[req.tenant] += req.service_us;
        self.queues[req.tenant].push_back(req);
        self.queued += 1;
        true
    }

    /// Total requests currently waiting.
    pub fn len(&self) -> usize {
        self.queued
    }

    /// True when no request is waiting.
    pub fn is_empty(&self) -> bool {
        self.queued == 0
    }

    /// Requests waiting for one tenant.
    pub fn tenant_depth(&self, tenant: usize) -> usize {
        self.queues[tenant].len()
    }

    /// Assembles the next dispatch of at most `max` requests at virtual
    /// time `now`: expires deadline-passed work, then serves the
    /// highest backlogged tier — EDF when the tier carries deadlines,
    /// weighted deficit round robin when it does not (see the module
    /// docs for the discipline).
    pub fn next_dispatch(&mut self, max: usize, now: Micros) -> Dispatch {
        let expired = self.expire(now);
        let Some(tier) = self.serving_tier() else {
            return Dispatch {
                requests: Vec::new(),
                expired,
                priority: Priority::Normal,
            };
        };
        let tier_has_deadlines = (0..self.queues.len()).any(|t| {
            self.classes[t].priority == tier
                && self.classes[t].deadline_us.is_some()
                && !self.queues[t].is_empty()
        });
        let requests = if tier_has_deadlines {
            self.next_batch_edf(max, tier)
        } else {
            self.next_batch_drr(max, tier)
        };
        Dispatch {
            requests,
            expired,
            priority: tier,
        }
    }

    /// Pops every request whose absolute deadline `now` has passed.
    /// Deadlines are monotone within a tenant's FIFO queue, so this
    /// only ever looks at queue fronts.
    fn expire(&mut self, now: Micros) -> Vec<QueuedRequest> {
        let mut expired = Vec::new();
        for (t, queue) in self.queues.iter_mut().enumerate() {
            while let Some(front) = queue.front() {
                match front.deadline_us {
                    Some(deadline) if now > deadline => {
                        let req = queue.pop_front().expect("front exists");
                        self.backlog_us[t] -= req.service_us;
                        expired.push(req);
                        self.queued -= 1;
                    }
                    _ => break,
                }
            }
        }
        expired
    }

    /// The highest (first-dispatched) tier with backlogged requests.
    fn serving_tier(&self) -> Option<Priority> {
        (0..self.queues.len())
            .filter(|&t| !self.queues[t].is_empty())
            .map(|t| self.classes[t].priority)
            .min()
    }

    /// Earliest-deadline-first assembly across the tier's tenants:
    /// repeatedly take the queue front with the smallest absolute
    /// deadline (deadline-free tenants rank last; exact ties break by
    /// rotation offset, so equal tenants alternate across batches).
    fn next_batch_edf(&mut self, max: usize, tier: Priority) -> Vec<QueuedRequest> {
        let n = self.queues.len();
        let mut batch = Vec::new();
        while batch.len() < max {
            let pick = (0..n)
                .filter(|&t| self.classes[t].priority == tier && !self.queues[t].is_empty())
                .min_by_key(|&t| {
                    let deadline = self.queues[t]
                        .front()
                        .and_then(|r| r.deadline_us)
                        .unwrap_or(Micros::MAX);
                    (deadline, (t + n - self.cursor % n) % n)
                });
            let Some(t) = pick else { break };
            let req = self.queues[t].pop_front().expect("queue is non-empty");
            self.backlog_us[t] -= req.service_us;
            self.queued -= 1;
            batch.push(req);
        }
        self.cursor = (self.cursor + 1) % n.max(1);
        batch
    }

    /// Deficit-round-robin assembly across the tier's tenants: each
    /// pass credits every backlogged tenant `weight` units and drains
    /// up to its accumulated deficit, so service converges to the
    /// weight ratios whenever several tenants stay backlogged. An idle
    /// tenant's deficit resets — weighted fairness shares *capacity*,
    /// it does not bank credit for traffic never offered.
    fn next_batch_drr(&mut self, max: usize, tier: Priority) -> Vec<QueuedRequest> {
        let n = self.queues.len();
        let mut batch = Vec::new();
        while batch.len() < max && self.queued > 0 {
            let mut progressed = false;
            for k in 0..n {
                let t = (self.cursor + k) % n;
                if self.classes[t].priority != tier {
                    continue;
                }
                if self.queues[t].is_empty() {
                    self.deficits[t] = 0;
                    continue;
                }
                self.deficits[t] += self.classes[t].weight as u64;
                while self.deficits[t] > 0 && batch.len() < max {
                    match self.queues[t].pop_front() {
                        Some(req) => {
                            self.backlog_us[t] -= req.service_us;
                            self.queued -= 1;
                            self.deficits[t] -= 1;
                            batch.push(req);
                            progressed = true;
                        }
                        None => break,
                    }
                }
                if batch.len() >= max {
                    break;
                }
            }
            if !progressed {
                break;
            }
        }
        self.cursor = (self.cursor + 1) % n.max(1);
        batch
    }

    /// Assembles the next dispatch batch of at most `max` requests with
    /// no deadline expiry — the plain weighted-fair entry point, kept
    /// for single-tier callers and tests.
    pub fn next_batch(&mut self, max: usize) -> Vec<QueuedRequest> {
        self.next_dispatch(max, 0).requests
    }

    /// Re-enqueues a request without admission accounting: no
    /// `offered` increment and no capacity check. This is the failover
    /// path — the request was already admitted (and counted) once on a
    /// node that has since died, so it must land on a survivor even if
    /// that survivor's queue is momentarily over its bound; shedding it
    /// here would break the offered = admitted + dropped identity.
    pub fn requeue(&mut self, req: QueuedRequest) {
        self.backlog_us[req.tenant] += req.service_us;
        self.queues[req.tenant].push_back(req);
        self.queued += 1;
    }

    /// Drains every waiting request, in (tenant, FIFO) order, leaving
    /// the queues empty but the admission counters intact — what a
    /// dispatcher pulls off a killed node before re-routing its backlog
    /// to the survivors.
    pub fn drain_all(&mut self) -> Vec<QueuedRequest> {
        let mut all = Vec::with_capacity(self.queued);
        for queue in &mut self.queues {
            all.extend(queue.drain(..));
        }
        self.backlog_us.fill(0);
        self.queued = 0;
        all
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fix_core::data::Blob;

    fn req(tenant: usize, arrival: Micros) -> QueuedRequest {
        QueuedRequest {
            arrival_us: arrival,
            tenant,
            seq: arrival,
            kind: RequestKind::Add,
            thunk: Blob::from_u64(arrival).handle(),
            service_us: 10,
            deadline_us: None,
        }
    }

    fn deadlined(tenant: usize, arrival: Micros, deadline: Micros) -> QueuedRequest {
        QueuedRequest {
            deadline_us: Some(deadline),
            ..req(tenant, arrival)
        }
    }

    #[test]
    fn bounded_queues_shed_and_account_per_tenant() {
        let mut q = TenantQueues::weighted(vec![1, 1], 2);
        assert!(q.offer(req(0, 1)));
        assert!(q.offer(req(0, 2)));
        assert!(!q.offer(req(0, 3)), "third request exceeds capacity 2");
        assert!(q.offer(req(1, 4)), "tenant 1 is isolated from tenant 0");
        assert_eq!(q.offered, vec![3, 1]);
        assert_eq!(q.dropped, vec![1, 0]);
        assert_eq!(q.len(), 3);
    }

    #[test]
    fn precheck_shed_matches_offer_accounting() {
        // The cheap path (at_capacity + shed) and the full offer() path
        // must agree on counters, so callers can shed before building a
        // request without perturbing the telemetry.
        let mut a = TenantQueues::weighted(vec![1], 2);
        let mut b = TenantQueues::weighted(vec![1], 2);
        for i in 0..5 {
            a.offer(req(0, i));
            if b.at_capacity(0) {
                b.shed(0);
            } else {
                assert!(b.offer(req(0, i)));
            }
        }
        assert_eq!(a.offered, b.offered);
        assert_eq!(a.dropped, b.dropped);
        assert_eq!(a.len(), b.len());
    }

    #[test]
    fn backlog_tracks_queued_service_and_prefix_excludes_the_tail() {
        let mut q = TenantQueues::weighted(vec![1], 10);
        for i in 0..5 {
            q.offer(req(0, i)); // 10 µs each
        }
        assert_eq!(q.tenant_backlog_us(0), 50);
        assert_eq!(q.tenant_backlog_prefix_us(0, 0), 50);
        assert_eq!(q.tenant_backlog_prefix_us(0, 2), 30);
        assert_eq!(q.tenant_backlog_prefix_us(0, 5), 0);
        assert_eq!(q.tenant_backlog_prefix_us(0, 99), 0);
        // Dispatch drains the backlog along with the queue.
        let _ = q.next_batch(3);
        assert_eq!(q.tenant_backlog_us(0), 20);
        let _ = q.next_batch(8);
        assert_eq!(q.tenant_backlog_us(0), 0);
    }

    #[test]
    fn reject_accounts_separately_from_capacity_drops() {
        let mut q = TenantQueues::weighted(vec![1, 1], 2);
        assert!(q.offer(req(0, 1)));
        q.reject(0);
        assert!(q.offer(req(0, 2)));
        assert!(!q.offer(req(0, 3)), "capacity shed");
        q.reject(1);
        assert_eq!(q.offered, vec![4, 1]);
        assert_eq!(q.dropped, vec![1, 0]);
        assert_eq!(q.rejected, vec![1, 1]);
        // offered = queued + dropped + rejected, per tenant.
        assert_eq!(q.tenant_depth(0), 2);
        assert_eq!(q.tenant_depth(1), 0);
    }

    #[test]
    fn dispatch_is_fifo_within_a_tenant() {
        let mut q = TenantQueues::weighted(vec![1], 10);
        for i in 0..5 {
            q.offer(req(0, i));
        }
        let arrivals: Vec<Micros> = q.next_batch(5).iter().map(|r| r.arrival_us).collect();
        assert_eq!(arrivals, vec![0, 1, 2, 3, 4]);
        assert!(q.is_empty());
    }

    #[test]
    fn service_follows_weights_under_backlog() {
        // Tenant 0 (weight 3) and tenant 1 (weight 1), both saturated.
        let mut q = TenantQueues::weighted(vec![3, 1], 1000);
        for i in 0..400 {
            q.offer(req(0, i));
            q.offer(req(1, i));
        }
        let mut served = [0usize; 2];
        for _ in 0..10 {
            for r in q.next_batch(32) {
                served[r.tenant] += 1;
            }
        }
        assert_eq!(served[0] + served[1], 320);
        let share = served[0] as f64 / 320.0;
        assert!(
            (0.70..0.80).contains(&share),
            "weight-3 tenant got {share:.2} of service"
        );
    }

    #[test]
    fn batches_exhaust_a_lone_tenant() {
        let mut q = TenantQueues::weighted(vec![2, 5], 100);
        for i in 0..7 {
            q.offer(req(1, i));
        }
        assert_eq!(q.next_batch(32).len(), 7, "no other tenant to wait for");
        assert!(q.next_batch(32).is_empty());
    }

    #[test]
    fn higher_tiers_preempt_lower_ones() {
        let mut q = TenantQueues::new(
            vec![
                TenantClass {
                    weight: 1,
                    priority: Priority::Batch,
                    deadline_us: None,
                },
                TenantClass {
                    weight: 1,
                    priority: Priority::Latency,
                    deadline_us: None,
                },
            ],
            100,
        );
        for i in 0..4 {
            q.offer(req(0, i));
            q.offer(req(1, i));
        }
        let d = q.next_dispatch(4, 100);
        assert_eq!(d.priority, Priority::Latency);
        assert!(
            d.requests.iter().all(|r| r.tenant == 1),
            "the latency tier must be served before the batch tier"
        );
        let d = q.next_dispatch(4, 100);
        assert_eq!(d.priority, Priority::Batch);
        assert!(d.requests.iter().all(|r| r.tenant == 0));
    }

    #[test]
    fn edf_orders_by_absolute_deadline_within_a_tier() {
        let mut q = TenantQueues::new(
            vec![
                TenantClass {
                    weight: 1,
                    priority: Priority::Latency,
                    deadline_us: Some(100),
                },
                TenantClass {
                    weight: 1,
                    priority: Priority::Latency,
                    deadline_us: Some(10),
                },
            ],
            100,
        );
        // Tenant 0 arrived first but has the laxer deadline.
        q.offer(deadlined(0, 0, 100));
        q.offer(deadlined(1, 5, 15));
        q.offer(deadlined(0, 20, 120));
        let order: Vec<usize> = q
            .next_dispatch(3, 0)
            .requests
            .iter()
            .map(|r| r.tenant)
            .collect();
        assert_eq!(order, vec![1, 0, 0], "earliest absolute deadline first");
    }

    #[test]
    fn expired_requests_are_withdrawn_not_served() {
        let mut q = TenantQueues::new(
            vec![TenantClass {
                weight: 1,
                priority: Priority::Latency,
                deadline_us: Some(10),
            }],
            100,
        );
        q.offer(deadlined(0, 0, 10));
        q.offer(deadlined(0, 50, 60));
        let d = q.next_dispatch(8, 30); // The first deadline has passed.
        assert_eq!(d.expired.len(), 1);
        assert_eq!(d.expired[0].arrival_us, 0);
        assert_eq!(d.requests.len(), 1);
        assert_eq!(d.requests[0].arrival_us, 50);
        assert!(q.is_empty());
    }

    #[test]
    fn requeue_bypasses_admission_accounting_and_capacity() {
        let mut q = TenantQueues::weighted(vec![1], 2);
        assert!(q.offer(req(0, 1)));
        assert!(q.offer(req(0, 2)));
        // The queue is full, yet failover work must still land.
        q.requeue(req(0, 3));
        assert_eq!(q.len(), 3);
        assert_eq!(q.offered, vec![2], "requeue never counts as offered");
        assert_eq!(q.dropped, vec![0]);
        let arrivals: Vec<Micros> = q.next_batch(8).iter().map(|r| r.arrival_us).collect();
        assert_eq!(arrivals, vec![1, 2, 3], "requeued work keeps FIFO order");
    }

    #[test]
    fn drain_all_empties_queues_but_keeps_counters() {
        let mut q = TenantQueues::weighted(vec![1, 1], 4);
        q.offer(req(0, 1));
        q.offer(req(1, 2));
        q.offer(req(0, 3));
        let drained = q.drain_all();
        assert_eq!(drained.len(), 3);
        let order: Vec<(usize, Micros)> =
            drained.iter().map(|r| (r.tenant, r.arrival_us)).collect();
        assert_eq!(order, vec![(0, 1), (0, 3), (1, 2)], "(tenant, FIFO) order");
        assert!(q.is_empty());
        assert_eq!(
            q.offered,
            vec![2, 1],
            "admission counters survive the drain"
        );
    }

    #[test]
    fn default_classes_match_plain_weighted_queues() {
        // A default-class config must dispatch exactly like the bare
        // weighted constructor — the bit-identical-tables guarantee for
        // configurations that never opt into SLOs.
        let classes = vec![
            TenantClass {
                weight: 3,
                priority: Priority::Normal,
                deadline_us: None,
            },
            TenantClass {
                weight: 1,
                priority: Priority::Normal,
                deadline_us: None,
            },
        ];
        let mut a = TenantQueues::new(classes, 50);
        let mut b = TenantQueues::weighted(vec![3, 1], 50);
        for i in 0..40 {
            a.offer(req(i as usize % 2, i));
            b.offer(req(i as usize % 2, i));
        }
        for _ in 0..6 {
            let da: Vec<Micros> = a
                .next_dispatch(8, 1_000)
                .requests
                .iter()
                .map(|r| r.arrival_us)
                .collect();
            let db: Vec<Micros> = b.next_batch(8).iter().map(|r| r.arrival_us).collect();
            assert_eq!(da, db);
        }
    }
}
