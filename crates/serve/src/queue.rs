//! Admission control and weighted-fair queueing.
//!
//! Each tenant gets a bounded FIFO queue; an arrival to a full queue is
//! *shed* and charged to that tenant's drop counter (per-tenant
//! isolation: one tenant's burst cannot grow another tenant's queue).
//! Drivers drain the queues through a deficit-round-robin dispatcher
//! whose quantum is the tenant's weight, so over any busy interval
//! tenant `i` receives service proportional to `weight_i` — the classic
//! weighted-fair discipline, at request granularity.

use crate::loadgen::Micros;
use fix_core::handle::Handle;
use std::collections::VecDeque;

/// One admitted request waiting for (or receiving) service.
#[derive(Debug, Clone, Copy)]
pub struct QueuedRequest {
    /// Virtual arrival time, µs.
    pub arrival_us: Micros,
    /// Owning tenant index.
    pub tenant: usize,
    /// The thunk to evaluate.
    pub thunk: Handle,
    /// Modeled service time, µs.
    pub service_us: Micros,
}

/// Per-tenant bounded FIFO queues with weighted-fair batch dispatch.
pub struct TenantQueues {
    queues: Vec<VecDeque<QueuedRequest>>,
    weights: Vec<u32>,
    capacity: usize,
    deficits: Vec<u64>,
    /// Rotating round-robin start, so equal-weight tenants alternate
    /// who goes first instead of privileging tenant 0 forever.
    cursor: usize,
    queued: usize,
    /// Arrivals offered per tenant (admitted + dropped).
    pub offered: Vec<u64>,
    /// Arrivals shed at admission per tenant.
    pub dropped: Vec<u64>,
}

impl TenantQueues {
    /// Creates queues for tenants with the given `weights`, each
    /// bounded at `capacity` waiting requests.
    pub fn new(weights: Vec<u32>, capacity: usize) -> TenantQueues {
        assert!(capacity > 0, "queue capacity must be positive");
        assert!(
            weights.iter().all(|&w| w > 0),
            "tenant weights must be positive"
        );
        let n = weights.len();
        TenantQueues {
            queues: (0..n).map(|_| VecDeque::new()).collect(),
            weights,
            capacity,
            deficits: vec![0; n],
            cursor: 0,
            queued: 0,
            offered: vec![0; n],
            dropped: vec![0; n],
        }
    }

    /// True when the tenant's queue is at capacity — the admission
    /// check, exposed separately so callers can shed *before* paying
    /// any per-request construction cost (see [`shed`](Self::shed)).
    pub fn at_capacity(&self, tenant: usize) -> bool {
        self.queues[tenant].len() >= self.capacity
    }

    /// Records one arrival shed at admission without building a
    /// request: under overload, rejecting must stay O(1) — that is the
    /// protection admission control exists to provide.
    pub fn shed(&mut self, tenant: usize) {
        self.offered[tenant] += 1;
        self.dropped[tenant] += 1;
    }

    /// Offers one arrival: enqueues it, or sheds it if the tenant's
    /// queue is at capacity. Returns whether the request was admitted.
    pub fn offer(&mut self, req: QueuedRequest) -> bool {
        self.offered[req.tenant] += 1;
        if self.queues[req.tenant].len() >= self.capacity {
            self.dropped[req.tenant] += 1;
            return false;
        }
        self.queues[req.tenant].push_back(req);
        self.queued += 1;
        true
    }

    /// Total requests currently waiting.
    pub fn len(&self) -> usize {
        self.queued
    }

    /// True when no request is waiting.
    pub fn is_empty(&self) -> bool {
        self.queued == 0
    }

    /// Requests waiting for one tenant.
    pub fn tenant_depth(&self, tenant: usize) -> usize {
        self.queues[tenant].len()
    }

    /// Assembles the next dispatch batch of at most `max` requests by
    /// deficit round robin: each pass over the tenants credits every
    /// backlogged tenant `weight` units and drains up to its accumulated
    /// deficit, so service converges to the weight ratios whenever
    /// several tenants stay backlogged. An idle tenant's deficit resets
    /// — weighted fairness shares *capacity*, it does not bank credit
    /// for traffic never offered.
    pub fn next_batch(&mut self, max: usize) -> Vec<QueuedRequest> {
        let n = self.queues.len();
        let mut batch = Vec::new();
        while batch.len() < max && self.queued > 0 {
            let mut progressed = false;
            for k in 0..n {
                let t = (self.cursor + k) % n;
                if self.queues[t].is_empty() {
                    self.deficits[t] = 0;
                    continue;
                }
                self.deficits[t] += self.weights[t] as u64;
                while self.deficits[t] > 0 && batch.len() < max {
                    match self.queues[t].pop_front() {
                        Some(req) => {
                            self.queued -= 1;
                            self.deficits[t] -= 1;
                            batch.push(req);
                            progressed = true;
                        }
                        None => break,
                    }
                }
                if batch.len() >= max {
                    break;
                }
            }
            if !progressed {
                break;
            }
        }
        self.cursor = (self.cursor + 1) % n.max(1);
        batch
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fix_core::data::Blob;

    fn req(tenant: usize, arrival: Micros) -> QueuedRequest {
        QueuedRequest {
            arrival_us: arrival,
            tenant,
            thunk: Blob::from_u64(arrival).handle(),
            service_us: 10,
        }
    }

    #[test]
    fn bounded_queues_shed_and_account_per_tenant() {
        let mut q = TenantQueues::new(vec![1, 1], 2);
        assert!(q.offer(req(0, 1)));
        assert!(q.offer(req(0, 2)));
        assert!(!q.offer(req(0, 3)), "third request exceeds capacity 2");
        assert!(q.offer(req(1, 4)), "tenant 1 is isolated from tenant 0");
        assert_eq!(q.offered, vec![3, 1]);
        assert_eq!(q.dropped, vec![1, 0]);
        assert_eq!(q.len(), 3);
    }

    #[test]
    fn precheck_shed_matches_offer_accounting() {
        // The cheap path (at_capacity + shed) and the full offer() path
        // must agree on counters, so callers can shed before building a
        // request without perturbing the telemetry.
        let mut a = TenantQueues::new(vec![1], 2);
        let mut b = TenantQueues::new(vec![1], 2);
        for i in 0..5 {
            a.offer(req(0, i));
            if b.at_capacity(0) {
                b.shed(0);
            } else {
                assert!(b.offer(req(0, i)));
            }
        }
        assert_eq!(a.offered, b.offered);
        assert_eq!(a.dropped, b.dropped);
        assert_eq!(a.len(), b.len());
    }

    #[test]
    fn dispatch_is_fifo_within_a_tenant() {
        let mut q = TenantQueues::new(vec![1], 10);
        for i in 0..5 {
            q.offer(req(0, i));
        }
        let arrivals: Vec<Micros> = q.next_batch(5).iter().map(|r| r.arrival_us).collect();
        assert_eq!(arrivals, vec![0, 1, 2, 3, 4]);
        assert!(q.is_empty());
    }

    #[test]
    fn service_follows_weights_under_backlog() {
        // Tenant 0 (weight 3) and tenant 1 (weight 1), both saturated.
        let mut q = TenantQueues::new(vec![3, 1], 1000);
        for i in 0..400 {
            q.offer(req(0, i));
            q.offer(req(1, i));
        }
        let mut served = [0usize; 2];
        for _ in 0..10 {
            for r in q.next_batch(32) {
                served[r.tenant] += 1;
            }
        }
        assert_eq!(served[0] + served[1], 320);
        let share = served[0] as f64 / 320.0;
        assert!(
            (0.70..0.80).contains(&share),
            "weight-3 tenant got {share:.2} of service"
        );
    }

    #[test]
    fn batches_exhaust_a_lone_tenant() {
        let mut q = TenantQueues::new(vec![2, 5], 100);
        for i in 0..7 {
            q.offer(req(1, i));
        }
        assert_eq!(q.next_batch(32).len(), 7, "no other tenant to wait for");
        assert!(q.next_batch(32).is_empty());
    }
}
