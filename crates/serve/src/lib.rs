//! `fix-serve`: a multi-tenant serving layer over the One Fix API.
//!
//! The ROADMAP's north star is a platform that "serves heavy traffic
//! from millions of users", and the serving-oriented related work
//! (Nexus, SNF) evaluates exactly that regime: open-loop arrivals,
//! per-tenant queues, tail latency under load. This crate closes that
//! gap. It is deliberately *not* a new execution engine — it is a layer
//! over the One Fix API's submission surface
//! ([`fix_core::api::SubmitApi`]), so the same serving run drives
//! `fixpoint::Runtime` natively, or `fix_cluster::ClusterClient` /
//! `fix_baselines::BaselineEvaluator` through the
//! [`BlockingOffload`](fix_core::api::BlockingOffload) adapter,
//! unchanged.
//!
//! Four pieces:
//!
//! * [`loadgen`] — deterministic open-loop arrival processes (seeded
//!   Poisson, uniform, bursts, traces) merged into one global timeline;
//! * [`tenant`] — per-tenant request mixes drawn from the repo's real
//!   workloads (native `add`, FixVM `fib`, `count-string` shards, the
//!   SeBS `dynamic-html` port), minted as ordinary Fix thunks;
//! * [`queue`] — admission control and SLO dispatch: bounded per-tenant
//!   FIFO queues with two-level scheduling — strict [`Priority`] tiers,
//!   earliest-deadline-first within a tier, weighted-fair (deficit
//!   round robin) among equals — plus per-tenant drop/expiry
//!   accounting;
//! * [`telemetry`] — mergeable fixed-bucket log-scale latency
//!   histograms with deterministic p50/p90/p99/p999 extraction.
//!
//! [`serve`] ties them together: a discrete-event simulation schedules
//! the admitted traffic onto `N` virtual drivers in virtual time (the
//! reproducible half), and a pool of `N` real threads then executes the
//! exact same batches through the submission-first
//! [`SubmitApi`] (the real half), each driver keeping a configurable
//! window of batches in flight — submit batch *k+1* while *k* executes.
//! See [`server`] for why the clock/execution split makes the latency
//! tables bit-identical across runs while every result still comes
//! from a real evaluation. Backends without native submission (the
//! cluster client, the baselines) join through
//! [`BlockingOffload`](fix_core::api::BlockingOffload).
//!
//! [`SubmitApi`]: fix_core::api::SubmitApi
//!
//! # Example
//!
//! ```
//! use fix_serve::{serve, ArrivalProcess, RequestKind, ServeConfig, TenantSpec};
//!
//! let cfg = ServeConfig {
//!     seed: 42,
//!     duration_us: 40_000,
//!     drivers: 2,
//!     batch: 8,
//!     queue_capacity: 32,
//!     batch_overhead_us: 5,
//!     inflight: 2,
//!     tenants: vec![
//!         TenantSpec::uniform_mix(
//!             "interactive",
//!             3,
//!             ArrivalProcess::Poisson { rate_rps: 2000.0 },
//!             RequestKind::Add,
//!         ),
//!         TenantSpec::uniform_mix(
//!             "batchy",
//!             1,
//!             ArrivalProcess::Bursts { period_us: 10_000, burst: 16 },
//!             RequestKind::Fib { max_n: 8 },
//!         ),
//!     ],
//! };
//! // The same run works against ClusterClient or BaselineEvaluator.
//! let rt = fixpoint::Runtime::builder().build();
//! let report = serve(&rt, &cfg).unwrap();
//! assert_eq!(report.completed + report.total_dropped(),
//!            report.tenants.iter().map(|t| t.offered).sum::<u64>());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod loadgen;
pub mod queue;
pub mod recovery;
pub mod server;
pub mod telemetry;
pub mod tenant;

pub use fix_core::api::Priority;
pub use loadgen::{Arrival, ArrivalProcess, Micros};
pub use queue::{Dispatch, QueuedRequest, TenantClass, TenantQueues};
pub use recovery::{kill_and_recover, serve_durable, RecoveryOutcome};
pub use server::{
    serve, DriverReport, NodeReport, ScaleEvent, ServeConfig, ServeReport, TenantReport,
};
pub use telemetry::LatencyHistogram;
pub use tenant::{RequestFactory, RequestKind, SloClass, TenantSpec};
