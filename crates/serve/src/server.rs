//! The serving engine: open-loop admission simulation + a real driver
//! pool executing the admitted traffic through the submission-first
//! [`SubmitApi`].
//!
//! A serve run has two synchronized halves:
//!
//! 1. **Virtual time.** Arrivals (from the load generator) flow through
//!    admission and the two-level SLO dispatcher (strict
//!    [`Priority`] tiers, EDF within a tier, deficit round robin among
//!    equals — see [`TenantQueues`] for the discipline) into
//!    batches served by `N` virtual drivers, under a deterministic
//!    per-request service model
//!    ([`RequestKind::cold_service_us`](crate::tenant::RequestKind::cold_service_us)).
//!    Requests whose SLO deadline passes in the queue are *expired* at
//!    dispatch — withdrawn and accounted, never executed. This half
//!    produces the latency/occupancy/drop/expiry telemetry — it is a
//!    discrete-event queueing simulation, so two runs with the same
//!    seed print identical tables (the property CI asserts).
//! 2. **Real execution.** The exact batches the virtual drivers served
//!    are then drained by `N` real OS threads sharing one backend.
//!    Each driver keeps up to [`ServeConfig::inflight`] batches in
//!    flight through [`SubmitApi::submit_with`] — submitting batch
//!    *k+1* while *k* executes, each batch at the priority tier it was
//!    dispatched from (expiry was already decided on the virtual clock,
//!    so the real submissions carry no deadline) — and settles
//!    completions in order with [`BatchTicket::wait`]. With
//!    `inflight: 1` this degenerates to the old blocking `eval_many`
//!    loop; with a wider window, admission overlaps execution (the
//!    decoupling the submission API exists for). Every result (and
//!    error) in the report comes from a real evaluation, with
//!    `Cancelled`/`DeadlineExceeded` outcomes accounted as withdrawn
//!    work rather than guest faults.
//!
//! Splitting the clock from the execution is what reconciles "real
//! threads, real evaluations" with "bit-identical tables": thread
//! interleaving — and the in-flight window — can reorder *work*, but it
//! cannot reorder the virtual timeline, and content-addressed
//! evaluation makes the results order-independent. The wall-clock cost
//! of the execution phase is reported separately
//! ([`ServeReport::execution_wall`]) and deliberately kept out of the
//! deterministic tables.

use crate::loadgen::{merge_timelines, tenant_seed, Arrival, Micros};
use crate::queue::{QueuedRequest, TenantClass, TenantQueues};
use crate::telemetry::LatencyHistogram;
use crate::tenant::{draw_kind, RequestFactory, TenantSpec};
use fix_core::api::{BatchTicket, InvocationApi, Priority, SubmitApi, SubmitOptions};
use fix_core::error::{Error, Result};
use fix_core::handle::Handle;
use fix_obs::EventKind;
use std::collections::{HashSet, VecDeque};

/// Trace id of a request: the first 8 bytes of its thunk handle, so the
/// serve-layer lifecycle events for one request stitch into one span —
/// and line up with the scheduler events for the same handle.
fn req_trace_id(h: Handle) -> u64 {
    u64::from_le_bytes(h.raw()[..8].try_into().expect("handle has 32 bytes"))
}

/// Configuration of one serve run.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Run seed; every random choice (arrivals, mixes, corpora) derives
    /// from it.
    pub seed: u64,
    /// Open-loop generation horizon, in virtual µs.
    pub duration_us: Micros,
    /// Driver pool size: virtual servers in the simulation, real OS
    /// threads in the execution phase.
    pub drivers: usize,
    /// Maximum requests per `eval_many` batch.
    pub batch: usize,
    /// Per-tenant queue bound; arrivals beyond it are shed.
    pub queue_capacity: usize,
    /// Fixed per-batch dispatch overhead, in virtual µs (the one
    /// scheduler-lock round the batch amortizes).
    pub batch_overhead_us: Micros,
    /// In-flight submission window per driver thread in the real
    /// execution phase: how many batches a driver keeps submitted
    /// before it must wait for the oldest. `1` is the blocking driver
    /// pool (submit, wait, repeat); larger windows pipeline — batch
    /// *k+1* is submitted while *k* executes. Affects only wall-clock
    /// execution ([`ServeReport::execution_wall`]); the virtual-time
    /// tables are identical for every window.
    pub inflight: usize,
    /// The tenants.
    pub tenants: Vec<TenantSpec>,
}

impl ServeConfig {
    /// Validates structural invariants (positive pool, batch, horizon,
    /// at least one tenant).
    pub fn validate(&self) -> std::result::Result<(), String> {
        if self.drivers == 0 {
            return Err("driver pool must have at least one driver".into());
        }
        if self.batch == 0 {
            return Err("batch size must be positive".into());
        }
        if self.queue_capacity == 0 {
            return Err("queue capacity must be positive".into());
        }
        if self.duration_us == 0 {
            return Err("duration must be positive".into());
        }
        if self.inflight == 0 {
            return Err("in-flight window must hold at least one batch".into());
        }
        if self.tenants.is_empty() {
            return Err("at least one tenant is required".into());
        }
        for t in &self.tenants {
            if t.weight == 0 {
                return Err(format!("tenant '{}' has zero weight", t.name));
            }
            if t.mix.is_empty() {
                return Err(format!("tenant '{}' has an empty mix", t.name));
            }
        }
        Ok(())
    }
}

/// Per-tenant serving outcome.
pub struct TenantReport {
    /// Tenant name.
    pub name: String,
    /// The tenant's SLO class label (priority tier) for the table.
    pub class: &'static str,
    /// Arrivals generated for this tenant.
    pub offered: u64,
    /// Arrivals admitted past the bounded queue.
    pub admitted: u64,
    /// Arrivals shed at admission.
    pub dropped: u64,
    /// Arrivals refused by an admission *controller* (priced to expire
    /// before they could dispatch — see `fix-adapt`), accounted
    /// separately from capacity sheds: a `dropped` arrival found no
    /// queue space, a `rejected` one was refused on policy. Plain
    /// [`serve`] runs have no controller, so this column is zero there.
    pub rejected: u64,
    /// Requests that completed real evaluation successfully.
    pub ok: u64,
    /// Requests whose real evaluation returned an error.
    pub errors: u64,
    /// Admitted requests expired instead of served: their SLO deadline
    /// passed while they queued, and dispatch withdrew them
    /// (`Error::DeadlineExceeded`) rather than burning a driver on dead
    /// work. Accounted separately from `dropped` (shed at admission).
    pub expired: u64,
    /// Admitted requests whose submission was cancelled mid-flight
    /// (`Error::Cancelled`) — withdrawn work, not an evaluation error.
    pub cancelled: u64,
    /// Virtual queueing + service latency of admitted requests.
    pub latency: LatencyHistogram,
    /// Queue-wait component of each served request's latency (admission
    /// to dispatch), in virtual µs.
    pub queue_wait: LatencyHistogram,
    /// Own-service component (the request's modeled service time).
    pub service: LatencyHistogram,
    /// Batch-fill component: everything else — the fixed per-batch
    /// dispatch overhead plus the co-batched requests' service the
    /// request waits out. For every sample,
    /// `latency = queue_wait + service + fill` exactly.
    pub fill: LatencyHistogram,
}

impl TenantReport {
    /// SLO attainment: the fraction of *offered* requests served to a
    /// successful completion. Capacity sheds, admission rejections,
    /// queue expiries, cancellations, and evaluation errors all count
    /// against it — attainment measures what the platform delivered,
    /// not what it excused.
    pub fn attainment(&self) -> f64 {
        if self.offered == 0 {
            return 0.0;
        }
        self.ok as f64 / self.offered as f64
    }
}

/// One driver-pool resize in an adaptive run's deterministic scaling
/// timeline: at virtual instant `at_us` the controller moved the active
/// driver count `from → to`. Plain [`serve`] runs (fixed pool) carry an
/// empty timeline; `fix-adapt` populates it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScaleEvent {
    /// Virtual instant of the resize decision, µs.
    pub at_us: Micros,
    /// Active drivers before the resize.
    pub from: usize,
    /// Active drivers after the resize.
    pub to: usize,
}

/// Per-driver serving outcome.
pub struct DriverReport {
    /// Batches this driver served.
    pub batches: u64,
    /// Requests this driver served.
    pub requests: u64,
    /// Virtual µs spent serving (vs. idle).
    pub busy_us: Micros,
    /// Virtual latency recorded by this driver alone (merging these
    /// across drivers equals the union of tenant histograms).
    pub latency: LatencyHistogram,
}

/// Per-node serving outcome for multi-node (dispatcher) runs.
///
/// Populated by `fix-dispatch`; a single-backend [`serve`] run leaves
/// [`ServeReport::nodes`] empty. Every field is derived from the
/// virtual clock, so the node table is part of the deterministic
/// (bit-identical) report surface.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct NodeReport {
    /// Requests routed to this node (admitted onto its queues).
    pub routed: u64,
    /// Requests this node served to completion.
    pub served: u64,
    /// Admitted requests that expired on this node's queues.
    pub expired: u64,
    /// Placements (admissions + failover re-routes) that found their
    /// thunk already memoized on this node, so
    /// `warm_hits + cold_misses == routed + rerouted_in`.
    pub warm_hits: u64,
    /// Placements this node had to price as cold evaluations.
    pub cold_misses: u64,
    /// Requests whose rendezvous target was this node but which the
    /// load-based spill diverted elsewhere.
    pub spilled_away: u64,
    /// Requests re-queued onto this node after another node was killed.
    pub rerouted_in: u64,
    /// Virtual µs this node's drivers spent serving.
    pub busy_us: Micros,
    /// Times this node was killed during the run.
    pub kills: u32,
    /// Times this node was restarted during the run.
    pub restarts: u32,
}

impl NodeReport {
    /// Warm-memoization hit rate among served requests.
    pub fn hit_rate(&self) -> f64 {
        let total = self.warm_hits + self.cold_misses;
        if total == 0 {
            return 0.0;
        }
        self.warm_hits as f64 / total as f64
    }

    /// SLO attainment on this node: served fraction of routed work
    /// (the complement expired on its queues).
    pub fn attainment(&self) -> f64 {
        if self.routed == 0 {
            return 0.0;
        }
        self.served as f64 / self.routed as f64
    }
}

/// The outcome of one serve run.
pub struct ServeReport {
    /// Per-tenant rows, in configuration order.
    pub tenants: Vec<TenantReport>,
    /// Per-driver rows.
    pub drivers: Vec<DriverReport>,
    /// Per-node rows for multi-node (dispatcher) runs; empty for a
    /// single-backend [`serve`] run.
    pub nodes: Vec<NodeReport>,
    /// The deterministic driver-pool scaling timeline, in virtual-time
    /// order. Empty for fixed-pool [`serve`] runs; an adaptive run
    /// (`fix-adapt`) records every controller resize here, and the
    /// timeline prints with the table — it is part of the bit-identical
    /// report surface.
    pub scaling: Vec<ScaleEvent>,
    /// Virtual end-to-end makespan (origin to last completion).
    pub makespan_us: Micros,
    /// Requests that completed (ok + errors, real evaluations).
    pub completed: u64,
    /// Wall-clock duration of the real execution phase (the driver
    /// threads draining their plans through `submit_many`/`wait`).
    /// Machine-dependent by nature, so it is *not* part of the
    /// deterministic [`Display`](std::fmt::Display) table — it exists
    /// for the pipelined-vs-blocking throughput comparison the
    /// `serve_throughput` bench reports.
    pub execution_wall: std::time::Duration,
}

impl ServeReport {
    /// Served request throughput over the virtual makespan, in
    /// requests/second.
    pub fn throughput_rps(&self) -> f64 {
        if self.makespan_us == 0 {
            return 0.0;
        }
        self.completed as f64 * 1e6 / self.makespan_us as f64
    }

    /// Real-execution throughput in requests/second of wall-clock time
    /// (see [`execution_wall`](Self::execution_wall)); this is the
    /// number the in-flight window moves.
    pub fn wall_rps(&self) -> f64 {
        let secs = self.execution_wall.as_secs_f64();
        if secs == 0.0 {
            return 0.0;
        }
        self.completed as f64 / secs
    }

    /// Union latency across all tenants (equivalently: across all
    /// drivers — the merge-equality the telemetry tests pin down).
    pub fn total_latency(&self) -> LatencyHistogram {
        let mut h = LatencyHistogram::new();
        for d in &self.drivers {
            h.merge(&d.latency);
        }
        h
    }

    /// Total arrivals shed across tenants.
    pub fn total_dropped(&self) -> u64 {
        self.tenants.iter().map(|t| t.dropped).sum()
    }

    /// Total arrivals refused by an admission controller.
    pub fn total_rejected(&self) -> u64 {
        self.tenants.iter().map(|t| t.rejected).sum()
    }

    /// Total admitted requests expired (deadline passed in queue).
    pub fn total_expired(&self) -> u64 {
        self.tenants.iter().map(|t| t.expired).sum()
    }

    /// Run-wide SLO attainment: successfully served fraction of all
    /// offered arrivals (see [`TenantReport::attainment`]).
    pub fn attainment(&self) -> f64 {
        let offered: u64 = self.tenants.iter().map(|t| t.offered).sum();
        if offered == 0 {
            return 0.0;
        }
        let ok: u64 = self.tenants.iter().map(|t| t.ok).sum();
        ok as f64 / offered as f64
    }

    /// Total admitted requests cancelled mid-flight.
    pub fn total_cancelled(&self) -> u64 {
        self.tenants.iter().map(|t| t.cancelled).sum()
    }

    /// The deterministic latency decomposition table: per tenant, how
    /// much of the end-to-end latency was queue wait, own service, and
    /// batch fill (dispatch overhead + co-batched service). All virtual
    /// µs, so the table is bit-identical across runs and backends for
    /// the same seed.
    pub fn decomposition_table(&self) -> String {
        use std::fmt::Write;
        let mut s = String::new();
        let _ = writeln!(s, "latency decomposition (virtual µs)");
        let _ = writeln!(
            s,
            "{:<12} {:>8} {:>9} {:>9} {:>9} {:>9} {:>9} {:>9}",
            "tenant",
            "served",
            "wait p50",
            "wait p99",
            "svc p50",
            "svc p99",
            "fill p50",
            "fill p99"
        );
        for t in &self.tenants {
            let _ = writeln!(
                s,
                "{:<12} {:>8} {:>9} {:>9} {:>9} {:>9} {:>9} {:>9}",
                t.name,
                t.queue_wait.count(),
                t.queue_wait.quantile(0.50),
                t.queue_wait.quantile(0.99),
                t.service.quantile(0.50),
                t.service.quantile(0.99),
                t.fill.quantile(0.50),
                t.fill.quantile(0.99),
            );
        }
        s
    }
}

impl std::fmt::Display for ServeReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let total = self.total_latency();
        let (p50, p90, p99, p999) = total.tail_summary();
        writeln!(
            f,
            "served {} requests in {:.3} s virtual ({:.0} req/s), {} dropped, {} rejected, {} expired, {} cancelled",
            self.completed,
            self.makespan_us as f64 / 1e6,
            self.throughput_rps(),
            self.total_dropped(),
            self.total_rejected(),
            self.total_expired(),
            self.total_cancelled(),
        )?;
        writeln!(
            f,
            "latency µs: p50 {p50}  p90 {p90}  p99 {p99}  p999 {p999}  max {}",
            total.max()
        )?;
        writeln!(
            f,
            "{:<12} {:>8} {:>8} {:>8} {:>7} {:>7} {:>7} {:>6} {:>7} {:>6} {:>8} {:>8} {:>8} {:>8}",
            "tenant",
            "class",
            "offered",
            "admitted",
            "dropped",
            "rejectd",
            "ok",
            "err",
            "expired",
            "cancl",
            "p50",
            "p99",
            "p999",
            "mean"
        )?;
        for t in &self.tenants {
            let (tp50, _, tp99, tp999) = t.latency.tail_summary();
            writeln!(
                f,
                "{:<12} {:>8} {:>8} {:>8} {:>7} {:>7} {:>7} {:>6} {:>7} {:>6} {:>8} {:>8} {:>8} {:>8.0}",
                t.name,
                t.class,
                t.offered,
                t.admitted,
                t.dropped,
                t.rejected,
                t.ok,
                t.errors,
                t.expired,
                t.cancelled,
                tp50,
                tp99,
                tp999,
                t.latency.mean(),
            )?;
        }
        for s in &self.scaling {
            writeln!(
                f,
                "scale @{:>9} µs: {} -> {} drivers",
                s.at_us, s.from, s.to
            )?;
        }
        for (i, d) in self.drivers.iter().enumerate() {
            writeln!(
                f,
                "driver {i}: {} batches, {} requests, occupancy {:.0}%",
                d.batches,
                d.requests,
                if self.makespan_us == 0 {
                    0.0
                } else {
                    d.busy_us as f64 * 100.0 / self.makespan_us as f64
                },
            )?;
        }
        if !self.nodes.is_empty() {
            writeln!(
                f,
                "{:<6} {:>8} {:>8} {:>8} {:>6} {:>6} {:>7} {:>7} {:>6} {:>7} {:>6} {:>6}",
                "node",
                "routed",
                "served",
                "expired",
                "warm",
                "cold",
                "hit%",
                "attain%",
                "occ%",
                "spill",
                "kills",
                "rstrt"
            )?;
            for (i, n) in self.nodes.iter().enumerate() {
                writeln!(
                    f,
                    "n{i:<5} {:>8} {:>8} {:>8} {:>6} {:>6} {:>6.1}% {:>6.1}% {:>5.0}% {:>7} {:>6} {:>6}",
                    n.routed,
                    n.served,
                    n.expired,
                    n.warm_hits,
                    n.cold_misses,
                    n.hit_rate() * 100.0,
                    n.attainment() * 100.0,
                    if self.makespan_us == 0 {
                        0.0
                    } else {
                        n.busy_us as f64 * 100.0 / self.makespan_us as f64
                    },
                    n.spilled_away,
                    n.kills,
                    n.restarts,
                )?;
            }
        }
        Ok(())
    }
}

/// Per-tenant outcome counters one driver thread accumulates while
/// settling its executed batches.
struct Tally {
    ok: Vec<u64>,
    errors: Vec<u64>,
    expired: Vec<u64>,
    cancelled: Vec<u64>,
}

impl Tally {
    fn new(n: usize) -> Tally {
        Tally {
            ok: vec![0; n],
            errors: vec![0; n],
            expired: vec![0; n],
            cancelled: vec![0; n],
        }
    }

    fn absorb(&mut self, other: &Tally) {
        for t in 0..self.ok.len() {
            self.ok[t] += other.ok[t];
            self.errors[t] += other.errors[t];
            self.expired[t] += other.expired[t];
            self.cancelled[t] += other.cancelled[t];
        }
    }
}

/// A virtual driver's planned batch: the requests it served, in order,
/// and the SLO tier the whole batch was assembled from (two-level
/// dispatch never mixes tiers in one batch).
struct PlannedBatch {
    requests: Vec<QueuedRequest>,
    priority: Priority,
}

/// Runs the full serve pipeline against `rt`: generate traffic, admit
/// and schedule it in virtual time, then execute the planned batches on
/// a real driver-thread pool through the submission API (each driver
/// keeps up to [`ServeConfig::inflight`] batches in flight).
///
/// The backend must implement [`SubmitApi`]: `fixpoint::Runtime` does
/// natively, and any plain blocking backend (the cluster client, the
/// baselines) is lifted with
/// [`BlockingOffload`](fix_core::api::BlockingOffload).
///
/// # Examples
///
/// ```
/// use fix_serve::{ArrivalProcess, RequestKind, ServeConfig, TenantSpec};
///
/// let cfg = ServeConfig {
///     seed: 7,
///     duration_us: 50_000,
///     drivers: 2,
///     batch: 8,
///     queue_capacity: 64,
///     batch_overhead_us: 5,
///     inflight: 2,
///     tenants: vec![TenantSpec::uniform_mix(
///         "t0",
///         1,
///         ArrivalProcess::Uniform { period_us: 500 },
///         RequestKind::Add,
///     )],
/// };
/// let rt = fixpoint::Runtime::builder().build();
/// let report = fix_serve::serve(&rt, &cfg).unwrap();
/// assert_eq!(report.completed, 100);
/// assert_eq!(report.total_dropped(), 0);
/// ```
pub fn serve<A: SubmitApi + InvocationApi + Send + Sync>(
    rt: &A,
    cfg: &ServeConfig,
) -> Result<ServeReport> {
    cfg.validate().map_err(|message| fix_core::Error::Backend {
        backend: "serve",
        message,
    })?;
    let factory = RequestFactory::install(rt, &cfg.tenants, cfg.seed)?;

    // ------------------------------------------------------------------
    // Load generation: per-tenant arrival streams, merged and minted.
    // ------------------------------------------------------------------
    let per_tenant: Vec<Vec<Micros>> = cfg
        .tenants
        .iter()
        .enumerate()
        .map(|(i, t)| {
            t.arrivals
                .generate(tenant_seed(cfg.seed, i, 0), cfg.duration_us)
        })
        .collect();
    let timeline = merge_timelines(per_tenant);

    // ------------------------------------------------------------------
    // Virtual-time admission + dispatch simulation.
    // ------------------------------------------------------------------
    let classes: Vec<TenantClass> = cfg
        .tenants
        .iter()
        .map(|t| TenantClass {
            weight: t.weight,
            priority: t.slo.priority,
            deadline_us: t.slo.deadline_us,
        })
        .collect();
    let mut queues = TenantQueues::new(classes, cfg.queue_capacity);
    let mut free: Vec<Micros> = vec![0; cfg.drivers];
    let mut plans: Vec<Vec<PlannedBatch>> = (0..cfg.drivers).map(|_| Vec::new()).collect();
    let mut drivers: Vec<DriverReport> = (0..cfg.drivers)
        .map(|_| DriverReport {
            batches: 0,
            requests: 0,
            busy_us: 0,
            latency: LatencyHistogram::new(),
        })
        .collect();
    let mut tenant_hists: Vec<LatencyHistogram> = (0..cfg.tenants.len())
        .map(|_| LatencyHistogram::new())
        .collect();
    let mut wait_hists = tenant_hists.clone();
    let mut service_hists = tenant_hists.clone();
    let mut fill_hists = tenant_hists.clone();
    // One relaxed load for the whole run: the virtual loop either
    // traces every lifecycle event or none (toggling mid-run would
    // break cross-run comparability anyway).
    let tracing = fix_obs::tracing_enabled();
    // Live per-tenant queue-depth gauges in the process-wide registry,
    // updated at every dispatch sample.
    let depth_gauges: Vec<fix_obs::Gauge> = cfg
        .tenants
        .iter()
        .map(|t| fix_obs::global().gauge(&format!("serve.{}.queue_depth", t.name)))
        .collect();
    let mut admitted_per_tenant = vec![0u64; cfg.tenants.len()];
    let mut expired_per_tenant = vec![0u64; cfg.tenants.len()];
    let mut seen: HashSet<Handle> = HashSet::new();
    let mut makespan: Micros = 0;

    let offer = |queues: &mut TenantQueues,
                 seen: &mut HashSet<Handle>,
                 admitted: &mut [u64],
                 a: &Arrival|
     -> Result<()> {
        // Capacity check before any per-request work: a shed arrival
        // must cost O(1) — minting a thunk builds and stores real
        // objects on the backend, exactly what overload protection is
        // supposed to avoid.
        if queues.at_capacity(a.tenant) {
            queues.shed(a.tenant);
            if tracing {
                fix_obs::emit(
                    EventKind::ServeShed,
                    a.time_us,
                    0,
                    a.tenant as u32,
                    queues.tenant_depth(a.tenant) as u32,
                );
            }
            return Ok(());
        }
        let spec = &cfg.tenants[a.tenant];
        let kind = draw_kind(&spec.mix, tenant_seed(cfg.seed, a.tenant, 1), a.seq);
        let thunk = factory.mint(rt, a.tenant, a.seq, kind)?;
        // First *admitted* sight of a thunk pays the cold service time;
        // repeats are warm — mirroring the backend's memoization (a shed
        // request never executed, so it warms nothing).
        let service_us = if seen.contains(&thunk) {
            kind.warm_service_us()
        } else {
            kind.cold_service_us()
        };
        if queues.offer(QueuedRequest {
            arrival_us: a.time_us,
            tenant: a.tenant,
            seq: a.seq,
            kind,
            thunk,
            service_us,
            deadline_us: spec.slo.deadline_us.map(|d| a.time_us + d),
        }) {
            admitted[a.tenant] += 1;
            seen.insert(thunk);
            if tracing {
                fix_obs::emit(
                    EventKind::ServeAdmit,
                    a.time_us,
                    req_trace_id(thunk),
                    a.tenant as u32,
                    queues.tenant_depth(a.tenant) as u32,
                );
            }
        }
        Ok(())
    };

    let mut next = 0usize; // Next unadmitted arrival in the timeline.
    loop {
        // The earliest-free driver serves next (ties to the lowest
        // index, keeping the event order deterministic).
        let d = (0..cfg.drivers)
            .min_by_key(|&i| (free[i], i))
            .expect("pool is non-empty");
        let now = free[d];
        // Everything that arrived while drivers were busy is offered in
        // arrival order before the next dispatch decision.
        while next < timeline.len() && timeline[next].time_us <= now {
            offer(
                &mut queues,
                &mut seen,
                &mut admitted_per_tenant,
                &timeline[next],
            )?;
            next += 1;
        }
        if queues.is_empty() {
            if next >= timeline.len() {
                break; // Drained: the run is over.
            }
            // Idle until the next arrival instant (admit every arrival
            // stamped with that exact time before dispatching). Every
            // driver already free is idle across the gap, so virtual
            // time advances for all of them — otherwise a stale driver
            // clock could "serve" a request before it arrived.
            let t = timeline[next].time_us;
            while next < timeline.len() && timeline[next].time_us == t {
                offer(
                    &mut queues,
                    &mut seen,
                    &mut admitted_per_tenant,
                    &timeline[next],
                )?;
                next += 1;
            }
            for f in free.iter_mut() {
                *f = (*f).max(t);
            }
            continue;
        }
        let dispatch = queues.next_dispatch(cfg.batch, now);
        // Deadline-passed requests were withdrawn at dispatch: they
        // consume no service and record no latency — dead work the
        // platform refused to execute, accounted as expired.
        for r in &dispatch.expired {
            expired_per_tenant[r.tenant] += 1;
            if tracing {
                fix_obs::emit(
                    EventKind::ServeExpire,
                    now,
                    req_trace_id(r.thunk),
                    r.tenant as u32,
                    0,
                );
            }
        }
        let batch = dispatch.requests;
        if batch.is_empty() {
            // Expiry emptied the backlog; re-check arrivals/idle state.
            continue;
        }
        let service: Micros =
            cfg.batch_overhead_us + batch.iter().map(|r| r.service_us).sum::<Micros>();
        let done = now + service;
        // Queue-depth sample at dispatch: one reading per tenant the
        // batch drew from, after the batch's pops.
        let mut sampled: Vec<usize> = batch.iter().map(|r| r.tenant).collect();
        sampled.sort_unstable();
        sampled.dedup();
        for &t in &sampled {
            let depth = queues.tenant_depth(t);
            depth_gauges[t].set(depth as i64);
            if tracing {
                fix_obs::emit(EventKind::ServeQueueDepth, now, 0, t as u32, depth as u32);
            }
        }
        for r in &batch {
            debug_assert!(r.arrival_us <= now, "service must not precede arrival");
            let latency = done - r.arrival_us;
            // The decomposition: latency = wait + own service + fill
            // (dispatch overhead + co-batched service), exactly.
            let wait = now - r.arrival_us;
            let fill = service - r.service_us;
            tenant_hists[r.tenant].record(latency);
            wait_hists[r.tenant].record(wait);
            service_hists[r.tenant].record(r.service_us);
            fill_hists[r.tenant].record(fill);
            drivers[d].latency.record(latency);
            if tracing {
                let id = req_trace_id(r.thunk);
                let clamp = |v: Micros| v.min(u32::MAX as Micros) as u32;
                fix_obs::emit(
                    EventKind::ServeDispatch,
                    now,
                    id,
                    r.tenant as u32,
                    clamp(wait),
                );
                fix_obs::emit(
                    EventKind::ServeComplete,
                    done,
                    id,
                    r.tenant as u32,
                    clamp(latency),
                );
            }
        }
        drivers[d].batches += 1;
        drivers[d].requests += batch.len() as u64;
        drivers[d].busy_us += service;
        free[d] = done;
        makespan = makespan.max(done);
        plans[d].push(PlannedBatch {
            requests: batch,
            priority: dispatch.priority,
        });
    }

    // ------------------------------------------------------------------
    // Real execution: one OS thread per driver, a window of up to
    // `cfg.inflight` submitted batches each. Submission returns
    // immediately, so batch k+1 enters the backend while batch k is
    // still executing; completions settle oldest-first.
    // ------------------------------------------------------------------
    let exec_start = std::time::Instant::now();
    let outcomes: Vec<Tally> = std::thread::scope(|scope| {
        let handles: Vec<_> = plans
            .iter()
            .map(|plan| {
                let n_tenants = cfg.tenants.len();
                let inflight = cfg.inflight;
                scope.spawn(move || {
                    let mut tally = Tally::new(n_tenants);
                    let settle =
                        |batch: &PlannedBatch, results: Vec<Result<Handle>>, tally: &mut Tally| {
                            for (r, req) in results.iter().zip(&batch.requests) {
                                match r {
                                    Ok(_) => tally.ok[req.tenant] += 1,
                                    // Withdrawn work is accounted as
                                    // withdrawn, not as a guest fault.
                                    Err(Error::DeadlineExceeded { .. }) => {
                                        tally.expired[req.tenant] += 1
                                    }
                                    Err(Error::Cancelled) => tally.cancelled[req.tenant] += 1,
                                    Err(_) => tally.errors[req.tenant] += 1,
                                }
                            }
                        };
                    let mut window: VecDeque<(&PlannedBatch, BatchTicket)> =
                        VecDeque::with_capacity(inflight);
                    for batch in plan {
                        while window.len() >= inflight {
                            let (done, ticket) = window.pop_front().expect("window is non-empty");
                            settle(done, ticket.wait(), &mut tally);
                        }
                        let thunks: Vec<Handle> = batch.requests.iter().map(|r| r.thunk).collect();
                        // Expiry was already decided at (virtual) dispatch
                        // time, so the real batch carries no deadline —
                        // only the tier it was assembled from.
                        let options = SubmitOptions::default().with_priority(batch.priority);
                        window.push_back((batch, rt.submit_with(&thunks, options)));
                    }
                    while let Some((done, ticket)) = window.pop_front() {
                        settle(done, ticket.wait(), &mut tally);
                    }
                    tally
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("driver thread must not panic"))
            .collect()
    });
    let execution_wall = exec_start.elapsed();

    let mut totals = Tally::new(cfg.tenants.len());
    for tally in outcomes {
        totals.absorb(&tally);
    }
    let ok = totals.ok;
    let errors = totals.errors;
    let cancelled = totals.cancelled;
    let expired_exec = totals.expired;

    let tenants: Vec<TenantReport> = cfg
        .tenants
        .iter()
        .enumerate()
        .map(|(i, t)| {
            // Publish the tenant's latency telemetry into the
            // process-wide registry (accumulating across serve runs)
            // under its serving name.
            fix_obs::global()
                .histogram(&format!("serve.{}.latency_us", t.name))
                .merge_from(&tenant_hists[i]);
            TenantReport {
                name: t.name.clone(),
                class: t.slo.priority.label(),
                offered: queues.offered[i],
                admitted: admitted_per_tenant[i],
                dropped: queues.dropped[i],
                rejected: queues.rejected[i],
                ok: ok[i],
                errors: errors[i],
                expired: expired_per_tenant[i] + expired_exec[i],
                cancelled: cancelled[i],
                latency: std::mem::take(&mut tenant_hists[i]),
                queue_wait: std::mem::take(&mut wait_hists[i]),
                service: std::mem::take(&mut service_hists[i]),
                fill: std::mem::take(&mut fill_hists[i]),
            }
        })
        .collect();
    let completed = tenants.iter().map(|t| t.ok + t.errors).sum();
    Ok(ServeReport {
        tenants,
        drivers,
        nodes: Vec::new(),
        scaling: Vec::new(),
        makespan_us: makespan,
        completed,
        execution_wall,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loadgen::ArrivalProcess;
    use crate::tenant::RequestKind;
    use fixpoint::Runtime;

    fn two_tenant_cfg(seed: u64) -> ServeConfig {
        ServeConfig {
            seed,
            duration_us: 100_000,
            drivers: 3,
            batch: 16,
            queue_capacity: 32,
            batch_overhead_us: 5,
            inflight: 2,
            tenants: vec![
                TenantSpec {
                    name: "poisson".into(),
                    weight: 2,
                    arrivals: ArrivalProcess::Poisson { rate_rps: 3000.0 },
                    mix: vec![(RequestKind::Add, 3), (RequestKind::Fib { max_n: 8 }, 1)],
                    slo: crate::tenant::SloClass::default(),
                },
                TenantSpec::uniform_mix(
                    "bursty",
                    1,
                    ArrivalProcess::Bursts {
                        period_us: 20_000,
                        burst: 64,
                    },
                    RequestKind::Add,
                ),
            ],
        }
    }

    #[test]
    fn serve_accounts_for_every_arrival() {
        let rt = Runtime::builder().build();
        let report = serve(&rt, &two_tenant_cfg(11)).unwrap();
        for t in &report.tenants {
            assert_eq!(t.offered, t.admitted + t.dropped, "tenant {}", t.name);
            assert_eq!(t.admitted, t.ok + t.errors, "tenant {}", t.name);
            assert_eq!(t.admitted, t.latency.count(), "tenant {}", t.name);
            assert_eq!(t.errors, 0, "all minted requests are valid");
        }
        assert!(report.completed > 0);
        assert!(report.makespan_us > 0);
        // Driver-side and tenant-side accounting agree.
        let driver_reqs: u64 = report.drivers.iter().map(|d| d.requests).sum();
        assert_eq!(driver_reqs, report.completed);
        let mut tenant_union = LatencyHistogram::new();
        for t in &report.tenants {
            tenant_union.merge(&t.latency);
        }
        assert_eq!(
            tenant_union.tail_summary(),
            report.total_latency().tail_summary(),
            "per-driver merge must equal per-tenant merge"
        );
    }

    #[test]
    fn same_seed_same_tables() {
        let report_a = serve(&Runtime::builder().build(), &two_tenant_cfg(5)).unwrap();
        let report_b = serve(&Runtime::builder().build(), &two_tenant_cfg(5)).unwrap();
        assert_eq!(report_a.to_string(), report_b.to_string());
        let report_c = serve(&Runtime::builder().build(), &two_tenant_cfg(6)).unwrap();
        assert_ne!(
            report_a.to_string(),
            report_c.to_string(),
            "a different seed must shift the traffic"
        );
    }

    #[test]
    fn overload_sheds_deterministically() {
        // One driver, tiny queue, heavy bursts: shedding is guaranteed.
        let cfg = ServeConfig {
            seed: 3,
            duration_us: 50_000,
            drivers: 1,
            batch: 4,
            queue_capacity: 8,
            batch_overhead_us: 10,
            inflight: 1,
            tenants: vec![TenantSpec::uniform_mix(
                "flood",
                1,
                ArrivalProcess::Bursts {
                    period_us: 10_000,
                    burst: 200,
                },
                RequestKind::SebsHtml { users: 2 },
            )],
        };
        let rt = Runtime::builder().build();
        let report = serve(&rt, &cfg).unwrap();
        assert!(report.total_dropped() > 0, "overload must shed");
        let again = serve(&Runtime::builder().build(), &cfg).unwrap();
        assert_eq!(report.total_dropped(), again.total_dropped());
        assert_eq!(report.to_string(), again.to_string());
    }

    #[test]
    fn config_validation_rejects_degenerate_setups() {
        let mut cfg = two_tenant_cfg(1);
        cfg.drivers = 0;
        let rt = Runtime::builder().build();
        assert!(serve(&rt, &cfg).is_err());
        let mut cfg = two_tenant_cfg(1);
        cfg.tenants.clear();
        assert!(serve(&rt, &cfg).is_err());
        let mut cfg = two_tenant_cfg(1);
        cfg.tenants[0].mix.clear();
        assert!(serve(&rt, &cfg).is_err());
        let mut cfg = two_tenant_cfg(1);
        cfg.inflight = 0;
        assert!(serve(&rt, &cfg).is_err());
    }

    /// The in-flight window changes only wall-clock execution, never
    /// the deterministic tables or the per-tenant accounting.
    #[test]
    fn pipelined_execution_matches_blocking() {
        let blocking = ServeConfig {
            inflight: 1,
            ..two_tenant_cfg(21)
        };
        let pipelined = ServeConfig {
            inflight: 4,
            ..two_tenant_cfg(21)
        };
        let a = serve(&Runtime::builder().build(), &blocking).unwrap();
        let b = serve(&Runtime::builder().build(), &pipelined).unwrap();
        assert_eq!(
            a.to_string(),
            b.to_string(),
            "the window must not perturb the virtual tables"
        );
        assert!(a.execution_wall > std::time::Duration::ZERO);
        assert!(b.execution_wall > std::time::Duration::ZERO);
        assert!(b.wall_rps() > 0.0);
    }

    #[test]
    fn runs_identically_on_the_cluster_backend() {
        use fix_core::api::BlockingOffload;
        use std::sync::Arc;
        let cfg = ServeConfig {
            duration_us: 30_000,
            ..two_tenant_cfg(9)
        };
        let rt_report = serve(&Runtime::builder().build(), &cfg).unwrap();
        // A plain blocking backend joins the submission-first driver
        // pool through the offload adapter (threads = drivers keeps the
        // backend as parallel as the old direct eval_many calls).
        let cc = Arc::new(fix_cluster::ClusterClient::builder().build().unwrap());
        let off = BlockingOffload::with_threads(Arc::clone(&cc), cfg.drivers);
        let cc_report = serve(&off, &cfg).unwrap();
        // The virtual-time telemetry is backend-independent; so are the
        // (content-addressed) evaluation outcomes.
        assert_eq!(rt_report.to_string(), cc_report.to_string());
        assert!(!cc.reports().is_empty(), "real cluster runs were recorded");
    }

    /// Two-level SLO dispatch: the latency tier preempts the batch
    /// tier, deterministically, and the accounting identity extends to
    /// the new expired/cancelled columns.
    #[test]
    fn slo_tiers_are_deterministic_and_ordered() {
        use crate::tenant::SloClass;
        let cfg = ServeConfig {
            seed: 33,
            duration_us: 120_000,
            drivers: 2,
            batch: 16,
            queue_capacity: 128,
            batch_overhead_us: 5,
            inflight: 2,
            tenants: vec![
                TenantSpec::uniform_mix(
                    "frontend",
                    1,
                    ArrivalProcess::Poisson { rate_rps: 2000.0 },
                    RequestKind::Add,
                )
                .with_slo(SloClass::latency(50_000)),
                TenantSpec::uniform_mix(
                    "reports",
                    1,
                    ArrivalProcess::Bursts {
                        period_us: 30_000,
                        burst: 100,
                    },
                    RequestKind::Fib { max_n: 8 },
                )
                .with_slo(SloClass::batch()),
            ],
        };
        let report = serve(&Runtime::builder().build(), &cfg).unwrap();
        let again = serve(&Runtime::builder().build(), &cfg).unwrap();
        assert_eq!(
            report.to_string(),
            again.to_string(),
            "SLO dispatch must stay deterministic"
        );
        for t in &report.tenants {
            assert_eq!(t.offered, t.admitted + t.dropped, "tenant {}", t.name);
            assert_eq!(
                t.admitted,
                t.ok + t.errors + t.expired + t.cancelled,
                "tenant {}",
                t.name
            );
        }
        let (_, _, frontend_p99, _) = report.tenants[0].latency.tail_summary();
        let (_, _, reports_p99, _) = report.tenants[1].latency.tail_summary();
        assert!(
            frontend_p99 < reports_p99,
            "the latency tier (p99 {frontend_p99}) must beat the batch tier (p99 {reports_p99})"
        );
    }

    /// A tenant whose own backlog blows through its deadline sees the
    /// overflow *expired* at dispatch — withdrawn and accounted, never
    /// executed — not served late and not conflated with sheds.
    #[test]
    fn deadline_expiry_withdraws_queued_requests() {
        use crate::tenant::SloClass;
        let cfg = ServeConfig {
            seed: 9,
            duration_us: 60_000,
            drivers: 1,
            batch: 8,
            queue_capacity: 256,
            batch_overhead_us: 5,
            inflight: 1,
            // Every Add request is distinct (never warms), so a burst
            // of 120 cold adds piles ~400 µs of backlog behind a
            // 100 µs deadline: the tail must expire.
            tenants: vec![TenantSpec::uniform_mix(
                "spiky",
                1,
                ArrivalProcess::Bursts {
                    period_us: 20_000,
                    burst: 120,
                },
                RequestKind::Add,
            )
            .with_slo(SloClass::latency(100))],
        };
        let rt = Runtime::builder().build();
        let report = serve(&rt, &cfg).unwrap();
        let t = &report.tenants[0];
        assert!(t.expired > 0, "the burst must overrun its deadline");
        assert_eq!(t.admitted, t.ok + t.errors + t.expired + t.cancelled);
        assert_eq!(t.errors, 0);
        assert_eq!(
            t.latency.count(),
            t.ok,
            "expired requests record no latency sample"
        );
        // Expired requests were withdrawn before execution: the only
        // distinct procedures that ran are the served (cold) renders.
        let again = serve(&Runtime::builder().build(), &cfg).unwrap();
        assert_eq!(report.to_string(), again.to_string());
    }
}
