//! The serving engine: open-loop admission simulation + a real driver
//! pool executing the admitted traffic through the submission-first
//! [`SubmitApi`].
//!
//! A serve run has two synchronized halves:
//!
//! 1. **Virtual time.** Arrivals (from the load generator) flow through
//!    admission and the weighted-fair queues into batches served by `N`
//!    virtual drivers, under a deterministic per-request service model
//!    ([`RequestKind::cold_service_us`](crate::tenant::RequestKind::cold_service_us)).
//!    This half produces the
//!    latency/occupancy/drop telemetry — it is a discrete-event
//!    queueing simulation, so two runs with the same seed print
//!    identical tables (the property CI asserts).
//! 2. **Real execution.** The exact batches the virtual drivers served
//!    are then drained by `N` real OS threads sharing one backend.
//!    Each driver keeps up to [`ServeConfig::inflight`] batches in
//!    flight through `submit_many` — submitting batch *k+1* while *k*
//!    executes — and settles completions in order with
//!    [`BatchTicket::wait`]. With `inflight: 1` this degenerates to the
//!    old blocking `eval_many` loop; with a wider window, admission
//!    overlaps execution (the decoupling the submission API exists
//!    for). Every result (and error) in the report comes from a real
//!    evaluation.
//!
//! Splitting the clock from the execution is what reconciles "real
//! threads, real evaluations" with "bit-identical tables": thread
//! interleaving — and the in-flight window — can reorder *work*, but it
//! cannot reorder the virtual timeline, and content-addressed
//! evaluation makes the results order-independent. The wall-clock cost
//! of the execution phase is reported separately
//! ([`ServeReport::execution_wall`]) and deliberately kept out of the
//! deterministic tables.

use crate::loadgen::{merge_timelines, tenant_seed, Arrival, Micros};
use crate::queue::{QueuedRequest, TenantQueues};
use crate::telemetry::LatencyHistogram;
use crate::tenant::{draw_kind, RequestFactory, TenantSpec};
use fix_core::api::{BatchTicket, InvocationApi, SubmitApi};
use fix_core::error::Result;
use fix_core::handle::Handle;
use std::collections::{HashSet, VecDeque};

/// Configuration of one serve run.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Run seed; every random choice (arrivals, mixes, corpora) derives
    /// from it.
    pub seed: u64,
    /// Open-loop generation horizon, in virtual µs.
    pub duration_us: Micros,
    /// Driver pool size: virtual servers in the simulation, real OS
    /// threads in the execution phase.
    pub drivers: usize,
    /// Maximum requests per `eval_many` batch.
    pub batch: usize,
    /// Per-tenant queue bound; arrivals beyond it are shed.
    pub queue_capacity: usize,
    /// Fixed per-batch dispatch overhead, in virtual µs (the one
    /// scheduler-lock round the batch amortizes).
    pub batch_overhead_us: Micros,
    /// In-flight submission window per driver thread in the real
    /// execution phase: how many batches a driver keeps submitted
    /// before it must wait for the oldest. `1` is the blocking driver
    /// pool (submit, wait, repeat); larger windows pipeline — batch
    /// *k+1* is submitted while *k* executes. Affects only wall-clock
    /// execution ([`ServeReport::execution_wall`]); the virtual-time
    /// tables are identical for every window.
    pub inflight: usize,
    /// The tenants.
    pub tenants: Vec<TenantSpec>,
}

impl ServeConfig {
    /// Validates structural invariants (positive pool, batch, horizon,
    /// at least one tenant).
    pub fn validate(&self) -> std::result::Result<(), String> {
        if self.drivers == 0 {
            return Err("driver pool must have at least one driver".into());
        }
        if self.batch == 0 {
            return Err("batch size must be positive".into());
        }
        if self.queue_capacity == 0 {
            return Err("queue capacity must be positive".into());
        }
        if self.duration_us == 0 {
            return Err("duration must be positive".into());
        }
        if self.inflight == 0 {
            return Err("in-flight window must hold at least one batch".into());
        }
        if self.tenants.is_empty() {
            return Err("at least one tenant is required".into());
        }
        for t in &self.tenants {
            if t.weight == 0 {
                return Err(format!("tenant '{}' has zero weight", t.name));
            }
            if t.mix.is_empty() {
                return Err(format!("tenant '{}' has an empty mix", t.name));
            }
        }
        Ok(())
    }
}

/// Per-tenant serving outcome.
pub struct TenantReport {
    /// Tenant name.
    pub name: String,
    /// Arrivals generated for this tenant.
    pub offered: u64,
    /// Arrivals admitted past the bounded queue.
    pub admitted: u64,
    /// Arrivals shed at admission.
    pub dropped: u64,
    /// Requests that completed real evaluation successfully.
    pub ok: u64,
    /// Requests whose real evaluation returned an error.
    pub errors: u64,
    /// Virtual queueing + service latency of admitted requests.
    pub latency: LatencyHistogram,
}

/// Per-driver serving outcome.
pub struct DriverReport {
    /// Batches this driver served.
    pub batches: u64,
    /// Requests this driver served.
    pub requests: u64,
    /// Virtual µs spent serving (vs. idle).
    pub busy_us: Micros,
    /// Virtual latency recorded by this driver alone (merging these
    /// across drivers equals the union of tenant histograms).
    pub latency: LatencyHistogram,
}

/// The outcome of one serve run.
pub struct ServeReport {
    /// Per-tenant rows, in configuration order.
    pub tenants: Vec<TenantReport>,
    /// Per-driver rows.
    pub drivers: Vec<DriverReport>,
    /// Virtual end-to-end makespan (origin to last completion).
    pub makespan_us: Micros,
    /// Requests that completed (ok + errors, real evaluations).
    pub completed: u64,
    /// Wall-clock duration of the real execution phase (the driver
    /// threads draining their plans through `submit_many`/`wait`).
    /// Machine-dependent by nature, so it is *not* part of the
    /// deterministic [`Display`](std::fmt::Display) table — it exists
    /// for the pipelined-vs-blocking throughput comparison the
    /// `serve_throughput` bench reports.
    pub execution_wall: std::time::Duration,
}

impl ServeReport {
    /// Served request throughput over the virtual makespan, in
    /// requests/second.
    pub fn throughput_rps(&self) -> f64 {
        if self.makespan_us == 0 {
            return 0.0;
        }
        self.completed as f64 * 1e6 / self.makespan_us as f64
    }

    /// Real-execution throughput in requests/second of wall-clock time
    /// (see [`execution_wall`](Self::execution_wall)); this is the
    /// number the in-flight window moves.
    pub fn wall_rps(&self) -> f64 {
        let secs = self.execution_wall.as_secs_f64();
        if secs == 0.0 {
            return 0.0;
        }
        self.completed as f64 / secs
    }

    /// Union latency across all tenants (equivalently: across all
    /// drivers — the merge-equality the telemetry tests pin down).
    pub fn total_latency(&self) -> LatencyHistogram {
        let mut h = LatencyHistogram::new();
        for d in &self.drivers {
            h.merge(&d.latency);
        }
        h
    }

    /// Total arrivals shed across tenants.
    pub fn total_dropped(&self) -> u64 {
        self.tenants.iter().map(|t| t.dropped).sum()
    }
}

impl std::fmt::Display for ServeReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let total = self.total_latency();
        let (p50, p90, p99, p999) = total.tail_summary();
        writeln!(
            f,
            "served {} requests in {:.3} s virtual ({:.0} req/s), {} dropped",
            self.completed,
            self.makespan_us as f64 / 1e6,
            self.throughput_rps(),
            self.total_dropped(),
        )?;
        writeln!(
            f,
            "latency µs: p50 {p50}  p90 {p90}  p99 {p99}  p999 {p999}  max {}",
            total.max()
        )?;
        writeln!(
            f,
            "{:<12} {:>8} {:>8} {:>7} {:>7} {:>6} {:>8} {:>8} {:>8} {:>8}",
            "tenant", "offered", "admitted", "dropped", "ok", "err", "p50", "p99", "p999", "mean"
        )?;
        for t in &self.tenants {
            let (tp50, _, tp99, tp999) = t.latency.tail_summary();
            writeln!(
                f,
                "{:<12} {:>8} {:>8} {:>7} {:>7} {:>6} {:>8} {:>8} {:>8} {:>8.0}",
                t.name,
                t.offered,
                t.admitted,
                t.dropped,
                t.ok,
                t.errors,
                tp50,
                tp99,
                tp999,
                t.latency.mean(),
            )?;
        }
        for (i, d) in self.drivers.iter().enumerate() {
            writeln!(
                f,
                "driver {i}: {} batches, {} requests, occupancy {:.0}%",
                d.batches,
                d.requests,
                if self.makespan_us == 0 {
                    0.0
                } else {
                    d.busy_us as f64 * 100.0 / self.makespan_us as f64
                },
            )?;
        }
        Ok(())
    }
}

/// A virtual driver's planned batch: the requests it served, in order.
struct PlannedBatch {
    requests: Vec<QueuedRequest>,
}

/// Runs the full serve pipeline against `rt`: generate traffic, admit
/// and schedule it in virtual time, then execute the planned batches on
/// a real driver-thread pool through the submission API (each driver
/// keeps up to [`ServeConfig::inflight`] batches in flight).
///
/// The backend must implement [`SubmitApi`]: `fixpoint::Runtime` does
/// natively, and any plain blocking backend (the cluster client, the
/// baselines) is lifted with
/// [`BlockingOffload`](fix_core::api::BlockingOffload).
///
/// # Examples
///
/// ```
/// use fix_serve::{ArrivalProcess, RequestKind, ServeConfig, TenantSpec};
///
/// let cfg = ServeConfig {
///     seed: 7,
///     duration_us: 50_000,
///     drivers: 2,
///     batch: 8,
///     queue_capacity: 64,
///     batch_overhead_us: 5,
///     inflight: 2,
///     tenants: vec![TenantSpec::uniform_mix(
///         "t0",
///         1,
///         ArrivalProcess::Uniform { period_us: 500 },
///         RequestKind::Add,
///     )],
/// };
/// let rt = fixpoint::Runtime::builder().build();
/// let report = fix_serve::serve(&rt, &cfg).unwrap();
/// assert_eq!(report.completed, 100);
/// assert_eq!(report.total_dropped(), 0);
/// ```
pub fn serve<A: SubmitApi + InvocationApi + Send + Sync>(
    rt: &A,
    cfg: &ServeConfig,
) -> Result<ServeReport> {
    cfg.validate().map_err(|message| fix_core::Error::Backend {
        backend: "serve",
        message,
    })?;
    let factory = RequestFactory::install(rt, &cfg.tenants, cfg.seed)?;

    // ------------------------------------------------------------------
    // Load generation: per-tenant arrival streams, merged and minted.
    // ------------------------------------------------------------------
    let per_tenant: Vec<Vec<Micros>> = cfg
        .tenants
        .iter()
        .enumerate()
        .map(|(i, t)| {
            t.arrivals
                .generate(tenant_seed(cfg.seed, i, 0), cfg.duration_us)
        })
        .collect();
    let timeline = merge_timelines(per_tenant);

    // ------------------------------------------------------------------
    // Virtual-time admission + dispatch simulation.
    // ------------------------------------------------------------------
    let weights: Vec<u32> = cfg.tenants.iter().map(|t| t.weight).collect();
    let mut queues = TenantQueues::new(weights, cfg.queue_capacity);
    let mut free: Vec<Micros> = vec![0; cfg.drivers];
    let mut plans: Vec<Vec<PlannedBatch>> = (0..cfg.drivers).map(|_| Vec::new()).collect();
    let mut drivers: Vec<DriverReport> = (0..cfg.drivers)
        .map(|_| DriverReport {
            batches: 0,
            requests: 0,
            busy_us: 0,
            latency: LatencyHistogram::new(),
        })
        .collect();
    let mut tenant_hists: Vec<LatencyHistogram> = (0..cfg.tenants.len())
        .map(|_| LatencyHistogram::new())
        .collect();
    let mut admitted_per_tenant = vec![0u64; cfg.tenants.len()];
    let mut seen: HashSet<Handle> = HashSet::new();
    let mut makespan: Micros = 0;

    let offer = |queues: &mut TenantQueues,
                 seen: &mut HashSet<Handle>,
                 admitted: &mut [u64],
                 a: &Arrival|
     -> Result<()> {
        // Capacity check before any per-request work: a shed arrival
        // must cost O(1) — minting a thunk builds and stores real
        // objects on the backend, exactly what overload protection is
        // supposed to avoid.
        if queues.at_capacity(a.tenant) {
            queues.shed(a.tenant);
            return Ok(());
        }
        let spec = &cfg.tenants[a.tenant];
        let kind = draw_kind(&spec.mix, tenant_seed(cfg.seed, a.tenant, 1), a.seq);
        let thunk = factory.mint(rt, a.tenant, a.seq, kind)?;
        // First *admitted* sight of a thunk pays the cold service time;
        // repeats are warm — mirroring the backend's memoization (a shed
        // request never executed, so it warms nothing).
        let service_us = if seen.contains(&thunk) {
            kind.warm_service_us()
        } else {
            kind.cold_service_us()
        };
        if queues.offer(QueuedRequest {
            arrival_us: a.time_us,
            tenant: a.tenant,
            thunk,
            service_us,
        }) {
            admitted[a.tenant] += 1;
            seen.insert(thunk);
        }
        Ok(())
    };

    let mut next = 0usize; // Next unadmitted arrival in the timeline.
    loop {
        // The earliest-free driver serves next (ties to the lowest
        // index, keeping the event order deterministic).
        let d = (0..cfg.drivers)
            .min_by_key(|&i| (free[i], i))
            .expect("pool is non-empty");
        let now = free[d];
        // Everything that arrived while drivers were busy is offered in
        // arrival order before the next dispatch decision.
        while next < timeline.len() && timeline[next].time_us <= now {
            offer(
                &mut queues,
                &mut seen,
                &mut admitted_per_tenant,
                &timeline[next],
            )?;
            next += 1;
        }
        if queues.is_empty() {
            if next >= timeline.len() {
                break; // Drained: the run is over.
            }
            // Idle until the next arrival instant (admit every arrival
            // stamped with that exact time before dispatching). Every
            // driver already free is idle across the gap, so virtual
            // time advances for all of them — otherwise a stale driver
            // clock could "serve" a request before it arrived.
            let t = timeline[next].time_us;
            while next < timeline.len() && timeline[next].time_us == t {
                offer(
                    &mut queues,
                    &mut seen,
                    &mut admitted_per_tenant,
                    &timeline[next],
                )?;
                next += 1;
            }
            for f in free.iter_mut() {
                *f = (*f).max(t);
            }
            continue;
        }
        let batch = queues.next_batch(cfg.batch);
        let service: Micros =
            cfg.batch_overhead_us + batch.iter().map(|r| r.service_us).sum::<Micros>();
        let done = now + service;
        for r in &batch {
            debug_assert!(r.arrival_us <= now, "service must not precede arrival");
            let latency = done - r.arrival_us;
            tenant_hists[r.tenant].record(latency);
            drivers[d].latency.record(latency);
        }
        drivers[d].batches += 1;
        drivers[d].requests += batch.len() as u64;
        drivers[d].busy_us += service;
        free[d] = done;
        makespan = makespan.max(done);
        plans[d].push(PlannedBatch { requests: batch });
    }

    // ------------------------------------------------------------------
    // Real execution: one OS thread per driver, a window of up to
    // `cfg.inflight` submitted batches each. Submission returns
    // immediately, so batch k+1 enters the backend while batch k is
    // still executing; completions settle oldest-first.
    // ------------------------------------------------------------------
    let exec_start = std::time::Instant::now();
    let outcomes: Vec<(Vec<u64>, Vec<u64>)> = std::thread::scope(|scope| {
        let handles: Vec<_> = plans
            .iter()
            .map(|plan| {
                let n_tenants = cfg.tenants.len();
                let inflight = cfg.inflight;
                scope.spawn(move || {
                    let mut ok = vec![0u64; n_tenants];
                    let mut errors = vec![0u64; n_tenants];
                    let settle = |batch: &PlannedBatch,
                                  results: Vec<Result<Handle>>,
                                  ok: &mut [u64],
                                  errors: &mut [u64]| {
                        for (r, req) in results.iter().zip(&batch.requests) {
                            match r {
                                Ok(_) => ok[req.tenant] += 1,
                                Err(_) => errors[req.tenant] += 1,
                            }
                        }
                    };
                    let mut window: VecDeque<(&PlannedBatch, BatchTicket)> =
                        VecDeque::with_capacity(inflight);
                    for batch in plan {
                        while window.len() >= inflight {
                            let (done, ticket) = window.pop_front().expect("window is non-empty");
                            settle(done, ticket.wait(), &mut ok, &mut errors);
                        }
                        let thunks: Vec<Handle> = batch.requests.iter().map(|r| r.thunk).collect();
                        window.push_back((batch, rt.submit_many(&thunks)));
                    }
                    while let Some((done, ticket)) = window.pop_front() {
                        settle(done, ticket.wait(), &mut ok, &mut errors);
                    }
                    (ok, errors)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("driver thread must not panic"))
            .collect()
    });
    let execution_wall = exec_start.elapsed();

    let mut ok = vec![0u64; cfg.tenants.len()];
    let mut errors = vec![0u64; cfg.tenants.len()];
    for (o, e) in outcomes {
        for t in 0..cfg.tenants.len() {
            ok[t] += o[t];
            errors[t] += e[t];
        }
    }

    let tenants: Vec<TenantReport> = cfg
        .tenants
        .iter()
        .enumerate()
        .map(|(i, t)| TenantReport {
            name: t.name.clone(),
            offered: queues.offered[i],
            admitted: admitted_per_tenant[i],
            dropped: queues.dropped[i],
            ok: ok[i],
            errors: errors[i],
            latency: std::mem::take(&mut tenant_hists[i]),
        })
        .collect();
    let completed = tenants.iter().map(|t| t.ok + t.errors).sum();
    Ok(ServeReport {
        tenants,
        drivers,
        makespan_us: makespan,
        completed,
        execution_wall,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loadgen::ArrivalProcess;
    use crate::tenant::RequestKind;
    use fixpoint::Runtime;

    fn two_tenant_cfg(seed: u64) -> ServeConfig {
        ServeConfig {
            seed,
            duration_us: 100_000,
            drivers: 3,
            batch: 16,
            queue_capacity: 32,
            batch_overhead_us: 5,
            inflight: 2,
            tenants: vec![
                TenantSpec {
                    name: "poisson".into(),
                    weight: 2,
                    arrivals: ArrivalProcess::Poisson { rate_rps: 3000.0 },
                    mix: vec![(RequestKind::Add, 3), (RequestKind::Fib { max_n: 8 }, 1)],
                },
                TenantSpec::uniform_mix(
                    "bursty",
                    1,
                    ArrivalProcess::Bursts {
                        period_us: 20_000,
                        burst: 64,
                    },
                    RequestKind::Add,
                ),
            ],
        }
    }

    #[test]
    fn serve_accounts_for_every_arrival() {
        let rt = Runtime::builder().build();
        let report = serve(&rt, &two_tenant_cfg(11)).unwrap();
        for t in &report.tenants {
            assert_eq!(t.offered, t.admitted + t.dropped, "tenant {}", t.name);
            assert_eq!(t.admitted, t.ok + t.errors, "tenant {}", t.name);
            assert_eq!(t.admitted, t.latency.count(), "tenant {}", t.name);
            assert_eq!(t.errors, 0, "all minted requests are valid");
        }
        assert!(report.completed > 0);
        assert!(report.makespan_us > 0);
        // Driver-side and tenant-side accounting agree.
        let driver_reqs: u64 = report.drivers.iter().map(|d| d.requests).sum();
        assert_eq!(driver_reqs, report.completed);
        let mut tenant_union = LatencyHistogram::new();
        for t in &report.tenants {
            tenant_union.merge(&t.latency);
        }
        assert_eq!(
            tenant_union.tail_summary(),
            report.total_latency().tail_summary(),
            "per-driver merge must equal per-tenant merge"
        );
    }

    #[test]
    fn same_seed_same_tables() {
        let report_a = serve(&Runtime::builder().build(), &two_tenant_cfg(5)).unwrap();
        let report_b = serve(&Runtime::builder().build(), &two_tenant_cfg(5)).unwrap();
        assert_eq!(report_a.to_string(), report_b.to_string());
        let report_c = serve(&Runtime::builder().build(), &two_tenant_cfg(6)).unwrap();
        assert_ne!(
            report_a.to_string(),
            report_c.to_string(),
            "a different seed must shift the traffic"
        );
    }

    #[test]
    fn overload_sheds_deterministically() {
        // One driver, tiny queue, heavy bursts: shedding is guaranteed.
        let cfg = ServeConfig {
            seed: 3,
            duration_us: 50_000,
            drivers: 1,
            batch: 4,
            queue_capacity: 8,
            batch_overhead_us: 10,
            inflight: 1,
            tenants: vec![TenantSpec::uniform_mix(
                "flood",
                1,
                ArrivalProcess::Bursts {
                    period_us: 10_000,
                    burst: 200,
                },
                RequestKind::SebsHtml { users: 2 },
            )],
        };
        let rt = Runtime::builder().build();
        let report = serve(&rt, &cfg).unwrap();
        assert!(report.total_dropped() > 0, "overload must shed");
        let again = serve(&Runtime::builder().build(), &cfg).unwrap();
        assert_eq!(report.total_dropped(), again.total_dropped());
        assert_eq!(report.to_string(), again.to_string());
    }

    #[test]
    fn config_validation_rejects_degenerate_setups() {
        let mut cfg = two_tenant_cfg(1);
        cfg.drivers = 0;
        let rt = Runtime::builder().build();
        assert!(serve(&rt, &cfg).is_err());
        let mut cfg = two_tenant_cfg(1);
        cfg.tenants.clear();
        assert!(serve(&rt, &cfg).is_err());
        let mut cfg = two_tenant_cfg(1);
        cfg.tenants[0].mix.clear();
        assert!(serve(&rt, &cfg).is_err());
        let mut cfg = two_tenant_cfg(1);
        cfg.inflight = 0;
        assert!(serve(&rt, &cfg).is_err());
    }

    /// The in-flight window changes only wall-clock execution, never
    /// the deterministic tables or the per-tenant accounting.
    #[test]
    fn pipelined_execution_matches_blocking() {
        let blocking = ServeConfig {
            inflight: 1,
            ..two_tenant_cfg(21)
        };
        let pipelined = ServeConfig {
            inflight: 4,
            ..two_tenant_cfg(21)
        };
        let a = serve(&Runtime::builder().build(), &blocking).unwrap();
        let b = serve(&Runtime::builder().build(), &pipelined).unwrap();
        assert_eq!(
            a.to_string(),
            b.to_string(),
            "the window must not perturb the virtual tables"
        );
        assert!(a.execution_wall > std::time::Duration::ZERO);
        assert!(b.execution_wall > std::time::Duration::ZERO);
        assert!(b.wall_rps() > 0.0);
    }

    #[test]
    fn runs_identically_on_the_cluster_backend() {
        use fix_core::api::BlockingOffload;
        use std::sync::Arc;
        let cfg = ServeConfig {
            duration_us: 30_000,
            ..two_tenant_cfg(9)
        };
        let rt_report = serve(&Runtime::builder().build(), &cfg).unwrap();
        // A plain blocking backend joins the submission-first driver
        // pool through the offload adapter (threads = drivers keeps the
        // backend as parallel as the old direct eval_many calls).
        let cc = Arc::new(fix_cluster::ClusterClient::builder().build().unwrap());
        let off = BlockingOffload::with_threads(Arc::clone(&cc), cfg.drivers);
        let cc_report = serve(&off, &cfg).unwrap();
        // The virtual-time telemetry is backend-independent; so are the
        // (content-addressed) evaluation outcomes.
        assert_eq!(rt_report.to_string(), cc_report.to_string());
        assert!(cc.reports().len() > 0, "real cluster runs were recorded");
    }
}
