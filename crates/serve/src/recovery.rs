//! Kill-and-recover serving: crash a durable serve run mid-batch, then
//! reopen the same directory and prove the restart serves from disk.
//!
//! The scenario the paper's serving story needs but a purely in-memory
//! runtime cannot provide: a node crashes partway through a batch (the
//! deterministic [`KillPoint`] trips inside the group-commit writer,
//! leaving a torn final frame), the process restarts, and the recovered
//! store replays the log prefix. Because Fix evaluation is deterministic
//! and memoized, everything whose relation survived the crash re-serves
//! with **zero procedures run** — and because `fix-serve`'s latency and
//! accounting tables are virtual-time constructs of the config alone,
//! the recovered run's table is **bit-identical** to the pre-crash one.
//! Those two properties together are the crash-recovery contract, and
//! [`kill_and_recover`] packages them as a reusable scenario (used by
//! the tests here and by the `durable_serving` example / CI smoke).

use crate::server::{serve, ServeConfig, ServeReport};
use fix_core::error::Result;
use fix_durable::{DurableOptions, DurableStore, FsyncPolicy, KillMode, KillPoint};
use fixpoint::Runtime;
use std::path::Path;

/// One durable serve pass: everything the crash-boundary assertions
/// compare between the pre-crash and the recovered run.
pub struct RecoveryOutcome {
    /// The full serve report of this pass.
    pub report: ServeReport,
    /// The deterministic `Display` table of `report` (what must be
    /// bit-identical across the crash boundary).
    pub table: String,
    /// Procedures actually executed during this pass (memoization cache
    /// misses). Zero on a clean warm restart: every request replayed.
    pub procedures_run: u64,
    /// Whether the deterministic kill point tripped during this pass.
    pub crashed: bool,
    /// Memoized relations recovered from disk when this pass opened.
    pub replayed_relations: u64,
    /// Objects indexed (not loaded — restart is lazy) at open.
    pub replayed_nodes: u64,
    /// Torn tail bytes truncated during recovery at open.
    pub truncated_bytes: u64,
    /// Objects faulted in from disk during this pass (warm restarts
    /// serve from disk, not from recomputation).
    pub faults: u64,
}

impl RecoveryOutcome {
    /// The accounting-closure identities every serve pass must satisfy,
    /// crash or not: offered = admitted + dropped, and admitted =
    /// ok + errors + expired + cancelled. Panics when violated.
    pub fn assert_accounting_closure(&self) {
        for t in &self.report.tenants {
            assert_eq!(
                t.offered,
                t.admitted + t.dropped,
                "tenant '{}': offered != admitted + dropped",
                t.name
            );
            assert_eq!(
                t.admitted,
                t.ok + t.errors + t.expired + t.cancelled,
                "tenant '{}': admitted != ok + errors + expired + cancelled",
                t.name
            );
        }
    }
}

/// Runs one serve pass on a durable runtime rooted at `dir`, flushing
/// the log before returning (so a subsequent open sees everything this
/// pass persisted — unless a kill point cut persistence short).
pub fn serve_durable(
    dir: &Path,
    cfg: &ServeConfig,
    options: DurableOptions,
) -> Result<RecoveryOutcome> {
    let durable = DurableStore::open(dir, options)?;
    let at_open = durable.stats();
    let rt = Runtime::builder().durable(durable).build();
    let report = serve(&rt, cfg)?;
    let procedures_run = rt.procedures_run();
    let d = rt.durable().expect("built durable");
    d.flush()?;
    let now = d.stats();
    Ok(RecoveryOutcome {
        table: report.to_string(),
        procedures_run,
        crashed: d.crashed(),
        replayed_relations: at_open.replayed_relations,
        replayed_nodes: at_open.replayed_nodes,
        truncated_bytes: at_open.truncated_bytes,
        faults: now.faults,
        report,
    })
}

/// The kill-and-recover scenario: a serve pass that crashes persistence
/// at a deterministic kill point, then a second pass over the same
/// directory that recovers and re-serves the identical workload.
///
/// Returns `(killed, recovered)`. The crash-recovery contract, asserted
/// by the callers:
///
/// * both passes satisfy [accounting closure](RecoveryOutcome::assert_accounting_closure);
/// * `recovered.table == killed.table` — the deterministic tables are
///   bit-identical across the crash boundary;
/// * `recovered.procedures_run < killed.procedures_run` — relations that
///   survived the crash are served from the log, not recomputed (with no
///   kill point at all, `recovered.procedures_run == 0`);
/// * `recovered.truncated_bytes > 0` — the torn final frame the kill
///   point leaves behind was tolerated and truncated.
pub fn kill_and_recover(
    dir: &Path,
    cfg: &ServeConfig,
    kill_after_frames: u64,
) -> Result<(RecoveryOutcome, RecoveryOutcome)> {
    let killed = serve_durable(
        dir,
        cfg,
        DurableOptions {
            fsync: FsyncPolicy::Always,
            kill: Some(KillPoint {
                after_frames: kill_after_frames,
                mode: KillMode::Stop,
            }),
            ..DurableOptions::default()
        },
    )?;
    // The in-memory half of the crashed node died with `killed`'s
    // runtime (dropped above); only the log prefix survives.
    let recovered = serve_durable(
        dir,
        cfg,
        DurableOptions {
            fsync: FsyncPolicy::Always,
            ..DurableOptions::default()
        },
    )?;
    Ok((killed, recovered))
}
