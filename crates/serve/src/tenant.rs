//! Tenants and their request mixes.
//!
//! A tenant is a stream of requests drawn from a weighted mix of
//! request kinds, all expressed as ordinary Fix thunks against the One
//! Fix API — which is the point: the serving layer never special-cases
//! a workload, it just builds thunks and asks a backend to evaluate
//! them. The kinds cover the repo's real workloads: native codelets
//! (the Fig. 7a hot path), FixVM guest programs (`fib`), the
//! count-string map shard (Fig. 8b), and the SeBS `dynamic-html` port
//! running through Flatware.

use crate::loadgen::{ArrivalProcess, Micros};
use fix_core::api::{InvocationApi, Priority};
use fix_core::data::Blob;
use fix_core::error::Result;
use fix_core::handle::Handle;
use fix_core::limits::ResourceLimits;
use fix_workloads::guests;
use fix_workloads::sebs::{build_sebs_fs, register_dynamic_html};
use fix_workloads::wordcount::{register_count_string, store_shards};
use std::sync::Arc;

/// One kind of request a tenant can issue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RequestKind {
    /// Native `add` codelet with per-request arguments — every request
    /// is distinct, so this exercises the cold native-invocation path.
    Add,
    /// FixVM guest `fib(n)` with `n` cycling below this bound; repeats
    /// hit the memoization cache, so a fib tenant mixes cold and warm.
    Fib {
        /// Exclusive upper bound on the cycled `n` (≥ 1).
        max_n: u64,
    },
    /// `count-string` over one of the tenant's corpus shards with a
    /// per-request needle (the Fig. 8b map task, served one at a time).
    Wordcount {
        /// Size of each stored corpus shard, in bytes.
        shard_bytes: usize,
    },
    /// The SeBS `dynamic-html` port through Flatware, with the username
    /// cycling over a small user population (warm after first render).
    SebsHtml {
        /// Number of distinct usernames to cycle through (≥ 1).
        users: u64,
    },
}

impl RequestKind {
    /// Modeled service time of a *cold* (not yet memoized) request, in
    /// µs of virtual time, read from the workspace-wide calibration
    /// table ([`fix_core::calibration::SERVICE_COSTS`]) — the same
    /// table `ClusterClient` charges its flat per-task compute cost
    /// from, so the serving clock and the cluster clock share one
    /// source of truth. Calibration constants, not measurements: they
    /// anchor the virtual clock that makes latency tables reproducible.
    pub fn cold_service_us(&self) -> Micros {
        let c = fix_core::calibration::SERVICE_COSTS;
        match self {
            RequestKind::Add => c.native_cold_us,
            RequestKind::Fib { max_n } => c.vm_start_us + c.vm_step_us * max_n,
            RequestKind::Wordcount { shard_bytes } => {
                c.wordcount_base_us + (*shard_bytes as Micros) / c.wordcount_bytes_per_us
            }
            RequestKind::SebsHtml { .. } => c.sebs_html_cold_us,
        }
    }

    /// Modeled service time of a warm (memoized) repeat, in µs: the
    /// Fig. 7a warm-memoized path, independent of the procedure.
    pub fn warm_service_us(&self) -> Micros {
        fix_core::calibration::SERVICE_COSTS.warm_hit_us
    }

    /// Short label for tables.
    pub fn label(&self) -> &'static str {
        match self {
            RequestKind::Add => "add",
            RequestKind::Fib { .. } => "fib",
            RequestKind::Wordcount { .. } => "wordcount",
            RequestKind::SebsHtml { .. } => "sebs-html",
        }
    }
}

/// A tenant's service-level objective class: which [`Priority`] tier
/// its traffic dispatches at, and (optionally) how long a request may
/// wait before it is *expired* rather than served.
///
/// The default class — [`Priority::Normal`], no deadline — reproduces
/// plain weighted-fair serving exactly, which is what keeps the
/// no-SLO serving tables bit-identical to their pre-SLO form within a
/// run. With classes configured, dispatch is two-level: strict priority
/// across tiers, earliest-deadline-first within a tier, and
/// deficit-round-robin only among tenants the first two levels cannot
/// tell apart (see [`TenantQueues`](crate::queue::TenantQueues)).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SloClass {
    /// The dispatch tier ([`Priority::Latency`] preempts
    /// [`Priority::Normal`] preempts [`Priority::Batch`]).
    pub priority: Priority,
    /// Relative deadline, in virtual µs from arrival. A request still
    /// queued when its deadline passes is expired with
    /// `Error::DeadlineExceeded` accounting instead of served — the
    /// platform withdraws dead work rather than burning drivers on it.
    pub deadline_us: Option<Micros>,
}

impl SloClass {
    /// A latency-tier class with a relative deadline.
    pub fn latency(deadline_us: Micros) -> SloClass {
        SloClass {
            priority: Priority::Latency,
            deadline_us: Some(deadline_us),
        }
    }

    /// A batch-tier class: served only when other tiers are idle, never
    /// expired.
    pub fn batch() -> SloClass {
        SloClass {
            priority: Priority::Batch,
            deadline_us: None,
        }
    }
}

/// One tenant of the serving layer.
#[derive(Debug, Clone)]
pub struct TenantSpec {
    /// Display name (also the table row key).
    pub name: String,
    /// Weighted-fair share of driver capacity relative to tenants in
    /// the same SLO tier (tiers themselves are strict-priority).
    pub weight: u32,
    /// The tenant's arrival process.
    pub arrivals: ArrivalProcess,
    /// Weighted request mix; kinds are drawn per-request with these
    /// relative weights (deterministically, from the tenant's seed).
    pub mix: Vec<(RequestKind, u32)>,
    /// The tenant's SLO class (default: normal tier, no deadline).
    pub slo: SloClass,
}

impl TenantSpec {
    /// A tenant issuing only `kind`.
    pub fn uniform_mix(
        name: &str,
        weight: u32,
        arrivals: ArrivalProcess,
        kind: RequestKind,
    ) -> Self {
        TenantSpec {
            name: name.to_string(),
            weight,
            arrivals,
            mix: vec![(kind, 1)],
            slo: SloClass::default(),
        }
    }

    /// Sets the tenant's SLO class.
    pub fn with_slo(mut self, slo: SloClass) -> Self {
        self.slo = slo;
        self
    }
}

/// Per-backend request factory: registers each tenant's procedures and
/// data once, then mints the thunk for any `(tenant, seq, kind)`.
///
/// Thunks are content addressed, so the factory is deterministic by
/// construction: the same configuration mints bit-identical handles on
/// every backend — which is what lets the serving example compare
/// backends under identical traffic.
pub struct RequestFactory {
    add_proc: Handle,
    fib_mod: Handle,
    fib_add_mod: Handle,
    count_proc: Handle,
    html_proc: Handle,
    sebs_root: Handle,
    /// Per-tenant corpus shards (lazily sized by the first Wordcount
    /// kind in the tenant's mix; one shard set per tenant).
    shards: Vec<Vec<Handle>>,
    limits: ResourceLimits,
}

/// Shards stored per wordcount tenant (requests cycle across them).
const SHARDS_PER_TENANT: usize = 4;

impl RequestFactory {
    /// Registers procedures and stores per-tenant data on `rt`.
    pub fn install<R: InvocationApi>(
        rt: &R,
        tenants: &[TenantSpec],
        seed: u64,
    ) -> Result<RequestFactory> {
        let add_proc = rt.register_native(
            "serve/add",
            Arc::new(|ctx| {
                let a = ctx.arg_blob(0)?.as_u64().unwrap_or(0);
                let b = ctx.arg_blob(1)?.as_u64().unwrap_or(0);
                ctx.host
                    .create_blob(a.wrapping_add(b).to_le_bytes().to_vec())
            }),
        );
        let fib_mod = guests::install_fib(rt)?;
        let fib_add_mod = guests::install_add(rt)?;
        let count_proc = register_count_string(rt);
        let html_proc = register_dynamic_html(rt);
        let sebs_root = build_sebs_fs(
            rt,
            &[("inbox.txt".to_string(), b"serve-layer fixture".to_vec())],
        )?;
        let mut shards = Vec::with_capacity(tenants.len());
        for (i, t) in tenants.iter().enumerate() {
            let shard_bytes = t.mix.iter().find_map(|(k, _)| match k {
                RequestKind::Wordcount { shard_bytes } => Some(*shard_bytes),
                _ => None,
            });
            shards.push(match shard_bytes {
                Some(bytes) => store_shards(
                    rt,
                    crate::loadgen::tenant_seed(seed, i, 7),
                    SHARDS_PER_TENANT,
                    bytes,
                ),
                None => Vec::new(),
            });
        }
        Ok(RequestFactory {
            add_proc,
            fib_mod,
            fib_add_mod,
            count_proc,
            html_proc,
            sebs_root,
            shards,
            limits: ResourceLimits::default_limits(),
        })
    }

    /// Builds the thunk for request `seq` of `tenant` with `kind`.
    pub fn mint<R: InvocationApi>(
        &self,
        rt: &R,
        tenant: usize,
        seq: u64,
        kind: RequestKind,
    ) -> Result<Handle> {
        match kind {
            RequestKind::Add => rt.apply(
                self.limits,
                self.add_proc,
                &[
                    rt.put_blob(Blob::from_u64(seq)),
                    rt.put_blob(Blob::from_u64((tenant as u64) << 32 | 1)),
                ],
            ),
            RequestKind::Fib { max_n } => rt.apply(
                self.limits,
                self.fib_mod,
                &[
                    self.fib_add_mod,
                    rt.put_blob(Blob::from_u64(seq % max_n.max(1))),
                ],
            ),
            RequestKind::Wordcount { .. } => {
                let shard = self.shards[tenant][(seq as usize) % SHARDS_PER_TENANT];
                let needle = rt.put_blob(Blob::from_slice(
                    format!("t{tenant}w{}", seq % 64).as_bytes(),
                ));
                rt.apply(self.limits, self.count_proc, &[shard, needle])
            }
            RequestKind::SebsHtml { users } => {
                let argv = rt.put_blob(flatware::encode_argv(&[
                    "dynamic-html",
                    &format!("tenant{tenant}-user{}", seq % users.max(1)),
                    "4",
                ]));
                rt.apply(self.limits, self.html_proc, &[argv, self.sebs_root])
            }
        }
    }
}

/// Draws the kind of request `seq` from `mix` (weighted, deterministic
/// in `(seed, seq)` alone so admission replay and real execution agree).
pub fn draw_kind(mix: &[(RequestKind, u32)], seed: u64, seq: u64) -> RequestKind {
    assert!(!mix.is_empty(), "tenant mix must not be empty");
    let total: u64 = mix.iter().map(|(_, w)| *w as u64).sum();
    assert!(total > 0, "tenant mix weights must not all be zero");
    // Stateless splittable draw: hash (seed, seq) to a weight slot.
    let mut z = seed ^ seq.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    let mut slot = (z ^ (z >> 31)) % total;
    for (kind, w) in mix {
        if slot < *w as u64 {
            return *kind;
        }
        slot -= *w as u64;
    }
    mix[mix.len() - 1].0
}

#[cfg(test)]
mod tests {
    use super::*;
    use fixpoint::Runtime;

    fn tenants() -> Vec<TenantSpec> {
        vec![
            TenantSpec {
                name: "mixed".into(),
                weight: 2,
                arrivals: ArrivalProcess::Uniform { period_us: 100 },
                mix: vec![
                    (RequestKind::Add, 3),
                    (RequestKind::Fib { max_n: 10 }, 1),
                    (RequestKind::Wordcount { shard_bytes: 4096 }, 1),
                    (RequestKind::SebsHtml { users: 4 }, 1),
                ],
                slo: SloClass::default(),
            },
            TenantSpec::uniform_mix(
                "adds",
                1,
                ArrivalProcess::Uniform { period_us: 50 },
                RequestKind::Add,
            ),
        ]
    }

    #[test]
    fn every_kind_mints_an_evaluable_thunk() {
        let rt = Runtime::builder().build();
        let specs = tenants();
        let f = RequestFactory::install(&rt, &specs, 5).unwrap();
        for kind in [
            RequestKind::Add,
            RequestKind::Fib { max_n: 10 },
            RequestKind::Wordcount { shard_bytes: 4096 },
            RequestKind::SebsHtml { users: 4 },
        ] {
            let t = f.mint(&rt, 0, 3, kind).unwrap();
            rt.eval(t).unwrap_or_else(|e| panic!("{kind:?}: {e:?}"));
        }
    }

    #[test]
    fn minting_is_deterministic_across_backends() {
        let specs = tenants();
        let rt = Runtime::builder().build();
        let cc = fix_cluster::ClusterClient::builder().build().unwrap();
        let fa = RequestFactory::install(&rt, &specs, 5).unwrap();
        let fb = RequestFactory::install(&cc, &specs, 5).unwrap();
        for seq in 0..8 {
            let kind = draw_kind(&specs[0].mix, 99, seq);
            assert_eq!(
                fa.mint(&rt, 0, seq, kind).unwrap(),
                fb.mint(&cc, 0, seq, kind).unwrap(),
                "content addressing must make minting backend-agnostic"
            );
        }
    }

    #[test]
    fn draw_kind_respects_weights_roughly() {
        let mix = vec![(RequestKind::Add, 9), (RequestKind::Fib { max_n: 4 }, 1)];
        let adds = (0..1000)
            .filter(|&s| draw_kind(&mix, 1, s) == RequestKind::Add)
            .count();
        assert!((820..980).contains(&adds), "{adds} adds of 1000");
    }

    #[test]
    fn service_model_orders_kinds_sensibly() {
        let add = RequestKind::Add;
        let html = RequestKind::SebsHtml { users: 4 };
        assert!(add.cold_service_us() < html.cold_service_us());
        assert!(add.warm_service_us() < add.cold_service_us());
    }
}
