//! Latency telemetry: mergeable fixed-bucket log-scale histograms.
//!
//! Serving papers (and the ROADMAP's "millions of users" north star)
//! live and die by tail latency, so the serving layer records every
//! request latency in a [`LatencyHistogram`]: an HDR-style histogram
//! with power-of-two major buckets subdivided 8 ways. The layout is
//! *fixed* — no configuration, no rescaling — which buys three
//! properties the driver pool needs:
//!
//! * recording is a single index computation (no allocation, no locks:
//!   each worker owns its histogram);
//! * histograms [`merge`](LatencyHistogram::merge) by element-wise
//!   addition, and merging per-worker histograms is *exactly* equal to
//!   recording everything into one histogram;
//! * quantile extraction is deterministic: a quantile is the lower
//!   bound of the bucket holding that rank, so equal inputs print
//!   equal tables on every platform.
//!
//! Relative bucket error is bounded by 12.5% (1/8), which is far below
//! the run-to-run variance of any real serving system.
//!
//! The mechanics now live in the observability crate as
//! [`fix_obs::LogHistogram`], so the scheduler, durability tier, and
//! metrics registry share one histogram implementation; this module
//! keeps the serving-layer name as a plain re-export.

pub use fix_obs::LogHistogram as LatencyHistogram;
