//! The crash-recovery contract for durable serving (see
//! `fix_serve::recovery`): accounting closure on both sides of a crash,
//! bit-identical deterministic tables across the boundary, zero
//! recomputation of replayed memoized requests, and a torn final frame
//! tolerated at recovery.

use fix_durable::{DurableOptions, FsyncPolicy};
use fix_serve::{
    kill_and_recover, serve_durable, ArrivalProcess, RequestKind, ServeConfig, TenantSpec,
};

fn config() -> ServeConfig {
    ServeConfig {
        seed: 7,
        duration_us: 30_000,
        drivers: 2,
        batch: 4,
        queue_capacity: 64,
        batch_overhead_us: 5,
        inflight: 2,
        tenants: vec![
            TenantSpec::uniform_mix(
                "interactive",
                3,
                ArrivalProcess::Poisson { rate_rps: 900.0 },
                RequestKind::Add,
            ),
            TenantSpec::uniform_mix(
                "batchy",
                1,
                ArrivalProcess::Bursts {
                    period_us: 10_000,
                    burst: 6,
                },
                RequestKind::Fib { max_n: 7 },
            ),
        ],
    }
}

fn clean_options() -> DurableOptions {
    DurableOptions {
        fsync: FsyncPolicy::Always,
        ..DurableOptions::default()
    }
}

#[test]
fn warm_restart_replays_everything_with_zero_procedures() {
    let dir = tempfile::tempdir().unwrap();
    let cfg = config();
    let cold = serve_durable(dir.path(), &cfg, clean_options()).unwrap();
    cold.assert_accounting_closure();
    assert!(!cold.crashed);
    assert!(cold.procedures_run > 0, "the cold run computes");
    assert!(cold.report.completed > 0);

    let warm = serve_durable(dir.path(), &cfg, clean_options()).unwrap();
    warm.assert_accounting_closure();
    assert_eq!(
        warm.table, cold.table,
        "deterministic tables must be bit-identical across a restart"
    );
    assert_eq!(
        warm.procedures_run, 0,
        "every request is memoized on disk: a warm restart recomputes nothing"
    );
    assert!(
        warm.replayed_relations > 0,
        "the restart replays memoized relations from the log"
    );
    assert!(warm.replayed_nodes > 0);
}

#[test]
fn kill_mid_batch_recovers_the_persisted_prefix() {
    let dir = tempfile::tempdir().unwrap();
    let cfg = config();
    let (killed, recovered) = kill_and_recover(dir.path(), &cfg, 90).unwrap();

    killed.assert_accounting_closure();
    recovered.assert_accounting_closure();
    assert!(killed.crashed, "the kill point must trip mid-run");
    assert!(!recovered.crashed);

    // The deterministic tables are virtual-time constructs of the config
    // alone, so the crash cannot perturb them.
    assert_eq!(
        recovered.table, killed.table,
        "deterministic tables must be bit-identical across the crash boundary"
    );

    // The kill point leaves a torn final frame; recovery truncates it.
    assert!(
        recovered.truncated_bytes > 0,
        "recovery must tolerate (and count) the torn final frame"
    );

    // Relations that survived the crash serve from the log: the
    // recovered run redoes strictly less work than the crashed one, but
    // (having lost the tail) not zero.
    assert!(recovered.replayed_relations > 0);
    assert!(
        recovered.procedures_run < killed.procedures_run,
        "recovered work must not be recomputed ({} vs {})",
        recovered.procedures_run,
        killed.procedures_run
    );

    // A second restart — now past the crash — replays everything.
    let settled = serve_durable(dir.path(), &cfg, clean_options()).unwrap();
    settled.assert_accounting_closure();
    assert_eq!(settled.table, killed.table);
    assert_eq!(
        settled.procedures_run, 0,
        "once re-served and re-persisted, the workload is fully memoized again"
    );
}
