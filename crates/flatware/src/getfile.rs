//! The lazy `get-file` procedure (paper Fig. 4 / Algorithm 3).
//!
//! Descends a Flatware directory structure one level per invocation
//! *without* fetching directory contents: each step's minimum repository
//! contains only the codelet, the remaining path, and the current
//! directory's inode info. The child directory is carried as a
//! shallowly-encoded Selection (a Ref); the child's info is a strictly-
//! encoded Selection (the one piece of data genuinely needed next).

use crate::fs::DirInfo;
use fix_core::api::{Evaluator, InvocationApi, ObjectApi};
use fix_core::data::Blob;
use fix_core::error::{Error, Result};
use fix_core::handle::{EncodeStyle, Handle};
use fix_core::invocation::Invocation;
use fix_core::limits::ResourceLimits;
use std::sync::Arc;

/// Registers the `get-file` native codelet on any [`InvocationApi`]
/// backend, returning its procedure handle.
///
/// Input layout: `[rlimits, get-file, path, info, dir]` where `path` is
/// the remaining '/'-separated path, `info` is the current directory's
/// inode-info blob (accessible), and `dir` is the current directory tree
/// (typically a Ref). Returns either the selected entry or an
/// application thunk for the next level.
pub fn register_get_file<R: InvocationApi>(rt: &R) -> Handle {
    rt.register_native(
        "flatware/get-file",
        Arc::new(|ctx| {
            let input = ctx.input_tree()?;
            let rlimit = input.get(0).expect("limits slot");
            let self_proc = input.get(1).expect("procedure slot");
            let path_blob = ctx.arg_blob(0)?;
            let info_blob = ctx.arg_blob(1)?;
            let dir = ctx.arg(2)?; // Slot 4: the current directory tree.

            let path = String::from_utf8(path_blob.as_slice().to_vec())
                .map_err(|_| Error::Trap("path is not UTF-8".into()))?;
            let info = DirInfo::from_blob(&info_blob)?;

            let (head, rest) = match path.split_once('/') {
                Some((h, r)) => (h.to_string(), r.to_string()),
                None => (path.clone(), String::new()),
            };
            let idx = info
                .index_of(&head)
                .ok_or_else(|| Error::Trap(format!("'{head}' not found")))?;

            // child = selection(dir, idx + 1): slot 0 is the info blob.
            let sel_def = fix_core::invocation::Selection::index(dir, idx as u64 + 1).to_tree();
            let sel_def_h = ctx.host.create_tree(sel_def.entries().to_vec())?;
            let child = sel_def_h.selection()?;

            if rest.is_empty() {
                // Found: hand back the (lazy) selection of the entry.
                return Ok(child);
            }

            // info_new = strict(selection(child, 0)).
            let info_sel = fix_core::invocation::Selection::index(child, 0).to_tree();
            let info_sel_h = ctx.host.create_tree(info_sel.entries().to_vec())?;
            let x0 = info_sel_h.selection()?.encode(EncodeStyle::Strict)?;
            // x1 = shallow(child): the subdirectory as a Ref.
            let x1 = child.encode(EncodeStyle::Shallow)?;

            let rest_blob = ctx.host.create_blob(rest.into_bytes())?;
            let next = ctx
                .host
                .create_tree(vec![rlimit, self_proc, rest_blob, x0, x1])?;
            next.application()
        }),
    )
}

/// Looks a path up through the Fix-level `get-file` procedure: builds
/// the initial invocation against `root` and evaluates it.
///
/// Returns the entry's handle: for a file, the blob (as stored); for a
/// directory, the directory tree.
pub fn get_file<R: ObjectApi + Evaluator>(
    rt: &R,
    get_file_proc: Handle,
    root: Handle,
    path: &str,
) -> Result<Handle> {
    let root_tree = rt.get_tree(root)?;
    let info = root_tree.get(0).ok_or(Error::MalformedTree {
        handle: root,
        reason: "root has no info slot".into(),
    })?;
    let path_blob = rt.put_blob(Blob::from_slice(path.as_bytes()));
    let inv = Invocation {
        limits: ResourceLimits::default_limits(),
        procedure: get_file_proc,
        args: vec![path_blob, info, root.as_ref_handle()],
    };
    let tree = rt.put_tree(inv.to_tree());
    let thunk = tree.application()?;
    rt.eval(thunk)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fs::FsBuilder;
    use fixpoint::Runtime;

    fn runtime_with_fs() -> (Runtime, Handle, Handle) {
        let rt = Runtime::builder().build();
        let mut fs = FsBuilder::new();
        fs.add_file("dir0/file1", b"contents of file1".to_vec())
            .unwrap();
        fs.add_file("dir0/deeper/file3", vec![9u8; 5000]).unwrap();
        fs.add_file("file0", b"top-level".to_vec()).unwrap();
        fs.add_file("dir1/unrelated", vec![1u8; 100_000]).unwrap();
        let root = fs.build(rt.store());
        let proc_h = register_get_file(&rt);
        (rt, root, proc_h)
    }

    #[test]
    fn finds_top_level_file() {
        let (rt, root, p) = runtime_with_fs();
        let h = get_file(&rt, p, root, "file0").unwrap();
        assert_eq!(rt.get_blob(h).unwrap().as_slice(), b"top-level");
    }

    #[test]
    fn descends_directories_lazily() {
        let (rt, root, p) = runtime_with_fs();
        let h = get_file(&rt, p, root, "dir0/deeper/file3").unwrap();
        assert_eq!(rt.get_blob(h).unwrap().len(), 5000);
    }

    #[test]
    fn missing_file_errors() {
        let (rt, root, p) = runtime_with_fs();
        let err = get_file(&rt, p, root, "dir0/nope").unwrap_err();
        assert!(err.to_string().contains("not found"), "{err}");
    }

    #[test]
    fn footprint_excludes_unrelated_subtrees() {
        // The heart of Fig. 4: each step's minimum repository holds the
        // path, the codelet, and ONE directory's info — never the
        // 100 KB file in dir1 or even dir0's file contents.
        let (rt, root, p) = runtime_with_fs();
        let root_tree = rt.get_tree(root).unwrap();
        let info = root_tree.get(0).unwrap();
        let path_blob = rt.put_blob(Blob::from_slice(b"dir0/file1"));
        let inv = Invocation {
            limits: ResourceLimits::default_limits(),
            procedure: p,
            args: vec![path_blob, info, root.as_ref_handle()],
        };
        let tree = rt.put_tree(inv.to_tree());
        let thunk = tree.application().unwrap();
        let fp = rt.footprint(thunk).unwrap();
        // Footprint: the application tree + the info blob (the path and
        // codelet marker are literals). The root dir itself is a Ref.
        assert!(fp.total_bytes < 1000, "footprint too big: {fp:?}");
        assert_eq!(fp.refs.len(), 1);
        // And evaluation still works afterward.
        let h = rt.eval(thunk).unwrap();
        assert_eq!(rt.get_blob(h).unwrap().as_slice(), b"contents of file1");
    }
}
