//! The Flatware filesystem representation: directories as nested Trees.
//!
//! Following the paper's Fig. 4, a directory is a Tree whose slot 0 is an
//! "inode info" Blob (mapping entry indices to names, kinds, and sizes)
//! and whose remaining slots are the entries themselves — file Blobs and
//! subdirectory Trees, stored as *Refs* so that holding a directory never
//! implies fetching its contents.
//!
//! ```text
//! dir := Tree [ info-blob, entry_1, entry_2, ... ]     (entry i ↔ info i-1)
//! info-blob := u32 count, then per entry:
//!              u8 kind (0 file, 1 dir), u48 size, u16 name-len, name
//! ```

use fix_core::api::ObjectApi;
use fix_core::data::{Blob, Tree};
use fix_core::error::{Error, Result};
use fix_core::handle::{DataType, Handle, Kind};
use std::collections::BTreeMap;

/// The kind of a directory entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EntryKind {
    /// A regular file (a Blob).
    File,
    /// A subdirectory (a nested Tree).
    Dir,
}

/// One entry in a directory's inode-info blob.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DirEntry {
    /// Entry name (no '/' allowed).
    pub name: String,
    /// File or directory.
    pub kind: EntryKind,
    /// Size: bytes for files, entry count for directories.
    pub size: u64,
}

/// The parsed inode-info blob of one directory.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DirInfo {
    /// Entries, in tree-slot order (slot `i + 1` holds entry `i`).
    pub entries: Vec<DirEntry>,
}

impl DirInfo {
    /// Serializes to the canonical info-blob format.
    pub fn to_blob(&self) -> Blob {
        let mut out = Vec::new();
        out.extend_from_slice(&(self.entries.len() as u32).to_le_bytes());
        for e in &self.entries {
            out.push(match e.kind {
                EntryKind::File => 0,
                EntryKind::Dir => 1,
            });
            out.extend_from_slice(&e.size.to_le_bytes()[..6]);
            let name = e.name.as_bytes();
            out.extend_from_slice(&(name.len() as u16).to_le_bytes());
            out.extend_from_slice(name);
        }
        Blob::from_vec(out)
    }

    /// Parses an info blob.
    pub fn from_blob(blob: &Blob) -> Result<DirInfo> {
        let data = blob.as_slice();
        let fail = |reason: &str| Error::Trap(format!("malformed dir info: {reason}"));
        if data.len() < 4 {
            return Err(fail("too short"));
        }
        let count = u32::from_le_bytes([data[0], data[1], data[2], data[3]]) as usize;
        let mut pos = 4;
        let mut entries = Vec::with_capacity(count);
        for _ in 0..count {
            if pos + 9 > data.len() {
                return Err(fail("truncated entry"));
            }
            let kind = match data[pos] {
                0 => EntryKind::File,
                1 => EntryKind::Dir,
                _ => return Err(fail("bad entry kind")),
            };
            let mut size_bytes = [0u8; 8];
            size_bytes[..6].copy_from_slice(&data[pos + 1..pos + 7]);
            let size = u64::from_le_bytes(size_bytes);
            let name_len = u16::from_le_bytes([data[pos + 7], data[pos + 8]]) as usize;
            pos += 9;
            if pos + name_len > data.len() {
                return Err(fail("truncated name"));
            }
            let name = String::from_utf8(data[pos..pos + name_len].to_vec())
                .map_err(|_| fail("name is not UTF-8"))?;
            pos += name_len;
            entries.push(DirEntry { name, kind, size });
        }
        if pos != data.len() {
            return Err(fail("trailing bytes"));
        }
        Ok(DirInfo { entries })
    }

    /// The index of `name` among the entries.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.entries.iter().position(|e| e.name == name)
    }
}

enum NodeBuilder {
    File(Vec<u8>),
    Dir(BTreeMap<String, NodeBuilder>),
}

/// Builds a Flatware filesystem from paths, then stores it.
///
/// # Examples
///
/// ```
/// use flatware::FsBuilder;
/// use fix_storage::Store;
///
/// let store = Store::new();
/// let mut fs = FsBuilder::new();
/// fs.add_file("src/main.rs", b"fn main() {}".to_vec()).unwrap();
/// fs.add_file("README.md", b"# hi".to_vec()).unwrap();
/// let root = fs.build(&store);
/// let file = flatware::resolve(&store, root, "src/main.rs").unwrap();
/// assert_eq!(store.get_blob(file).unwrap().as_slice(), b"fn main() {}");
/// ```
pub struct FsBuilder {
    root: BTreeMap<String, NodeBuilder>,
}

impl Default for FsBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl FsBuilder {
    /// Creates an empty filesystem.
    pub fn new() -> FsBuilder {
        FsBuilder {
            root: BTreeMap::new(),
        }
    }

    /// Adds a file at `path` (components separated by '/'). Intermediate
    /// directories are created; adding over an existing directory fails.
    pub fn add_file(&mut self, path: &str, contents: Vec<u8>) -> Result<()> {
        let mut parts: Vec<&str> = path.split('/').filter(|p| !p.is_empty()).collect();
        if parts.is_empty() {
            return Err(Error::Trap("empty path".into()));
        }
        let file = parts.pop().expect("nonempty");
        let mut dir = &mut self.root;
        for part in parts {
            let next = dir
                .entry(part.to_string())
                .or_insert_with(|| NodeBuilder::Dir(BTreeMap::new()));
            match next {
                NodeBuilder::Dir(children) => dir = children,
                NodeBuilder::File(_) => {
                    return Err(Error::Trap(format!(
                        "path component '{part}' is a file, not a directory"
                    )))
                }
            }
        }
        if matches!(dir.get(file), Some(NodeBuilder::Dir(_))) {
            return Err(Error::Trap(format!("'{file}' is already a directory")));
        }
        dir.insert(file.to_string(), NodeBuilder::File(contents));
        Ok(())
    }

    /// Stores the filesystem into any [`ObjectApi`] backend (a bare
    /// store, a runtime, a cluster client); returns the root directory's
    /// Tree handle (as an accessible Object — demote with
    /// `as_ref_handle` to model a remote filesystem).
    pub fn build<A: ObjectApi>(&self, store: &A) -> Handle {
        build_dir(&self.root, store)
    }
}

fn build_dir<A: ObjectApi>(dir: &BTreeMap<String, NodeBuilder>, store: &A) -> Handle {
    let mut info = DirInfo::default();
    let mut slots: Vec<Handle> = Vec::with_capacity(dir.len() + 1);
    slots.push(Handle::literal(b"").expect("empty literal")); // Placeholder.
    for (name, node) in dir {
        match node {
            NodeBuilder::File(contents) => {
                let h = store.put_blob(Blob::from_slice(contents));
                info.entries.push(DirEntry {
                    name: name.clone(),
                    kind: EntryKind::File,
                    size: contents.len() as u64,
                });
                // Entries are Refs: naming a file must not fetch it.
                slots.push(h.as_ref_handle());
            }
            NodeBuilder::Dir(children) => {
                let h = build_dir(children, store);
                info.entries.push(DirEntry {
                    name: name.clone(),
                    kind: EntryKind::Dir,
                    size: h.size(),
                });
                slots.push(h.as_ref_handle());
            }
        }
    }
    slots[0] = store.put_blob(info.to_blob());
    store.put_tree(Tree::from_handles(slots))
}

/// Trusted (runtime-side) path resolution: walks the directory trees
/// directly. Returns the entry's handle (a Ref, as stored).
pub fn resolve<A: ObjectApi>(store: &A, root: Handle, path: &str) -> Result<Handle> {
    let mut current = root;
    let parts: Vec<&str> = path.split('/').filter(|p| !p.is_empty()).collect();
    if parts.is_empty() {
        return Ok(root);
    }
    for (i, part) in parts.iter().enumerate() {
        if !matches!(
            current.kind(),
            Kind::Object(DataType::Tree) | Kind::Ref(DataType::Tree)
        ) {
            return Err(Error::TypeMismatch {
                handle: current,
                expected: "a directory tree",
            });
        }
        let tree = store.get_tree(current)?;
        let info =
            DirInfo::from_blob(&store.get_blob(tree.get(0).ok_or(Error::MalformedTree {
                handle: current,
                reason: "directory has no info slot".into(),
            })?)?)?;
        let idx = info
            .index_of(part)
            .ok_or_else(|| Error::Trap(format!("path component '{part}' not found")))?;
        let entry = tree.get(idx + 1).ok_or(Error::MalformedTree {
            handle: current,
            reason: format!("info lists entry {idx} but tree is too short"),
        })?;
        let is_last = i + 1 == parts.len();
        if !is_last && info.entries[idx].kind == EntryKind::File {
            return Err(Error::Trap(format!("'{part}' is a file, not a directory")));
        }
        current = entry;
    }
    Ok(current.as_object_handle())
}

/// Lists a directory's entries (trusted path).
pub fn list_dir<A: ObjectApi>(store: &A, dir: Handle) -> Result<Vec<DirEntry>> {
    let tree = store.get_tree(dir)?;
    let info_handle = tree.get(0).ok_or(Error::MalformedTree {
        handle: dir,
        reason: "directory has no info slot".into(),
    })?;
    Ok(DirInfo::from_blob(&store.get_blob(info_handle)?)?.entries)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fix_storage::Store;

    fn sample() -> (Store, Handle) {
        let store = Store::new();
        let mut fs = FsBuilder::new();
        fs.add_file("dir0/file1", b"one".to_vec()).unwrap();
        fs.add_file("dir0/nested/file2", b"two".to_vec()).unwrap();
        fs.add_file("file0", b"zero".to_vec()).unwrap();
        let root = fs.build(&store);
        (store, root)
    }

    #[test]
    fn info_blob_round_trip() {
        let info = DirInfo {
            entries: vec![
                DirEntry {
                    name: "a".into(),
                    kind: EntryKind::File,
                    size: 3,
                },
                DirEntry {
                    name: "βeta".into(),
                    kind: EntryKind::Dir,
                    size: 2,
                },
            ],
        };
        let rt = DirInfo::from_blob(&info.to_blob()).unwrap();
        assert_eq!(rt, info);
        assert_eq!(rt.index_of("βeta"), Some(1));
        assert_eq!(rt.index_of("nope"), None);
    }

    #[test]
    fn malformed_info_rejected() {
        assert!(DirInfo::from_blob(&Blob::from_slice(b"xx")).is_err());
        let mut bad = DirInfo {
            entries: vec![DirEntry {
                name: "a".into(),
                kind: EntryKind::File,
                size: 1,
            }],
        }
        .to_blob()
        .as_slice()
        .to_vec();
        bad.push(0xFF); // Trailing garbage.
        assert!(DirInfo::from_blob(&Blob::from_vec(bad)).is_err());
    }

    #[test]
    fn resolve_files_at_multiple_depths() {
        let (store, root) = sample();
        let f0 = resolve(&store, root, "file0").unwrap();
        assert_eq!(store.get_blob(f0).unwrap().as_slice(), b"zero");
        let f1 = resolve(&store, root, "dir0/file1").unwrap();
        assert_eq!(store.get_blob(f1).unwrap().as_slice(), b"one");
        let f2 = resolve(&store, root, "dir0/nested/file2").unwrap();
        assert_eq!(store.get_blob(f2).unwrap().as_slice(), b"two");
    }

    #[test]
    fn resolve_errors() {
        let (store, root) = sample();
        assert!(resolve(&store, root, "missing").is_err());
        assert!(resolve(&store, root, "file0/inside-a-file").is_err());
        // Resolving the empty path gives the root back.
        assert_eq!(resolve(&store, root, "").unwrap(), root);
    }

    #[test]
    fn entries_are_stored_as_refs() {
        let (store, root) = sample();
        let tree = store.get_tree(root).unwrap();
        for entry in tree.entries().iter().skip(1) {
            assert!(!entry.is_accessible(), "{entry} should be a Ref");
        }
        let dirs = list_dir(&store, root).unwrap();
        assert_eq!(dirs.len(), 2);
        assert_eq!(dirs[0].name, "dir0");
        assert_eq!(dirs[0].kind, EntryKind::Dir);
        assert_eq!(dirs[1].name, "file0");
        assert_eq!(dirs[1].size, 4);
    }

    #[test]
    fn builder_rejects_conflicts() {
        let mut fs = FsBuilder::new();
        fs.add_file("a/b", b"x".to_vec()).unwrap();
        assert!(fs.add_file("a/b/c", b"y".to_vec()).is_err());
        assert!(fs.add_file("a", b"z".to_vec()).is_err());
        assert!(fs.add_file("", b"w".to_vec()).is_err());
    }

    #[test]
    fn identical_content_shares_storage() {
        let store = Store::new();
        let mut fs = FsBuilder::new();
        let big = vec![7u8; 10_000];
        fs.add_file("a/copy1.bin", big.clone()).unwrap();
        fs.add_file("b/copy2.bin", big.clone()).unwrap();
        fs.build(&store);
        // Content addressing: one 10 KB blob, not two.
        let big_handles = store
            .inventory()
            .into_iter()
            .filter(|h| h.size() == 10_000)
            .count();
        assert_eq!(big_handles, 1);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use fix_storage::Store;
    use proptest::prelude::*;
    use std::collections::HashMap;

    /// Strategy: plausible path segments (no '/', nonempty).
    fn segment() -> impl Strategy<Value = String> {
        "[a-z][a-z0-9_.]{0,8}".prop_map(|s| s)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Any set of added files resolves back byte-identically; adds
        /// that conflict (file vs directory) fail without corrupting
        /// prior structure.
        #[test]
        fn random_trees_resolve_every_file(
            files in proptest::collection::vec(
                (proptest::collection::vec(segment(), 1..4),
                 proptest::collection::vec(any::<u8>(), 0..64)),
                1..20,
            ),
        ) {
            let store = Store::new();
            let mut fs = FsBuilder::new();
            // Last successful write wins, like the builder's map insert.
            let mut oracle: HashMap<String, Vec<u8>> = HashMap::new();
            for (segments, contents) in &files {
                let path = segments.join("/");
                if fs.add_file(&path, contents.clone()).is_ok() {
                    // A file add may shadow nothing or overwrite the
                    // same path; directories it created may have
                    // invalidated an earlier file's prefix? No: adds
                    // fail instead of replacing files with directories.
                    // (The entry is reinserted just below.)
                    oracle.retain(|p, _| p != &path);
                    oracle.insert(path, contents.clone());
                }
            }
            let root = fs.build(&store);
            for (path, contents) in &oracle {
                let h = resolve(&store, root, path).unwrap();
                let got = store.get_blob(h).unwrap();
                prop_assert_eq!(got.as_slice(), contents.as_slice());
            }
        }

        /// The filesystem handle is canonical: insertion order of files
        /// never changes the root handle (content addressing).
        #[test]
        fn build_is_order_independent(
            mut files in proptest::collection::hash_map(
                segment(), proptest::collection::vec(any::<u8>(), 0..32), 1..10,
            ),
        ) {
            let forward: Vec<(String, Vec<u8>)> = files.drain().collect();
            let mut reverse = forward.clone();
            reverse.reverse();
            let build_root = |list: &[(String, Vec<u8>)]| {
                let store = Store::new();
                let mut fs = FsBuilder::new();
                for (p, c) in list {
                    fs.add_file(p, c.clone()).unwrap();
                }
                fs.build(&store)
            };
            prop_assert_eq!(build_root(&forward), build_root(&reverse));
        }
    }
}
