//! `flatware`: a Unix-like filesystem layer over Fix Trees.
//!
//! The paper's Flatware (§4.1.4) implements the WASI interface in terms
//! of the Fixpoint API, treating a Thunk's arguments as a Unix-like
//! filesystem so off-the-shelf POSIX programs (CPython, clang) run on
//! Fix. This crate reproduces that layer for the reproduction's guests:
//!
//! * [`FsBuilder`] / [`resolve`] / [`list_dir`] — directories as nested
//!   Trees with inode-info blobs (Fig. 4's representation);
//! * [`register_get_file`] / [`get_file`] — the lazy path-walk procedure
//!   of Algorithm 3, whose minimum repository stays O(one directory);
//! * [`run_program`] / [`register_posix_program`] — argv/stdout
//!   conventions so "computational" Unix programs port directly
//!   (used by the SeBS ports in `fix-workloads`, §5.6).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod fs;
mod getfile;
mod program;

pub use fs::{list_dir, resolve, DirEntry, DirInfo, EntryKind, FsBuilder};
pub use getfile::{get_file, register_get_file};
pub use program::{
    decode_argv, encode_argv, parse_program_result, register_posix_program, run_program, PosixWorld,
};
