//! Program conventions for POSIX-style guests (paper Fig. 5 / Fig. 11).
//!
//! Flatware lets Unix-shaped programs run on Fix by mapping their world
//! onto Fix objects:
//!
//! * the invocation is `[rlimits, program, argv, fs-root]` where `argv`
//!   is a NUL-separated argument blob and `fs-root` a Flatware
//!   directory;
//! * the result is a Tree `[exit-code, stdout]`.
//!
//! From Fixpoint's perspective this is "an ordinary unprivileged part of
//! the procedure": the runtime sees only data dependencies.

use crate::fs::DirEntry;
use fix_core::api::{Evaluator, InvocationApi, NativeCtx, ObjectApi};
use fix_core::data::{Blob, Tree};
use fix_core::error::{Error, Result};
use fix_core::handle::Handle;
use fix_core::invocation::Invocation;
use fix_core::limits::ResourceLimits;
use std::sync::Arc;

/// Encodes an argv list as a NUL-separated blob.
pub fn encode_argv(args: &[&str]) -> Blob {
    let mut out = Vec::new();
    for (i, a) in args.iter().enumerate() {
        if i > 0 {
            out.push(0);
        }
        out.extend_from_slice(a.as_bytes());
    }
    Blob::from_vec(out)
}

/// Decodes a NUL-separated argv blob.
pub fn decode_argv(blob: &Blob) -> Result<Vec<String>> {
    if blob.is_empty() {
        return Ok(Vec::new());
    }
    blob.as_slice()
        .split(|b| *b == 0)
        .map(|part| {
            String::from_utf8(part.to_vec()).map_err(|_| Error::Trap("argv is not UTF-8".into()))
        })
        .collect()
}

/// The world a ported POSIX-style program sees: argv + a read-only
/// filesystem + collected stdout.
pub struct PosixWorld<'a, 'b> {
    ctx: &'a mut NativeCtx<'b>,
    fs_root: Handle,
    /// Collected standard output.
    pub stdout: Vec<u8>,
}

impl<'a, 'b> PosixWorld<'a, 'b> {
    /// Builds the world from a Flatware-convention invocation.
    pub fn from_ctx(ctx: &'a mut NativeCtx<'b>) -> Result<(Vec<String>, PosixWorld<'a, 'b>)> {
        let argv = decode_argv(&ctx.arg_blob(0)?)?;
        let fs_root = ctx.arg(1)?;
        Ok((
            argv,
            PosixWorld {
                ctx,
                fs_root,
                stdout: Vec::new(),
            },
        ))
    }

    /// Reads a whole file from the filesystem.
    pub fn read_file(&mut self, path: &str) -> Result<Blob> {
        let h = self.walk(path)?;
        self.ctx.host.load_blob(h.as_object_handle())
    }

    /// Lists a directory.
    pub fn read_dir(&mut self, path: &str) -> Result<Vec<DirEntry>> {
        let h = self.walk(path)?;
        let tree = self.ctx.host.load_tree(h.as_object_handle())?;
        let info = self.ctx.host.load_blob(
            tree.get(0)
                .ok_or(Error::Trap("directory has no info slot".into()))?
                .as_object_handle(),
        )?;
        Ok(crate::fs::DirInfo::from_blob(&info)?.entries)
    }

    fn walk(&mut self, path: &str) -> Result<Handle> {
        let mut current = self.fs_root;
        for part in path.split('/').filter(|p| !p.is_empty()) {
            let tree = self.ctx.host.load_tree(current.as_object_handle())?;
            let info_blob = self.ctx.host.load_blob(
                tree.get(0)
                    .ok_or(Error::Trap("directory has no info slot".into()))?
                    .as_object_handle(),
            )?;
            let info = crate::fs::DirInfo::from_blob(&info_blob)?;
            let idx = info
                .index_of(part)
                .ok_or_else(|| Error::Trap(format!("'{part}': no such file or directory")))?;
            current = tree.get(idx + 1).expect("info and tree agree");
        }
        Ok(current)
    }

    /// Appends to standard output.
    pub fn print(&mut self, text: &str) {
        self.stdout.extend_from_slice(text.as_bytes());
    }

    /// Appends raw bytes to standard output.
    pub fn write(&mut self, bytes: &[u8]) {
        self.stdout.extend_from_slice(bytes);
    }

    /// Finishes the program, producing the `[exit-code, stdout]` tree.
    pub fn exit(self, code: u8) -> Result<Handle> {
        let code_h = Blob::from_slice(&[code]).handle();
        let out = self.ctx.host.create_blob(self.stdout)?;
        self.ctx.host.create_tree(vec![code_h, out])
    }
}

/// The entry point of a Flatware POSIX-style program: argv in, exit
/// status out, the world reachable through [`PosixWorld`].
pub type ProgramMain = Arc<dyn Fn(&[String], &mut PosixWorld<'_, '_>) -> Result<u8> + Send + Sync>;

/// Registers a POSIX-style program as a native codelet under Flatware
/// conventions, on any [`InvocationApi`] backend.
pub fn register_posix_program<R: InvocationApi>(rt: &R, name: &str, main: ProgramMain) -> Handle {
    rt.register_native(
        name,
        Arc::new(move |ctx| {
            let (argv, mut world) = PosixWorld::from_ctx(ctx)?;
            let code = main(&argv, &mut world)?;
            world.exit(code)
        }),
    )
}

/// Invokes a Flatware program on any One-Fix-API backend and returns
/// `(exit_code, stdout)`.
pub fn run_program<R: InvocationApi + Evaluator>(
    rt: &R,
    program: Handle,
    args: &[&str],
    fs_root: Handle,
) -> Result<(u8, Blob)> {
    let argv = rt.put_blob(encode_argv(args));
    let inv = Invocation {
        limits: ResourceLimits::default_limits(),
        procedure: program,
        args: vec![argv, fs_root],
    };
    let tree = rt.put_tree(inv.to_tree());
    let result = rt.eval_strict(tree.application()?)?;
    parse_program_result(rt, result)
}

/// Parses the `[exit-code, stdout]` result tree.
pub fn parse_program_result<A: ObjectApi>(store: &A, result: Handle) -> Result<(u8, Blob)> {
    let tree: Tree = store.get_tree(result)?;
    let code_blob = store.get_blob(tree.get(0).ok_or(Error::MalformedTree {
        handle: result,
        reason: "missing exit code".into(),
    })?)?;
    let code = *code_blob.as_slice().first().unwrap_or(&0);
    let stdout = store.get_blob(tree.get(1).ok_or(Error::MalformedTree {
        handle: result,
        reason: "missing stdout".into(),
    })?)?;
    Ok((code, stdout))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fs::FsBuilder;
    use fixpoint::Runtime;

    #[test]
    fn argv_round_trip() {
        let args = ["prog", "--flag", "value with spaces"];
        let blob = encode_argv(&args);
        let decoded = decode_argv(&blob).unwrap();
        assert_eq!(decoded, args);
        assert!(decode_argv(&Blob::from_slice(b"")).unwrap().is_empty());
    }

    fn cat_program(rt: &Runtime) -> Handle {
        register_posix_program(
            rt,
            "cat",
            Arc::new(|argv, world| {
                if argv.len() < 2 {
                    world.print("usage: cat FILE\n");
                    return Ok(1);
                }
                let contents = world.read_file(&argv[1])?;
                world.write(contents.as_slice());
                Ok(0)
            }),
        )
    }

    #[test]
    fn cat_reads_through_flatware() {
        let rt = Runtime::builder().build();
        let mut fs = FsBuilder::new();
        fs.add_file("etc/motd", b"hello from flatware\n".to_vec())
            .unwrap();
        let root = fs.build(rt.store());
        let cat = cat_program(&rt);
        let (code, out) = run_program(&rt, cat, &["cat", "etc/motd"], root).unwrap();
        assert_eq!(code, 0);
        assert_eq!(out.as_slice(), b"hello from flatware\n");
    }

    #[test]
    fn missing_file_is_a_guest_error() {
        let rt = Runtime::builder().build();
        let root = FsBuilder::new().build(rt.store());
        let cat = cat_program(&rt);
        let err = run_program(&rt, cat, &["cat", "nope"], root).unwrap_err();
        assert!(err.to_string().contains("no such file"), "{err}");
    }

    #[test]
    fn ls_like_listing() {
        let rt = Runtime::builder().build();
        let mut fs = FsBuilder::new();
        fs.add_file("a.txt", b"1".to_vec()).unwrap();
        fs.add_file("sub/b.txt", b"22".to_vec()).unwrap();
        let root = fs.build(rt.store());
        let ls = register_posix_program(
            &rt,
            "ls",
            Arc::new(|argv, world| {
                let path = argv.get(1).map(String::as_str).unwrap_or("");
                for e in world.read_dir(path)? {
                    world.print(&format!("{} {}\n", e.name, e.size));
                }
                Ok(0)
            }),
        );
        let (code, out) = run_program(&rt, ls, &["ls"], root).unwrap();
        assert_eq!(code, 0);
        assert_eq!(
            String::from_utf8(out.as_slice().to_vec()).unwrap(),
            "a.txt 1\nsub 2\n"
        );
        let (_, out2) = run_program(&rt, ls, &["ls", "sub"], root).unwrap();
        assert_eq!(
            String::from_utf8(out2.as_slice().to_vec()).unwrap(),
            "b.txt 2\n"
        );
    }

    #[test]
    fn identical_invocations_are_memoized() {
        let rt = Runtime::builder().build();
        let mut fs = FsBuilder::new();
        fs.add_file("x", b"data".to_vec()).unwrap();
        let root = fs.build(rt.store());
        let cat = cat_program(&rt);
        let (_, a) = run_program(&rt, cat, &["cat", "x"], root).unwrap();
        let before = rt
            .engine()
            .stats
            .procedures_run
            .load(std::sync::atomic::Ordering::Relaxed);
        let (_, b) = run_program(&rt, cat, &["cat", "x"], root).unwrap();
        let after = rt
            .engine()
            .stats
            .procedures_run
            .load(std::sync::atomic::Ordering::Relaxed);
        assert_eq!(a, b);
        assert_eq!(before, after, "second run must hit the relation cache");
    }
}
