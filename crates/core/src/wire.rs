//! The packed transfer format: how Fixpoint nodes exchange Fix values.
//!
//! The paper's nodes "delegate jobs to remote nodes by sending Fix
//! values — Blobs and Trees... as all dependencies are specified as part
//! of the packed binary format, Fixpoint doesn't need to maintain a
//! global data structure or perform multiple roundtrips" (§4.2.1). A
//! [`Parcel`] is that format: a root handle plus the data for a set of
//! objects, self-describing and verifiable (every payload is re-hashed
//! on import).
//!
//! Layout (all integers little endian):
//!
//! ```text
//! [ magic "FIXWIRE1" ][ root handle: 32 bytes ][ u32 object count ]
//! per object: [ handle: 32 bytes ][ u32 byte length ][ payload ]
//! ```
//!
//! Blob payloads are the raw bytes; Tree payloads are the canonical
//! 32-byte-per-entry serialization.

use crate::data::{Blob, Node, Tree};
use crate::error::{Error, Result};
use crate::handle::{DataType, Handle, Kind};

/// The 8-byte parcel magic.
pub const MAGIC: &[u8; 8] = b"FIXWIRE1";

/// A self-contained shipment of Fix objects plus a root of interest
/// (a thunk to evaluate remotely, or a value being returned).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Parcel {
    /// What the shipment is about (need not be included in `objects` —
    /// it may be a thunk over them, or a literal).
    pub root: Handle,
    /// The shipped data, in an order chosen by the sender.
    pub objects: Vec<Node>,
}

impl Parcel {
    /// Creates a parcel.
    pub fn new(root: Handle, objects: Vec<Node>) -> Parcel {
        Parcel { root, objects }
    }

    /// Serializes to the packed wire format.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(MAGIC);
        out.extend_from_slice(self.root.raw());
        out.extend_from_slice(&(self.objects.len() as u32).to_le_bytes());
        for node in &self.objects {
            out.extend_from_slice(node.handle().raw());
            let payload = match node {
                Node::Blob(b) => b.as_slice().to_vec(),
                Node::Tree(t) => t.canonical_bytes(),
            };
            out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
            out.extend_from_slice(&payload);
        }
        out
    }

    /// Parses and *verifies* a parcel: every handle encoding must be
    /// canonical and every payload must hash to its declared handle —
    /// a receiving node never trusts the sender's names.
    pub fn from_bytes(data: &[u8]) -> Result<Parcel> {
        let fail = |r: &str| Error::Trap(format!("malformed parcel: {r}"));
        if data.len() < MAGIC.len() + 36 || &data[..MAGIC.len()] != MAGIC {
            return Err(fail("bad magic or truncated header"));
        }
        let mut pos = MAGIC.len();
        let take = |pos: &mut usize, n: usize| -> Result<&[u8]> {
            let s = data
                .get(*pos..*pos + n)
                .ok_or_else(|| fail("truncated parcel"))?;
            *pos += n;
            Ok(s)
        };

        let mut raw = [0u8; 32];
        raw.copy_from_slice(take(&mut pos, 32)?);
        let root = Handle::from_raw(raw)?;

        let count = {
            let b = take(&mut pos, 4)?;
            u32::from_le_bytes([b[0], b[1], b[2], b[3]]) as usize
        };
        let mut objects = Vec::with_capacity(count);
        for _ in 0..count {
            let mut raw = [0u8; 32];
            raw.copy_from_slice(take(&mut pos, 32)?);
            let declared = Handle::from_raw(raw)?;
            let len = {
                let b = take(&mut pos, 4)?;
                u32::from_le_bytes([b[0], b[1], b[2], b[3]]) as usize
            };
            let payload = take(&mut pos, len)?;
            let node = match declared.kind() {
                Kind::Object(DataType::Blob) | Kind::Ref(DataType::Blob) => {
                    Node::Blob(Blob::from_slice(payload))
                }
                Kind::Object(DataType::Tree) | Kind::Ref(DataType::Tree) => {
                    Node::Tree(Tree::from_canonical_bytes(payload)?)
                }
                _ => return Err(fail("parcel object with a non-value handle")),
            };
            // Verify content addressing: payload must match the name.
            if node.handle().digest() != declared.digest()
                || node.handle().size() != declared.size()
            {
                return Err(Error::Trap(format!(
                    "parcel integrity failure: declared {declared}, got {}",
                    node.handle()
                )));
            }
            objects.push(node);
        }
        if pos != data.len() {
            return Err(fail("trailing bytes"));
        }
        Ok(Parcel { root, objects })
    }

    /// Total payload bytes (the network cost of shipping this parcel).
    pub fn payload_bytes(&self) -> u64 {
        self.objects.iter().map(Node::transfer_size).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Parcel {
        let blob = Blob::from_vec(vec![7u8; 100]);
        let tree = Tree::from_handles(vec![blob.handle(), Blob::from_slice(b"lit").handle()]);
        let thunk = tree.handle().application().unwrap();
        Parcel::new(thunk, vec![Node::Blob(blob), Node::Tree(tree)])
    }

    #[test]
    fn round_trip() {
        let p = sample();
        let rt = Parcel::from_bytes(&p.to_bytes()).unwrap();
        assert_eq!(rt, p);
        assert_eq!(rt.payload_bytes(), 100 + 64);
    }

    #[test]
    fn empty_parcel_round_trips() {
        let p = Parcel::new(Blob::from_slice(b"x").handle(), vec![]);
        assert_eq!(Parcel::from_bytes(&p.to_bytes()).unwrap(), p);
    }

    #[test]
    fn rejects_corrupted_payload() {
        let p = sample();
        let mut bytes = p.to_bytes();
        // Flip a byte inside the blob payload.
        let n = bytes.len();
        bytes[n - 80] ^= 0xFF;
        let err = Parcel::from_bytes(&bytes).unwrap_err();
        assert!(err.to_string().contains("integrity"), "{err}");
    }

    #[test]
    fn rejects_truncation_and_trailing_bytes() {
        let p = sample();
        let bytes = p.to_bytes();
        assert!(Parcel::from_bytes(&bytes[..bytes.len() - 1]).is_err());
        let mut extended = bytes.clone();
        extended.push(0);
        assert!(Parcel::from_bytes(&extended).is_err());
        assert!(Parcel::from_bytes(b"NOTWIRE0").is_err());
    }

    #[test]
    fn rejects_thunk_handles_as_objects() {
        let tree = Tree::from_handles(vec![]);
        let thunk = tree.handle().application().unwrap();
        // Hand-craft a parcel claiming a thunk has a payload.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(MAGIC);
        bytes.extend_from_slice(thunk.raw());
        bytes.extend_from_slice(&1u32.to_le_bytes());
        bytes.extend_from_slice(thunk.raw());
        bytes.extend_from_slice(&0u32.to_le_bytes());
        assert!(Parcel::from_bytes(&bytes).is_err());
    }
}
