//! Storage-agnostic pieces of Fix semantics: data access, dependency
//! analysis, and minimum-repository (footprint) computation.
//!
//! The evaluator itself lives in the `fixpoint` runtime crate; what lives
//! here is everything that must be *shared understanding* between user
//! programs, the runtime, and the distributed scheduler — most importantly
//! the rule for what data an invocation may touch (paper §3.3):
//!
//! * Objects reachable from the application tree are in the footprint
//!   (recursively, through accessible Trees);
//! * Refs contribute only their metadata;
//! * Thunks contribute nothing (their definitions are lazily needed only
//!   if *they* are evaluated);
//! * Encodes must be resolved before launch, and their results join the
//!   footprint according to the encode style.

use crate::data::{literal_blob, Blob, Node, Tree};
use crate::error::{Error, Result};
use crate::handle::{DataType, EncodeStyle, Handle, Kind, ThunkKind};
use crate::invocation::Selection;
use std::collections::HashSet;

/// Anything that can produce the data behind canonical handles.
///
/// Implemented by `fix-storage`'s store and by in-memory test fixtures.
/// Lookups are by *payload* (digest); accessibility tags on the handle are
/// a capability concept, enforced at the guest API layer, not here.
pub trait DataSource {
    /// Loads the datum named by `handle`.
    ///
    /// Implementations should accept any data handle (Object or Ref, Blob
    /// or Tree) whose payload they hold, and must return
    /// [`Error::NotFound`] otherwise.
    fn load(&self, handle: Handle) -> Result<Node>;
}

/// Loads a Blob through a [`DataSource`], serving literals inline.
pub fn load_blob(source: &dyn DataSource, handle: Handle) -> Result<Blob> {
    match handle.kind() {
        Kind::Object(DataType::Blob) | Kind::Ref(DataType::Blob) => {
            if let Some(b) = literal_blob(handle) {
                Ok(b)
            } else {
                source.load(handle)?.as_blob().cloned()
            }
        }
        _ => Err(Error::TypeMismatch {
            handle,
            expected: "blob",
        }),
    }
}

/// Loads a Tree through a [`DataSource`].
pub fn load_tree(source: &dyn DataSource, handle: Handle) -> Result<Tree> {
    match handle.kind() {
        Kind::Object(DataType::Tree) | Kind::Ref(DataType::Tree) => {
            source.load(handle)?.as_tree().cloned()
        }
        _ => Err(Error::TypeMismatch {
            handle,
            expected: "tree",
        }),
    }
}

/// Resolves previously-computed Encode results.
///
/// The runtime implements this with its memoized relation cache; footprint
/// analysis uses it to fold resolved encodes into the repository.
pub trait EncodeResolver {
    /// The result of the encode, if it has already been computed.
    fn resolved(&self, encode: Handle) -> Option<Handle>;
}

/// An [`EncodeResolver`] that knows nothing (used before any evaluation).
pub struct NoResolution;

impl EncodeResolver for NoResolution {
    fn resolved(&self, _encode: Handle) -> Option<Handle> {
        None
    }
}

/// The minimum repository of a Thunk: what must be resident before launch.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Footprint {
    /// Canonical data handles whose contents must be local (deduplicated,
    /// in discovery order). Literals never appear here.
    pub objects: Vec<Handle>,
    /// Total bytes across `objects` (blob lengths + 32 bytes/tree entry).
    pub total_bytes: u64,
    /// Encodes that are not yet resolved; the runtime must evaluate these
    /// before the footprint is complete.
    pub unresolved_encodes: Vec<Handle>,
    /// Refs encountered: data that is *named* but must not be fetched.
    pub refs: Vec<Handle>,
}

impl Footprint {
    /// True when every dependency is resolved and the footprint is final.
    pub fn is_complete(&self) -> bool {
        self.unresolved_encodes.is_empty()
    }

    /// Merges `other` into `self`, deduplicating: a datum required by two
    /// requests appears (and is counted in `total_bytes`) once. The merge
    /// of per-request footprints is exactly the set a batch transfer — or
    /// a snapshot pinning the batch — must cover.
    pub fn merge(&mut self, other: &Footprint) {
        let mut seen: HashSet<[u8; 32]> = self.objects.iter().map(|h| payload_key(*h)).collect();
        for &h in &other.objects {
            if seen.insert(payload_key(h)) {
                self.objects.push(h);
                self.total_bytes += handle_transfer_size(h);
            }
        }
        merge_unique(&mut self.unresolved_encodes, &other.unresolved_encodes);
        merge_unique(&mut self.refs, &other.refs);
    }
}

/// [`Node::transfer_size`], computed from the handle alone (the size
/// rides in the name: blob length, or 32 bytes per tree entry).
fn handle_transfer_size(handle: Handle) -> u64 {
    match handle.kind() {
        Kind::Object(DataType::Tree) | Kind::Ref(DataType::Tree) => 32 * handle.size(),
        _ => handle.size(),
    }
}

/// Appends the elements of `extra` not already in `dst`, preserving order.
fn merge_unique(dst: &mut Vec<Handle>, extra: &[Handle]) {
    let mut seen: HashSet<[u8; 32]> = dst.iter().map(|h| *h.raw()).collect();
    for &h in extra {
        if seen.insert(*h.raw()) {
            dst.push(h);
        }
    }
}

/// Computes the minimum repository of `thunk` (paper §3.3).
///
/// For Application thunks, walks the definition tree applying the footprint
/// rules. For Selection and Identification thunks, the target data itself
/// is required (the runtime performs the extraction). Returns an error if
/// tree data needed for the analysis is missing from `source`.
///
/// # Examples
///
/// ```
/// use fix_core::data::{Blob, Tree};
/// use fix_core::limits::ResourceLimits;
/// use fix_core::semantics::{footprint, NoResolution, MapSource};
///
/// let mut src = MapSource::default();
/// let big = Blob::from_slice(&[7u8; 100]);
/// let tree = Tree::from_handles(vec![
///     ResourceLimits::default_limits().handle(),
///     Blob::from_slice(b"code").handle(),
///     big.handle(),                    // accessible: in footprint
///     big.handle().as_ref_handle(),    // ref: metadata only
/// ]);
/// src.insert_blob(&big);
/// src.insert_tree(&tree);
/// let thunk = tree.handle().application().unwrap();
/// let fp = footprint(&src, thunk, &NoResolution).unwrap();
/// assert_eq!(fp.objects.len(), 2); // The tree itself + the big blob.
/// assert!(fp.refs.len() == 1 && fp.is_complete());
/// ```
pub fn footprint(
    source: &dyn DataSource,
    thunk: Handle,
    resolver: &dyn EncodeResolver,
) -> Result<Footprint> {
    let mut fp = Footprint::default();
    let mut seen = HashSet::new();
    footprint_into(source, thunk, resolver, &mut fp, &mut seen)?;
    Ok(fp)
}

/// Computes the combined minimum repository of a batch of thunks.
///
/// Equivalent to folding [`Footprint::merge`] over per-thunk
/// [`footprint`]s, but shares one seen-set so data common to several
/// requests is walked once: the result is exactly the set of objects a
/// batch transfer must ship — or a snapshot must pin — to cover every
/// request, with `total_bytes` counting each distinct object once.
pub fn footprint_many(
    source: &dyn DataSource,
    thunks: &[Handle],
    resolver: &dyn EncodeResolver,
) -> Result<Footprint> {
    let mut fp = Footprint::default();
    let mut seen = HashSet::new();
    for &thunk in thunks {
        footprint_into(source, thunk, resolver, &mut fp, &mut seen)?;
    }
    // The object walk dedups via `seen`; refs and unresolved encodes are
    // pushed per occurrence, so dedup them across the batch here.
    dedup_in_place(&mut fp.unresolved_encodes);
    dedup_in_place(&mut fp.refs);
    Ok(fp)
}

fn dedup_in_place(handles: &mut Vec<Handle>) {
    let mut seen = HashSet::new();
    handles.retain(|h| seen.insert(*h.raw()));
}

fn footprint_into(
    source: &dyn DataSource,
    thunk: Handle,
    resolver: &dyn EncodeResolver,
    fp: &mut Footprint,
    seen: &mut HashSet<[u8; 32]>,
) -> Result<()> {
    match thunk.kind() {
        Kind::Thunk(ThunkKind::Application) => {
            let def = thunk.thunk_definition()?;
            add_object_recursive(source, def, resolver, fp, seen)?;
        }
        Kind::Thunk(ThunkKind::Selection) => {
            let def = thunk.thunk_definition()?;
            // The definition tree is tiny ([target, begin, end?]) but needed.
            add_data(source, def, fp, seen)?;
            let tree = load_tree(source, def)?;
            let sel = Selection::from_tree(&tree)?;
            // The target's own data is needed (but not its children): the
            // runtime reads it to perform the extraction.
            match sel.target.kind() {
                Kind::Object(_) | Kind::Ref(_) => add_data(source, sel.target, fp, seen)?,
                Kind::Thunk(_) => { /* evaluated first; contributes nothing yet */ }
                Kind::Encode(..) => match resolver.resolved(sel.target) {
                    Some(r) => add_data(source, r, fp, seen)?,
                    None => fp.unresolved_encodes.push(sel.target),
                },
            }
        }
        Kind::Thunk(ThunkKind::Identification) => {
            let target = thunk.thunk_definition()?;
            add_data(source, target, fp, seen)?;
        }
        _ => {
            return Err(Error::TypeMismatch {
                handle: thunk,
                expected: "a Thunk",
            })
        }
    }
    Ok(())
}

/// Adds a single datum (no recursion into tree children).
fn add_data(
    source: &dyn DataSource,
    handle: Handle,
    fp: &mut Footprint,
    seen: &mut HashSet<[u8; 32]>,
) -> Result<()> {
    if handle.is_literal() || !seen.insert(payload_key(handle)) {
        return Ok(());
    }
    // Record canonical-object residency; verify presence so that missing
    // data is reported at analysis time rather than mid-execution.
    let node = source.load(handle)?;
    fp.objects.push(handle.as_object_handle());
    fp.total_bytes += node.transfer_size();
    Ok(())
}

/// Applies the footprint rules recursively from an accessible handle.
fn add_object_recursive(
    source: &dyn DataSource,
    handle: Handle,
    resolver: &dyn EncodeResolver,
    fp: &mut Footprint,
    seen: &mut HashSet<[u8; 32]>,
) -> Result<()> {
    match handle.kind() {
        Kind::Object(DataType::Blob) => add_data(source, handle, fp, seen),
        Kind::Object(DataType::Tree) => {
            if !handle.is_literal() && seen.contains(&payload_key(handle)) {
                return Ok(());
            }
            add_data(source, handle, fp, seen)?;
            let tree = load_tree(source, handle)?;
            for entry in tree.entries() {
                add_object_recursive(source, *entry, resolver, fp, seen)?;
            }
            Ok(())
        }
        Kind::Ref(_) => {
            fp.refs.push(handle);
            Ok(())
        }
        // Lazy: a thunk's definition is not part of the parent's footprint.
        Kind::Thunk(_) => Ok(()),
        Kind::Encode(style, _) => match resolver.resolved(handle) {
            Some(result) => match style {
                // Strict results are fully accessible: recurse as Object.
                EncodeStyle::Strict => {
                    add_object_recursive(source, result.as_object_handle(), resolver, fp, seen)
                }
                // Shallow results are provided as Refs: metadata only.
                EncodeStyle::Shallow => {
                    if result.is_value() {
                        fp.refs.push(result.as_ref_handle());
                    }
                    Ok(())
                }
            },
            None => {
                fp.unresolved_encodes.push(handle);
                Ok(())
            }
        },
    }
}

/// The deduplication key for a handle: its payload and type, ignoring
/// accessibility tags (an Object and a Ref to the same tree are one datum).
fn payload_key(handle: Handle) -> [u8; 32] {
    let mut key = *handle.raw();
    // Normalize the kind byte to Object and keep the type/literal flags.
    key[30] = 0;
    key
}

/// Collects every Encode appearing in an application tree, recursively
/// through accessible sub-trees. These are the dependencies the runtime
/// must resolve before the invocation can launch.
pub fn collect_encodes(source: &dyn DataSource, tree: &Tree) -> Result<Vec<Handle>> {
    let mut found = Vec::new();
    let mut seen = HashSet::new();
    collect_encodes_inner(source, tree, &mut found, &mut seen)?;
    Ok(found)
}

fn collect_encodes_inner(
    source: &dyn DataSource,
    tree: &Tree,
    found: &mut Vec<Handle>,
    seen: &mut HashSet<[u8; 32]>,
) -> Result<()> {
    for entry in tree.entries() {
        match entry.kind() {
            Kind::Encode(..) if seen.insert(*entry.raw()) => {
                found.push(*entry);
            }
            Kind::Object(DataType::Tree) if seen.insert(*entry.raw()) => {
                let sub = load_tree(source, *entry)?;
                collect_encodes_inner(source, &sub, found, seen)?;
            }
            _ => {}
        }
    }
    Ok(())
}

/// Rewrites a tree, replacing each entry by `f(entry)` (recursing is the
/// caller's concern). Returns the new tree; identical output is detected
/// so unchanged trees keep their identity.
pub fn map_tree(tree: &Tree, mut f: impl FnMut(Handle) -> Result<Handle>) -> Result<Tree> {
    let mut entries = Vec::with_capacity(tree.len());
    for e in tree.entries() {
        entries.push(f(*e)?);
    }
    Ok(Tree::from_handles(entries))
}

/// A simple in-memory [`DataSource`] for tests, examples, and doc tests.
#[derive(Debug, Default, Clone)]
pub struct MapSource {
    items: std::collections::HashMap<[u8; 32], Node>,
}

impl MapSource {
    /// Registers a blob.
    pub fn insert_blob(&mut self, blob: &Blob) -> Handle {
        let h = blob.handle();
        if !h.is_literal() {
            self.items.insert(payload_key(h), Node::Blob(blob.clone()));
        }
        h
    }

    /// Registers a tree (entries are *not* automatically registered).
    pub fn insert_tree(&mut self, tree: &Tree) -> Handle {
        let h = tree.handle();
        self.items.insert(payload_key(h), Node::Tree(tree.clone()));
        h
    }
}

impl DataSource for MapSource {
    fn load(&self, handle: Handle) -> Result<Node> {
        if let Some(b) = literal_blob(handle) {
            return Ok(Node::Blob(b));
        }
        self.items
            .get(&payload_key(handle))
            .cloned()
            .ok_or(Error::NotFound(handle))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::invocation::build;
    use crate::limits::ResourceLimits;

    fn setup() -> (MapSource, Blob, Blob) {
        let src = MapSource::default();
        let code = Blob::from_slice(&[0xC0; 64]);
        let data = Blob::from_slice(&[0xDA; 256]);
        (src, code, data)
    }

    fn limits_handle() -> Handle {
        ResourceLimits::default_limits().handle()
    }

    #[test]
    fn footprint_counts_accessible_objects_once() {
        let (mut src, code, data) = setup();
        src.insert_blob(&code);
        src.insert_blob(&data);
        let tree = Tree::from_handles(vec![
            limits_handle(),
            code.handle(),
            data.handle(),
            data.handle(), // Duplicate: must not double count.
        ]);
        src.insert_tree(&tree);
        let thunk = tree.handle().application().unwrap();
        let fp = footprint(&src, thunk, &NoResolution).unwrap();
        assert_eq!(fp.objects.len(), 3); // tree + code + data
        assert_eq!(
            fp.total_bytes,
            (tree.len() * 32) as u64 + code.len() as u64 + data.len() as u64
        );
    }

    #[test]
    fn footprint_excludes_thunk_definitions() {
        let (mut src, code, data) = setup();
        src.insert_blob(&code);
        src.insert_blob(&data);
        // A lazy branch: application thunk over some other tree.
        let branch_tree = Tree::from_handles(vec![limits_handle(), code.handle(), data.handle()]);
        src.insert_tree(&branch_tree);
        let branch = branch_tree.handle().application().unwrap();

        let tree = Tree::from_handles(vec![limits_handle(), code.handle(), branch]);
        src.insert_tree(&tree);
        let thunk = tree.handle().application().unwrap();
        let fp = footprint(&src, thunk, &NoResolution).unwrap();
        // The branch's definition tree and `data` are NOT in the footprint.
        assert_eq!(fp.objects.len(), 2); // Just the application tree + code.
        assert!(fp.is_complete());
    }

    #[test]
    fn footprint_counts_refs_as_metadata_only() {
        let (mut src, code, data) = setup();
        src.insert_blob(&code);
        src.insert_blob(&data);
        let tree = Tree::from_handles(vec![
            limits_handle(),
            code.handle(),
            data.handle().as_ref_handle(),
        ]);
        src.insert_tree(&tree);
        let thunk = tree.handle().application().unwrap();
        let fp = footprint(&src, thunk, &NoResolution).unwrap();
        assert_eq!(fp.objects.len(), 2);
        assert_eq!(fp.refs.len(), 1);
        assert_eq!(fp.total_bytes, (tree.len() * 32) as u64 + code.len() as u64);
    }

    #[test]
    fn footprint_reports_unresolved_encodes() {
        let (mut src, code, data) = setup();
        src.insert_blob(&code);
        src.insert_blob(&data);
        let inner = Tree::from_handles(vec![limits_handle(), code.handle(), data.handle()]);
        src.insert_tree(&inner);
        let enc = build::strict(inner.handle().application().unwrap()).unwrap();
        let tree = Tree::from_handles(vec![limits_handle(), code.handle(), enc]);
        src.insert_tree(&tree);
        let thunk = tree.handle().application().unwrap();
        let fp = footprint(&src, thunk, &NoResolution).unwrap();
        assert_eq!(fp.unresolved_encodes, vec![enc]);
        assert!(!fp.is_complete());
    }

    #[test]
    fn footprint_folds_in_resolved_strict_encodes() {
        struct Fixed(Handle, Handle);
        impl EncodeResolver for Fixed {
            fn resolved(&self, e: Handle) -> Option<Handle> {
                (e == self.0).then_some(self.1)
            }
        }
        let (mut src, code, data) = setup();
        src.insert_blob(&code);
        src.insert_blob(&data);
        let inner = Tree::from_handles(vec![limits_handle(), code.handle()]);
        src.insert_tree(&inner);
        let enc = build::strict(inner.handle().application().unwrap()).unwrap();
        let tree = Tree::from_handles(vec![limits_handle(), code.handle(), enc]);
        src.insert_tree(&tree);
        let thunk = tree.handle().application().unwrap();

        let fp = footprint(&src, thunk, &Fixed(enc, data.handle())).unwrap();
        assert!(fp.is_complete());
        // The resolved result (a 256-byte blob) joined the footprint.
        assert!(fp.objects.contains(&data.handle()));
    }

    #[test]
    fn footprint_shallow_resolution_stays_metadata() {
        struct Fixed(Handle, Handle);
        impl EncodeResolver for Fixed {
            fn resolved(&self, e: Handle) -> Option<Handle> {
                (e == self.0).then_some(self.1)
            }
        }
        let (mut src, code, data) = setup();
        src.insert_blob(&code);
        src.insert_blob(&data);
        let inner = Tree::from_handles(vec![limits_handle(), code.handle()]);
        src.insert_tree(&inner);
        let enc = build::shallow(inner.handle().application().unwrap()).unwrap();
        let tree = Tree::from_handles(vec![limits_handle(), code.handle(), enc]);
        src.insert_tree(&tree);
        let thunk = tree.handle().application().unwrap();

        let fp = footprint(&src, thunk, &Fixed(enc, data.handle())).unwrap();
        assert!(fp.is_complete());
        assert!(!fp.objects.contains(&data.handle()));
        assert_eq!(fp.refs, vec![data.handle().as_ref_handle()]);
    }

    #[test]
    fn footprint_of_selection_needs_target_data_only() {
        let (mut src, _code, data) = setup();
        let child = Blob::from_slice(&[1u8; 512]);
        src.insert_blob(&data);
        src.insert_blob(&child);
        let target = Tree::from_handles(vec![child.handle(), data.handle()]);
        src.insert_tree(&target);
        let (sel_tree, sel_thunk) = build::selection(target.handle().as_ref_handle(), 0).unwrap();
        src.insert_tree(&sel_tree);
        let fp = footprint(&src, sel_thunk, &NoResolution).unwrap();
        // Needs: the selection definition tree and the target tree's own
        // entry list. NOT the children blobs.
        assert_eq!(fp.objects.len(), 2);
        assert!(!fp.objects.contains(&child.handle()));
    }

    #[test]
    fn collect_encodes_recurses_into_subtrees() {
        let (mut src, code, data) = setup();
        src.insert_blob(&code);
        src.insert_blob(&data);
        let inner_def = Tree::from_handles(vec![limits_handle(), code.handle()]);
        src.insert_tree(&inner_def);
        let enc1 = build::strict(inner_def.handle().application().unwrap()).unwrap();
        let enc2 = build::shallow(inner_def.handle().application().unwrap()).unwrap();
        let sub = Tree::from_handles(vec![enc2]);
        src.insert_tree(&sub);
        let top = Tree::from_handles(vec![limits_handle(), code.handle(), enc1, sub.handle()]);
        src.insert_tree(&top);
        let found = collect_encodes(&src, &top).unwrap();
        assert_eq!(found, vec![enc1, enc2]);
    }

    #[test]
    fn missing_data_is_reported() {
        let (src, code, _) = setup();
        // `code` was never inserted.
        let tree = Tree::from_handles(vec![limits_handle(), code.handle()]);
        let mut src2 = src.clone();
        src2.insert_tree(&tree);
        let thunk = tree.handle().application().unwrap();
        let err = footprint(&src2, thunk, &NoResolution).unwrap_err();
        assert!(matches!(err, Error::NotFound(h) if h == code.handle()));
    }
}
