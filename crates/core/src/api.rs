//! The One Fix API: backend-agnostic traits over every execution engine.
//!
//! The paper's thesis is that programs, users, and the platform describe
//! computation in one shared representation. This module is that thesis
//! at the *API* level: a trait family that every execution backend
//! implements, so a workload written once runs unchanged on the
//! single-node runtime (`fixpoint::Runtime`), the simulated distributed
//! engine (`fix_cluster::ClusterClient`), or a comparator cost model
//! (`fix_baselines::BaselineEvaluator`):
//!
//! * [`ObjectApi`] — the data half of Table 1: store and load Blobs and
//!   Trees by content-addressed Handle;
//! * [`InvocationApi`] — the construction half of Table 1: build
//!   Application/Selection thunks and install procedures;
//! * [`Evaluator`] — ask for results: lazy ([`Evaluator::eval`]), strict
//!   ([`Evaluator::eval_strict`]), and batched
//!   ([`Evaluator::eval_many`]);
//! * [`SubmitApi`] — ask for results *later*, with request-scoped
//!   intent: non-blocking [`submit`](SubmitApi::submit) /
//!   [`submit_many`](SubmitApi::submit_many) /
//!   [`submit_with`](SubmitApi::submit_with) return [`Ticket`]s
//!   resolved by `poll`/`wait`/`wait_any`, so a driver can overlap
//!   admission with execution; [`SubmitOptions`] carries a deadline
//!   (virtual µs), a [`Priority`] class, and the WHNF-vs-strict
//!   [`Mode`], and [`BatchTicket::cancel`] withdraws still-queued work.
//!   `fixpoint::Runtime` implements it natively; [`BlockingOffload`]
//!   lifts any plain [`Evaluator`] onto it.
//!
//! Because handles are content addressed, a correct backend is *forced*
//! to agree with every other backend on results — the conformance suite
//! in `tests/api_conformance.rs` asserts exactly that, running one set of
//! semantic checks against each implementation.
//!
//! # One workload, many backends
//!
//! ```
//! use fix_core::api::{Evaluator, InvocationApi, ObjectApi};
//! use fix_core::data::Blob;
//! use fix_core::limits::ResourceLimits;
//! use std::sync::Arc;
//!
//! // Written once, against the traits…
//! fn double_42<R: InvocationApi + Evaluator>(rt: &R) -> fix_core::Result<u64> {
//!     let double = rt.register_native(
//!         "api-doc/double",
//!         Arc::new(|ctx| {
//!             let x = ctx.arg_blob(0)?.as_u64().unwrap();
//!             ctx.host.create_blob((2 * x).to_le_bytes().to_vec())
//!         }),
//!     );
//!     let thunk = rt.apply(
//!         ResourceLimits::default_limits(),
//!         double,
//!         &[rt.put_blob(Blob::from_u64(21))],
//!     )?;
//!     rt.get_u64(rt.eval(thunk)?)
//! }
//!
//! // …runs on the single-node runtime:
//! let local = fixpoint::Runtime::builder().build();
//! assert_eq!(double_42(&local).unwrap(), 42);
//!
//! // …and on the netsim-backed cluster client, unchanged:
//! let cluster = fix_cluster::ClusterClient::builder().build().unwrap();
//! assert_eq!(double_42(&cluster).unwrap(), 42);
//! ```

use crate::data::{Blob, Node, Tree};
use crate::error::{Error, Result};
use crate::handle::{EncodeStyle, Handle};
use crate::invocation::Invocation;
use crate::limits::ResourceLimits;
use crate::semantics::Footprint;
use std::sync::Arc;

pub use crate::offload::BlockingOffload;
pub use crate::ticket::{BatchTicket, PendingBatch, Ticket};

// ----------------------------------------------------------------------
// The host interface procedures program against.
// ----------------------------------------------------------------------

/// The runtime services a guest procedure may invoke (paper Listing 1).
///
/// This is the *only* world interface of Fix procedures: attach/create
/// blobs and trees — no clocks, no randomness, no sockets. Implemented
/// by the FixVM interpreter host, the engine's store adapter, and
/// in-memory test fixtures.
///
/// Implementations must enforce their own storage-side invariants (e.g.
/// record created objects so they can be persisted); interpreters perform
/// the accessibility checks before calling `load_*`.
pub trait HostApi {
    /// Loads the bytes of an accessible blob.
    fn load_blob(&mut self, handle: Handle) -> Result<Blob>;
    /// Loads the entries of an accessible tree.
    fn load_tree(&mut self, handle: Handle) -> Result<Tree>;
    /// Creates (and records) a blob, returning its handle.
    fn create_blob(&mut self, data: Vec<u8>) -> Result<Handle>;
    /// Creates (and records) a tree, returning its handle.
    fn create_tree(&mut self, entries: Vec<Handle>) -> Result<Handle>;
}

/// Context handed to a native codelet: its input tree handle plus the
/// host API (identical powers to a VM guest).
pub struct NativeCtx<'a> {
    /// The application tree (after Encode resolution), as the guest sees it.
    pub input: Handle,
    /// Host services: load accessible data, create new data.
    pub host: &'a mut dyn HostApi,
}

impl<'a> NativeCtx<'a> {
    /// Loads the input application tree.
    pub fn input_tree(&mut self) -> Result<Tree> {
        self.host.load_tree(self.input)
    }

    /// Loads argument `i` of the invocation (slot `2 + i`) as a blob.
    pub fn arg_blob(&mut self, i: usize) -> Result<Blob> {
        let tree = self.input_tree()?;
        let h = tree.get(2 + i).ok_or(Error::MalformedTree {
            handle: self.input,
            reason: format!("missing argument {i}"),
        })?;
        self.host.load_blob(h)
    }

    /// Loads argument `i` of the invocation (slot `2 + i`) as a handle.
    pub fn arg(&mut self, i: usize) -> Result<Handle> {
        let tree = self.input_tree()?;
        tree.get(2 + i).ok_or(Error::MalformedTree {
            handle: self.input,
            reason: format!("missing argument {i}"),
        })
    }
}

/// The signature of a native codelet: `_fix_apply` in Rust.
pub type NativeFn = Arc<dyn Fn(&mut NativeCtx<'_>) -> Result<Handle> + Send + Sync>;

// ----------------------------------------------------------------------
// ObjectApi: the data operations of Table 1.
// ----------------------------------------------------------------------

/// Content-addressed object storage: the data half of the paper's
/// Table 1 (`create_blob` / `create_tree` / `read_blob` / `read_tree`).
///
/// Implemented by `fix_storage::Store` itself, by `fixpoint::Runtime`,
/// and by the cluster/baseline clients (which store at the client node).
pub trait ObjectApi {
    /// Stores a blob, returning its handle.
    fn put_blob(&self, blob: Blob) -> Handle;

    /// Stores a tree, returning its handle.
    fn put_tree(&self, tree: Tree) -> Handle;

    /// Reads a blob back.
    fn get_blob(&self, handle: Handle) -> Result<Blob>;

    /// Reads a tree back.
    fn get_tree(&self, handle: Handle) -> Result<Tree>;

    /// True when the object behind `handle` is locally resident
    /// (literals are always resident: their payload rides in the handle).
    fn contains(&self, handle: Handle) -> bool;

    /// Stores a whole [`Node`].
    fn put(&self, node: Node) -> Handle {
        match node {
            Node::Blob(b) => self.put_blob(b),
            Node::Tree(t) => self.put_tree(t),
        }
    }

    /// Reads a `u64` result blob (common in workloads and tests).
    fn get_u64(&self, handle: Handle) -> Result<u64> {
        self.get_blob(handle)?.as_u64().ok_or(Error::TypeMismatch {
            handle,
            expected: "a u64 blob",
        })
    }
}

impl<T: ObjectApi + ?Sized> ObjectApi for &T {
    fn put_blob(&self, blob: Blob) -> Handle {
        (**self).put_blob(blob)
    }
    fn put_tree(&self, tree: Tree) -> Handle {
        (**self).put_tree(tree)
    }
    fn get_blob(&self, handle: Handle) -> Result<Blob> {
        (**self).get_blob(handle)
    }
    fn get_tree(&self, handle: Handle) -> Result<Tree> {
        (**self).get_tree(handle)
    }
    fn contains(&self, handle: Handle) -> bool {
        (**self).contains(handle)
    }
}

impl<T: ObjectApi + ?Sized> ObjectApi for Arc<T> {
    fn put_blob(&self, blob: Blob) -> Handle {
        (**self).put_blob(blob)
    }
    fn put_tree(&self, tree: Tree) -> Handle {
        (**self).put_tree(tree)
    }
    fn get_blob(&self, handle: Handle) -> Result<Blob> {
        (**self).get_blob(handle)
    }
    fn get_tree(&self, handle: Handle) -> Result<Tree> {
        (**self).get_tree(handle)
    }
    fn contains(&self, handle: Handle) -> bool {
        (**self).contains(handle)
    }
}

// ----------------------------------------------------------------------
// InvocationApi: the construction operations of Table 1.
// ----------------------------------------------------------------------

/// Thunk and procedure construction: the Table-1 operations that describe
/// computation without running anything.
///
/// Everything except procedure installation has a canonical definition in
/// terms of [`ObjectApi`], provided here, so a backend only supplies
/// [`register_native`](InvocationApi::register_native) (the one operation
/// that binds host code to a content-addressed name).
pub trait InvocationApi: ObjectApi {
    /// Registers a native codelet under `name`; stores and returns its
    /// content-addressed marker handle. Every backend that registers the
    /// same name agrees on the handle.
    fn register_native(&self, name: &str, f: NativeFn) -> Handle;

    /// Installs a guest module from its serialized bytes, returning the
    /// handle of the stored code blob. Sandboxed code needs no
    /// registration: any node holding the blob can run it.
    fn install_module(&self, module_bytes: Vec<u8>) -> Result<Handle> {
        Ok(self.put_blob(Blob::from_vec(module_bytes)))
    }

    /// Builds and stores an application tree `[limits, proc, args...]`,
    /// returning the Application Thunk.
    fn apply(&self, limits: ResourceLimits, procedure: Handle, args: &[Handle]) -> Result<Handle> {
        let inv = Invocation {
            limits,
            procedure,
            args: args.to_vec(),
        };
        let h = self.put_tree(inv.to_tree());
        h.application()
    }

    /// Builds a strict encode of an application, the most common idiom:
    /// `strict(application([limits, proc, args...]))`.
    fn strict_apply(
        &self,
        limits: ResourceLimits,
        procedure: Handle,
        args: &[Handle],
    ) -> Result<Handle> {
        self.apply(limits, procedure, args)?
            .encode(EncodeStyle::Strict)
    }

    /// Builds and stores a selection thunk for `target[index]`.
    fn select(&self, target: Handle, index: u64) -> Result<Handle> {
        let (tree, thunk) = crate::invocation::build::selection(target, index)?;
        self.put_tree(tree);
        Ok(thunk)
    }

    /// Builds and stores a selection thunk for `target[begin..end]`.
    fn select_range(&self, target: Handle, begin: u64, end: u64) -> Result<Handle> {
        let (tree, thunk) = crate::invocation::build::selection_range(target, begin, end)?;
        self.put_tree(tree);
        Ok(thunk)
    }
}

impl<T: InvocationApi + ?Sized> InvocationApi for &T {
    fn register_native(&self, name: &str, f: NativeFn) -> Handle {
        (**self).register_native(name, f)
    }
    fn install_module(&self, module_bytes: Vec<u8>) -> Result<Handle> {
        (**self).install_module(module_bytes)
    }
    fn apply(&self, limits: ResourceLimits, procedure: Handle, args: &[Handle]) -> Result<Handle> {
        (**self).apply(limits, procedure, args)
    }
    fn strict_apply(
        &self,
        limits: ResourceLimits,
        procedure: Handle,
        args: &[Handle],
    ) -> Result<Handle> {
        (**self).strict_apply(limits, procedure, args)
    }
    fn select(&self, target: Handle, index: u64) -> Result<Handle> {
        (**self).select(target, index)
    }
    fn select_range(&self, target: Handle, begin: u64, end: u64) -> Result<Handle> {
        (**self).select_range(target, begin, end)
    }
}

impl<T: InvocationApi + ?Sized> InvocationApi for Arc<T> {
    fn register_native(&self, name: &str, f: NativeFn) -> Handle {
        (**self).register_native(name, f)
    }
    fn install_module(&self, module_bytes: Vec<u8>) -> Result<Handle> {
        (**self).install_module(module_bytes)
    }
    fn apply(&self, limits: ResourceLimits, procedure: Handle, args: &[Handle]) -> Result<Handle> {
        (**self).apply(limits, procedure, args)
    }
    fn strict_apply(
        &self,
        limits: ResourceLimits,
        procedure: Handle,
        args: &[Handle],
    ) -> Result<Handle> {
        (**self).strict_apply(limits, procedure, args)
    }
    fn select(&self, target: Handle, index: u64) -> Result<Handle> {
        (**self).select(target, index)
    }
    fn select_range(&self, target: Handle, begin: u64, end: u64) -> Result<Handle> {
        (**self).select_range(target, begin, end)
    }
}

// ----------------------------------------------------------------------
// Evaluator: asking for results.
// ----------------------------------------------------------------------

/// Evaluation: reduce descriptions of computation to values.
///
/// Fix evaluation is deterministic and memoized, so any two conforming
/// backends return bit-identical handles for the same request — which is
/// what lets one workload double as a benchmark row for every backend.
pub trait Evaluator {
    /// Evaluates a handle to a non-Thunk value (weak head normal form).
    ///
    /// Values evaluate to themselves; Thunks are reduced (running
    /// procedures as needed); Encodes are resolved per their style.
    fn eval(&self, handle: Handle) -> Result<Handle>;

    /// Fully evaluates: reduces to a value, then deep-forces it so every
    /// nested Thunk/Encode is resolved and every Ref promoted.
    fn eval_strict(&self, handle: Handle) -> Result<Handle>;

    /// Evaluates a batch of independent requests.
    ///
    /// Semantically identical to mapping [`eval`](Evaluator::eval) over
    /// `handles` (results are positional), but backends may amortize
    /// per-request overhead: the single-node runtime submits the whole
    /// batch to its scheduler under one lock acquisition, and the cluster
    /// client ships the batch through one simulated run.
    ///
    /// Blocking is the special case of submission: this default resolves
    /// the batch at submission time and waits on the resulting (ready)
    /// ticket, and backends implementing [`SubmitApi`] override it with
    /// a real `submit_many(..).wait()` — same surface, pipelined engine.
    fn eval_many(&self, handles: &[Handle]) -> Vec<Result<Handle>> {
        BatchTicket::ready(handles.iter().map(|&h| self.eval(h)).collect()).wait()
    }

    /// Computes the minimum repository of a thunk (paper §3.3), using
    /// whatever evaluation results the backend has already memoized.
    fn footprint(&self, thunk: Handle) -> Result<Footprint>;

    /// Computes the combined minimum repository of a batch of requests:
    /// the deduplicated union of per-thunk [`footprint`](Evaluator::footprint)s.
    /// Data shared between requests appears — and is counted — once, so
    /// `total_bytes` is what a batch transfer actually ships (and the
    /// object set is exactly what a snapshot must pin to cover the batch).
    ///
    /// The default folds [`Footprint::merge`] over per-thunk footprints;
    /// backends with direct store access override it to walk shared data
    /// only once.
    fn footprint_many(&self, thunks: &[Handle]) -> Result<Footprint> {
        let mut merged = Footprint::default();
        for &thunk in thunks {
            merged.merge(&self.footprint(thunk)?);
        }
        Ok(merged)
    }

    /// Procedures the backend has actually executed (memoization cache
    /// misses). The conformance suite observes memoization through this.
    fn procedures_run(&self) -> u64;

    /// Convenience: apply + strict evaluation in one call.
    fn run_invocation(
        &self,
        limits: ResourceLimits,
        procedure: Handle,
        args: &[Handle],
    ) -> Result<Handle>
    where
        Self: InvocationApi + Sized,
    {
        let thunk = self.apply(limits, procedure, args)?;
        self.eval_strict(thunk)
    }
}

// ----------------------------------------------------------------------
// SubmitApi: asking for results *later*, with request-scoped intent.
// ----------------------------------------------------------------------

/// How far a submitted request is evaluated.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Mode {
    /// Weak head normal form — the semantics of [`Evaluator::eval`]:
    /// reduce to a non-Thunk value, leaving nested Thunks/Encodes
    /// unresolved.
    #[default]
    Whnf,
    /// Full strict evaluation — the semantics of
    /// [`Evaluator::eval_strict`]: reduce to a value, then deep-force
    /// it. Backends watch the whole eval→force job chain as one batch
    /// slot, so a strict ticket resolves exactly when a blocking
    /// `eval_strict` would have returned.
    Strict,
}

/// The scheduling class of a submitted batch. Lower tiers dispatch
/// first wherever the backend holds queued work (the single-node
/// scheduler's run queues, the [`BlockingOffload`] submission pool, the
/// `fix-serve` admission queues).
///
/// Ordered: `Latency < Normal < Batch`, so `a < b` means `a` is served
/// before `b` under contention.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub enum Priority {
    /// Latency-sensitive traffic: dispatched before every other tier.
    Latency,
    /// The default tier.
    #[default]
    Normal,
    /// Throughput traffic: served only when higher tiers are idle.
    Batch,
}

impl Priority {
    /// Number of priority tiers.
    pub const TIERS: usize = 3;

    /// The tier index (0 dispatches first).
    pub fn tier(self) -> usize {
        match self {
            Priority::Latency => 0,
            Priority::Normal => 1,
            Priority::Batch => 2,
        }
    }

    /// Short label for tables.
    pub fn label(self) -> &'static str {
        match self {
            Priority::Latency => "latency",
            Priority::Normal => "normal",
            Priority::Batch => "batch",
        }
    }
}

/// Request-scoped intent attached to a submission (see
/// [`SubmitApi::submit_with`]).
///
/// A bare `submit_many` carries no intent: the backend cannot know the
/// request may expire, which traffic to dispatch first, or how deep to
/// evaluate. `SubmitOptions` names all three, so the platform can
/// reorder, expire, and withdraw outstanding work — the
/// request-lifecycle control a serving layer needs.
///
/// The default options (`no deadline, Normal priority, WHNF`) make
/// `submit_with(h, SubmitOptions::default())` behave exactly like
/// `submit_many(h)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SubmitOptions {
    /// Absolute deadline in the backend's virtual clock
    /// ([`SubmitApi::virtual_now`]), in µs. A batch submitted after
    /// its deadline already passed fails whole with
    /// [`Error::DeadlineExceeded`] — uniformly on every backend,
    /// before any slot resolves. A deadline that passes *while* the
    /// batch waits in a backend queue expires the still-pending work
    /// at its next dispatch opportunity (lazily at dequeue in the
    /// single-node scheduler, before dispatch in [`BlockingOffload`]);
    /// results the backend already produced by then — memoized slots
    /// the runtime filled at submission, offloaded batches already
    /// dispatched — keep their values. `None` (default) never expires.
    pub deadline_us: Option<u64>,
    /// The batch's scheduling class.
    pub priority: Priority,
    /// How far each slot is evaluated.
    pub mode: Mode,
}

impl SubmitOptions {
    /// Options for a fully strict submission (deep-forced results).
    pub fn strict() -> SubmitOptions {
        SubmitOptions {
            mode: Mode::Strict,
            ..SubmitOptions::default()
        }
    }

    /// Sets the absolute virtual-time deadline, in µs.
    pub fn with_deadline(mut self, deadline_us: u64) -> SubmitOptions {
        self.deadline_us = Some(deadline_us);
        self
    }

    /// Sets the scheduling class.
    pub fn with_priority(mut self, priority: Priority) -> SubmitOptions {
        self.priority = priority;
        self
    }

    /// Sets the evaluation mode.
    pub fn with_mode(mut self, mode: Mode) -> SubmitOptions {
        self.mode = mode;
        self
    }
}

/// Submission-first evaluation: describe a batch now, resolve it later.
///
/// [`Evaluator`] is call-and-block — every `eval_many` parks the calling
/// thread until the whole batch resolves. This trait decouples the two
/// halves, the same decoupling the paper's externalized-I/O design
/// implies at the API level: [`submit_many`](SubmitApi::submit_many)
/// registers the batch with the backend and returns a [`BatchTicket`]
/// immediately, and the caller chooses when (and whether) to block.
/// A driver can keep a window of batches in flight — submit batch *k+1*
/// while *k* executes — which is what lets the `fix-serve` driver pool
/// overlap admission with execution.
///
/// Implementations:
///
/// * `fixpoint::Runtime` — native: submission takes the scheduler's
///   job-map lock once, registers completion watchers, and returns; no
///   caller thread is parked per batch.
/// * [`BlockingOffload<T>`] — lifts any plain [`Evaluator`] (the
///   cluster client, the baselines) onto this trait via a pool of
///   submission threads.
///
/// Submissions are *request scoped*: [`submit_with`](SubmitApi::submit_with)
/// attaches a [`SubmitOptions`] — deadline in virtual µs, [`Priority`]
/// class, WHNF-vs-strict [`Mode`] — so the backend can reorder, expire,
/// and withdraw outstanding work instead of blindly executing it.
///
/// Contract (held by the conformance suite):
///
/// * `submit_many(h).wait()` is positionally identical to
///   [`Evaluator::eval_many`]`(h)`, and
///   `submit_with(h, SubmitOptions::strict()).wait()` to a loop of
///   [`Evaluator::eval_strict`];
/// * [`BatchTicket::cancel`] (and dropping a ticket, its implicit form)
///   withdraws still-queued work that no other live request shares,
///   fails unresolved slots with [`Error::Cancelled`], and neither
///   hangs other work nor leaks per-batch bookkeeping;
/// * a batch whose [`SubmitOptions::deadline_us`] passes before
///   dispatch resolves with [`Error::DeadlineExceeded`] in the expired
///   slots instead of executing dead work;
/// * tickets resolve exactly once; `poll` is non-blocking.
///
/// # Overlapping batches
///
/// ```
/// use fix_core::api::{Evaluator, InvocationApi, ObjectApi, SubmitApi};
/// use fix_core::data::Blob;
/// use fix_core::limits::ResourceLimits;
/// use std::sync::Arc;
///
/// let rt = fixpoint::Runtime::builder().build();
/// let add = rt.register_native("submit-doc/add", Arc::new(|ctx| {
///     let a = ctx.arg_blob(0)?.as_u64().unwrap();
///     let b = ctx.arg_blob(1)?.as_u64().unwrap();
///     ctx.host.create_blob((a + b).to_le_bytes().to_vec())
/// }));
/// let batch = |base: u64| -> Vec<_> {
///     (0..4u64)
///         .map(|i| {
///             rt.apply(
///                 ResourceLimits::default_limits(),
///                 add,
///                 &[rt.put_blob(Blob::from_u64(base + i)), rt.put_blob(Blob::from_u64(1))],
///             )
///             .unwrap()
///         })
///         .collect()
/// };
///
/// // Two batches in flight at once: submission returns immediately.
/// let first = rt.submit_many(&batch(0));
/// let second = rt.submit_many(&batch(100));
///
/// // Resolve in whichever order suits the driver.
/// let second_results = rt.wait_batch(second);
/// let first_results = rt.wait_batch(first);
/// assert_eq!(rt.get_u64(*first_results[0].as_ref().unwrap()).unwrap(), 1);
/// assert_eq!(rt.get_u64(*second_results[3].as_ref().unwrap()).unwrap(), 104);
/// ```
///
/// # A deadline-bounded strict batch
///
/// ```
/// use fix_core::api::{Evaluator, InvocationApi, ObjectApi, SubmitApi, SubmitOptions, Priority};
/// use fix_core::data::Blob;
/// use fix_core::limits::ResourceLimits;
/// use std::sync::Arc;
///
/// let rt = fixpoint::Runtime::builder().build();
/// let wrap = rt.register_native("submit-doc/wrap", Arc::new(|ctx| {
///     // Returns a tree holding an unevaluated argument: WHNF would
///     // stop here, strict evaluation forces what's inside.
///     let arg = ctx.arg(0)?;
///     ctx.host.create_tree(vec![arg])
/// }));
/// let double = rt.register_native("submit-doc/double", Arc::new(|ctx| {
///     let x = ctx.arg_blob(0)?.as_u64().unwrap();
///     ctx.host.create_blob((2 * x).to_le_bytes().to_vec())
/// }));
/// let inner = rt.apply(
///     ResourceLimits::default_limits(),
///     double,
///     &[rt.put_blob(Blob::from_u64(21))],
/// ).unwrap();
/// let batch = vec![rt.apply(ResourceLimits::default_limits(), wrap, &[inner]).unwrap()];
///
/// // Strict, latency-class, and expired once the virtual clock passes
/// // 10 ms: the platform may withdraw it instead of executing it late.
/// let opts = SubmitOptions::strict()
///     .with_priority(Priority::Latency)
///     .with_deadline(10_000);
/// let results = rt.wait_batch(rt.submit_with(&batch, opts));
/// // The clock never advanced, so the deadline did not pass; the slot
/// // agrees with eval_strict: the inner thunk is deep-forced.
/// let forced = *results[0].as_ref().unwrap();
/// assert_eq!(forced, rt.eval_strict(batch[0]).unwrap());
/// assert_eq!(rt.get_u64(rt.get_tree(forced).unwrap().get(0).unwrap()).unwrap(), 42);
/// ```
pub trait SubmitApi: Evaluator {
    /// Begins evaluating a batch of independent requests under
    /// request-scoped `options` (deadline, priority class, evaluation
    /// mode), returning a ticket for the positional results. Must not
    /// block on evaluation: the work proceeds in the backend (or on
    /// later `wait`/`advance` calls for inline backends), not in this
    /// call.
    fn submit_with(&self, handles: &[Handle], options: SubmitOptions) -> BatchTicket;

    /// The backend's virtual clock, in µs — the timeline
    /// [`SubmitOptions::deadline_us`] is measured on. Starts at zero
    /// and only moves when [`advance_virtual_clock`](SubmitApi::advance_virtual_clock)
    /// is called, so deadlines are deterministic: wall time never
    /// expires anything.
    fn virtual_now(&self) -> u64;

    /// Advances the backend's virtual clock by `us` µs. Embedders with
    /// a notion of time (a serving layer's discrete-event clock, a test
    /// harness) drive this; queued work whose deadline the clock passes
    /// is expired at its next dispatch opportunity.
    fn advance_virtual_clock(&self, us: u64);

    /// Begins evaluating a batch with default options — no deadline,
    /// [`Priority::Normal`], WHNF. See [`submit_with`](SubmitApi::submit_with).
    fn submit_many(&self, handles: &[Handle]) -> BatchTicket {
        self.submit_with(handles, SubmitOptions::default())
    }

    /// Begins evaluating one handle (a batch of one).
    fn submit(&self, handle: Handle) -> Ticket {
        Ticket::from_batch(self.submit_many(std::slice::from_ref(&handle)))
    }

    /// Non-blocking: true once `ticket` has completed (its result is
    /// then claimed with [`Ticket::take_result`] or [`wait`](SubmitApi::wait)).
    fn poll(&self, ticket: &mut Ticket) -> bool {
        ticket.poll()
    }

    /// Non-blocking: true once every slot of `ticket` has completed.
    fn poll_batch(&self, ticket: &mut BatchTicket) -> bool {
        ticket.poll()
    }

    /// Blocks until the evaluation completes, consuming the ticket.
    fn wait(&self, ticket: Ticket) -> Result<Handle> {
        ticket.wait()
    }

    /// Blocks until the whole batch completes, consuming the ticket;
    /// results are positional.
    fn wait_batch(&self, ticket: BatchTicket) -> Vec<Result<Handle>> {
        ticket.wait()
    }

    /// Blocks until at least one unclaimed ticket completes, returning
    /// its index; `None` when every ticket was already claimed. See
    /// [`BatchTicket::wait_any`].
    fn wait_any(&self, tickets: &mut [BatchTicket]) -> Option<usize> {
        BatchTicket::wait_any(tickets)
    }
}

impl<T: SubmitApi + ?Sized> SubmitApi for &T {
    fn submit_with(&self, handles: &[Handle], options: SubmitOptions) -> BatchTicket {
        (**self).submit_with(handles, options)
    }
    fn virtual_now(&self) -> u64 {
        (**self).virtual_now()
    }
    fn advance_virtual_clock(&self, us: u64) {
        (**self).advance_virtual_clock(us)
    }
}

impl<T: SubmitApi + ?Sized> SubmitApi for Arc<T> {
    fn submit_with(&self, handles: &[Handle], options: SubmitOptions) -> BatchTicket {
        (**self).submit_with(handles, options)
    }
    fn virtual_now(&self) -> u64 {
        (**self).virtual_now()
    }
    fn advance_virtual_clock(&self, us: u64) {
        (**self).advance_virtual_clock(us)
    }
}

/// The full One Fix API, shareable across threads: everything a
/// serving layer needs from a backend — build requests
/// ([`InvocationApi`]), evaluate them ([`Evaluator`]) — plus the
/// `Send + Sync` bounds that let one backend be driven by a pool of
/// worker threads through a shared reference.
///
/// Blanket-implemented, so this is a *bound alias*, not a new
/// capability: `fixpoint::Runtime`, `fix_cluster::ClusterClient`, and
/// `fix_baselines::BaselineEvaluator` all qualify automatically, as
/// does `Arc<T>`/`&T` of any of them (via the reference impls above).
/// Write multi-threaded drivers — e.g. the `fix-serve` driver pool —
/// against this trait and they run unchanged on every backend.
pub trait ConcurrentApi: InvocationApi + Evaluator + Send + Sync {}

impl<T: InvocationApi + Evaluator + Send + Sync + ?Sized> ConcurrentApi for T {}

impl<T: Evaluator + ?Sized> Evaluator for &T {
    fn eval(&self, handle: Handle) -> Result<Handle> {
        (**self).eval(handle)
    }
    fn eval_strict(&self, handle: Handle) -> Result<Handle> {
        (**self).eval_strict(handle)
    }
    fn eval_many(&self, handles: &[Handle]) -> Vec<Result<Handle>> {
        (**self).eval_many(handles)
    }
    fn footprint(&self, thunk: Handle) -> Result<Footprint> {
        (**self).footprint(thunk)
    }
    fn footprint_many(&self, thunks: &[Handle]) -> Result<Footprint> {
        (**self).footprint_many(thunks)
    }
    fn procedures_run(&self) -> u64 {
        (**self).procedures_run()
    }
}

impl<T: Evaluator + ?Sized> Evaluator for Arc<T> {
    fn eval(&self, handle: Handle) -> Result<Handle> {
        (**self).eval(handle)
    }
    fn eval_strict(&self, handle: Handle) -> Result<Handle> {
        (**self).eval_strict(handle)
    }
    fn eval_many(&self, handles: &[Handle]) -> Vec<Result<Handle>> {
        (**self).eval_many(handles)
    }
    fn footprint(&self, thunk: Handle) -> Result<Footprint> {
        (**self).footprint(thunk)
    }
    fn footprint_many(&self, thunks: &[Handle]) -> Result<Footprint> {
        (**self).footprint_many(thunks)
    }
    fn procedures_run(&self) -> u64 {
        (**self).procedures_run()
    }
}
