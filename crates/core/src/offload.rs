//! [`BlockingOffload`]: submission-first evaluation over any blocking
//! backend.
//!
//! The single-node runtime implements [`SubmitApi`] natively by hooking
//! its scheduler. Every other backend — the netsim-backed cluster client,
//! the baseline cost models, any future engine — is a plain blocking
//! [`Evaluator`]. This adapter lifts such a backend onto the submission
//! API with a small pool of submission threads: `submit_with` hands the
//! batch (and its [`SubmitOptions`]) to the pool and returns a ticket
//! immediately; a thread runs the backend's ordinary `eval_many` (or a
//! strict loop, for [`Mode::Strict`] batches) and fills the ticket's
//! completion slot. One conformant surface, every backend.
//!
//! Request-scoped semantics are honored before dispatch, the only point
//! a blocking backend can honor them:
//!
//! * **priority** — the pool holds one queue per [`Priority`] tier and
//!   dispatches the highest non-empty tier first;
//! * **deadlines** — a batch whose [`SubmitOptions::deadline_us`] the
//!   adapter's virtual clock has passed is expired (every slot fails
//!   with [`Error::DeadlineExceeded`]) instead of executed;
//! * **cancellation** — a cancelled (or dropped) ticket fails its
//!   unresolved slots with [`Error::Cancelled`] on the spot and the
//!   pool skips the batch entirely if it has not started; a batch
//!   already executing completes into the discarded slot.

use crate::api::SubmitOptions;
use crate::api::{Evaluator, InvocationApi, Mode, NativeFn, ObjectApi, Priority, SubmitApi};
use crate::data::{Blob, Node, Tree};
use crate::error::{Error, Result};
use crate::handle::Handle;
use crate::limits::ResourceLimits;
use crate::semantics::Footprint;
use crate::ticket::{BatchTicket, PendingBatch};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

/// Trace id of a batch: the first 8 bytes of its first thunk's handle
/// (0 for an empty batch), matching the scheduler's job trace ids.
fn batch_trace_id(thunks: &[Handle]) -> u64 {
    thunks.first().map_or(0, |h| {
        u64::from_le_bytes(h.raw()[..8].try_into().expect("handle has 32 bytes"))
    })
}

/// One submitted batch in flight between a ticket and the worker pool.
struct OffloadJob {
    thunks: Vec<Handle>,
    options: SubmitOptions,
    slot: Arc<OffloadSlot>,
}

#[derive(Default)]
struct SlotState {
    /// Positional results, once produced.
    results: Option<Vec<Result<Handle>>>,
    /// Set when `results` has been written (stays true after a take).
    produced: bool,
    /// Set when the ticket was cancelled or dropped unresolved.
    cancelled: bool,
}

/// The completion slot shared between one ticket and the worker that
/// (eventually) executes its batch.
#[derive(Default)]
struct OffloadSlot {
    state: Mutex<SlotState>,
    cv: Condvar,
    /// Lock-free mirror of [`SlotState::produced`], written under the
    /// lock. Hot polling (`try_take` runs once per ticket per
    /// `wait_any` tick) reads this and skips the mutex entirely while
    /// the batch is in flight — the same shape as the scheduler's
    /// lock-free batch fills, where only the producing write
    /// synchronizes and the done check is one atomic load.
    done: AtomicBool,
}

impl OffloadSlot {
    /// Fills the slot unless something (a cancellation) already did:
    /// results are produced exactly once, first writer wins.
    fn fill(&self, results: Vec<Result<Handle>>) {
        let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        if !state.produced {
            state.results = Some(results);
            state.produced = true;
            self.done.store(true, Ordering::Release);
        }
        drop(state);
        self.cv.notify_all();
    }
}

/// The ticket side of an offloaded batch.
struct OffloadPending {
    slot: Arc<OffloadSlot>,
    /// Slot count, so cancellation can mint the `Cancelled` results.
    len: usize,
}

impl PendingBatch for OffloadPending {
    fn try_take(&self) -> Option<Vec<Result<Handle>>> {
        if !self.slot.done.load(Ordering::Acquire) {
            return None; // In flight: no lock taken on the polling path.
        }
        let mut state = self.slot.state.lock().unwrap_or_else(|e| e.into_inner());
        state.results.take()
    }

    fn wait(&self) -> Vec<Result<Handle>> {
        let mut state = self.slot.state.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if state.produced {
                return state
                    .results
                    .take()
                    .expect("offload results are claimed exactly once");
            }
            state = self.slot.cv.wait(state).unwrap_or_else(|e| e.into_inner());
        }
    }

    fn advance(&self, timeout: Duration) {
        if self.slot.done.load(Ordering::Acquire) {
            return;
        }
        let state = self.slot.state.lock().unwrap_or_else(|e| e.into_inner());
        if !state.produced {
            let _ = self
                .slot
                .cv
                .wait_timeout(state, timeout)
                .unwrap_or_else(|e| e.into_inner());
        }
    }

    fn cancel(&self) {
        let mut state = self.slot.state.lock().unwrap_or_else(|e| e.into_inner());
        state.cancelled = true;
        if !state.produced {
            // Withdraw-before-dispatch: the pool will skip the batch,
            // and the slots resolve as cancelled right now.
            state.results = Some((0..self.len).map(|_| Err(Error::Cancelled)).collect());
            state.produced = true;
            self.slot.done.store(true, Ordering::Release);
            if fix_obs::tracing_enabled() {
                fix_obs::emit(fix_obs::EventKind::OffloadCancel, 0, 0, 0, self.len as u32);
            }
        }
        drop(state);
        self.slot.cv.notify_all();
    }
}

/// The submission pool shared by the adapter handle and its workers:
/// one FIFO queue per priority tier, drained highest tier first.
struct Pool {
    tiers: Mutex<PoolQueues>,
    cv: Condvar,
    /// The adapter's virtual clock (µs), the timeline batch deadlines
    /// are measured on. Never advanced by wall time.
    clock: AtomicU64,
}

#[derive(Default)]
struct PoolQueues {
    queues: [VecDeque<OffloadJob>; Priority::TIERS],
    /// Cleared when the adapter is dropped; workers drain what was
    /// already submitted, then exit.
    open: bool,
}

impl Pool {
    /// Pops the next batch, highest tier first; blocks while the pool
    /// is open and empty, returns `None` once closed and drained.
    fn next_job(&self) -> Option<OffloadJob> {
        let mut tiers = self.tiers.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if let Some(job) = tiers.queues.iter_mut().find_map(VecDeque::pop_front) {
                return Some(job);
            }
            if !tiers.open {
                return None;
            }
            tiers = self.cv.wait(tiers).unwrap_or_else(|e| e.into_inner());
        }
    }
}

/// Lifts a blocking [`Evaluator`] onto the submission-first
/// [`SubmitApi`] via a pool of submission threads.
///
/// The adapter implements the *whole* One Fix API by delegation —
/// construction calls go straight to the inner backend; only evaluation
/// is routed through the pool — so code written against
/// [`SubmitApi`] + [`InvocationApi`] runs unchanged over
/// `BlockingOffload<ClusterClient>`, `BlockingOffload<BaselineEvaluator>`,
/// or the natively-submitting `fixpoint::Runtime`. That includes the
/// request-scoped options path: strict batches, priority tiers,
/// deadlines, and cancellation all behave as the [`SubmitApi`] contract
/// specifies (see the module docs for how each maps onto a blocking
/// backend).
///
/// Dropping the adapter drains all submitted batches (their tickets
/// still resolve) and joins the threads.
///
/// # Examples
///
/// ```
/// use fix_core::api::{BlockingOffload, Evaluator, InvocationApi, ObjectApi, SubmitApi};
/// use fix_core::api::SubmitOptions;
/// use fix_core::data::Blob;
/// use fix_core::limits::ResourceLimits;
/// use std::sync::Arc;
///
/// // Any plain Evaluator backend gains submit/wait:
/// let cc = BlockingOffload::new(fix_cluster::ClusterClient::builder().build().unwrap());
/// let add = cc.register_native("offload/add", Arc::new(|ctx| {
///     let a = ctx.arg_blob(0)?.as_u64().unwrap();
///     let b = ctx.arg_blob(1)?.as_u64().unwrap();
///     ctx.host.create_blob((a + b).to_le_bytes().to_vec())
/// }));
/// let thunk = cc.apply(
///     ResourceLimits::default_limits(),
///     add,
///     &[cc.put_blob(Blob::from_u64(40)), cc.put_blob(Blob::from_u64(2))],
/// ).unwrap();
/// let ticket = cc.submit(thunk);          // returns immediately
/// assert_eq!(cc.get_u64(ticket.wait().unwrap()).unwrap(), 42);
///
/// // Strict submission deep-forces, exactly like eval_strict:
/// let strict = cc.submit_with(
///     &[cc.apply(ResourceLimits::default_limits(), add,
///                &[cc.put_blob(Blob::from_u64(1)), cc.put_blob(Blob::from_u64(2))]).unwrap()],
///     SubmitOptions::strict(),
/// );
/// assert_eq!(cc.get_u64(*strict.wait()[0].as_ref().unwrap()).unwrap(), 3);
/// ```
pub struct BlockingOffload<T: ?Sized> {
    pool: Arc<Pool>,
    workers: Vec<std::thread::JoinHandle<()>>,
    inner: Arc<T>,
}

impl<T: Evaluator + Send + Sync + 'static> BlockingOffload<T> {
    /// Wraps `inner` with a single submission thread.
    pub fn new(inner: T) -> BlockingOffload<T> {
        Self::from_arc(Arc::new(inner))
    }

    /// Wraps an already-shared backend with a single submission thread.
    pub fn from_arc(inner: Arc<T>) -> BlockingOffload<T> {
        Self::with_threads(inner, 1)
    }

    /// Wraps an already-shared backend with `threads` submission
    /// threads, so that many concurrently submitted batches execute in
    /// parallel on the inner backend (which is `Sync`, so this is the
    /// same concurrency a pool of blocking callers would impose).
    ///
    /// # Panics
    ///
    /// Panics if `threads` is zero.
    pub fn with_threads(inner: Arc<T>, threads: usize) -> BlockingOffload<T> {
        assert!(threads > 0, "an offload needs at least one thread");
        let pool = Arc::new(Pool {
            tiers: Mutex::new(PoolQueues {
                queues: Default::default(),
                open: true,
            }),
            cv: Condvar::new(),
            clock: AtomicU64::new(0),
        });
        let workers = (0..threads)
            .map(|i| {
                let inner = Arc::clone(&inner);
                let pool = Arc::clone(&pool);
                std::thread::Builder::new()
                    .name(format!("fix-offload-{i}"))
                    .spawn(move || {
                        while let Some(job) = pool.next_job() {
                            serve_one(&*inner, &pool, job);
                        }
                    })
                    .expect("spawn offload worker")
            })
            .collect();
        BlockingOffload {
            pool,
            workers,
            inner,
        }
    }
}

/// Executes (or expires, or skips) one dequeued batch on the inner
/// backend, filling its completion slot.
fn serve_one<T: Evaluator + ?Sized>(inner: &T, pool: &Pool, job: OffloadJob) {
    {
        let state = job.slot.state.lock().unwrap_or_else(|e| e.into_inner());
        if state.cancelled || state.produced {
            return; // Cancelled before execution began.
        }
    }
    // Expire-before-dispatch: the closest a blocking backend gets to
    // the scheduler's lazy dequeue expiry.
    if let Some(deadline) = job.options.deadline_us {
        let now_us = pool.clock.load(Ordering::Relaxed);
        if now_us > deadline {
            if fix_obs::tracing_enabled() {
                fix_obs::emit(
                    fix_obs::EventKind::OffloadExpire,
                    now_us,
                    batch_trace_id(&job.thunks),
                    job.options.priority.tier() as u32,
                    job.thunks.len() as u32,
                );
            }
            job.slot.fill(
                job.thunks
                    .iter()
                    .map(|_| {
                        Err(Error::DeadlineExceeded {
                            deadline_us: deadline,
                        })
                    })
                    .collect(),
            );
            return;
        }
    }
    // A panic below would strand every later batch on this worker;
    // convert it to per-slot errors and keep serving (mirrors the
    // scheduler's treatment of panicking codelets as guest faults).
    let t0 = fix_obs::tracing_enabled().then(std::time::Instant::now);
    let results =
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| match job.options.mode {
            Mode::Whnf => inner.eval_many(&job.thunks),
            Mode::Strict => job.thunks.iter().map(|&h| inner.eval_strict(h)).collect(),
        }))
        .unwrap_or_else(|_| {
            job.thunks
                .iter()
                .map(|_| {
                    Err(Error::Backend {
                        backend: "offload",
                        message: "backend panicked during batch evaluation".into(),
                    })
                })
                .collect()
        });
    if let Some(t0) = t0 {
        fix_obs::emit_span(
            fix_obs::EventKind::OffloadDispatch,
            pool.clock.load(Ordering::Relaxed),
            batch_trace_id(&job.thunks),
            job.options.priority.tier() as u32,
            job.thunks.len() as u32,
            t0.elapsed().as_nanos() as u64,
        );
    }
    job.slot.fill(results);
}

impl<T: ?Sized> BlockingOffload<T> {
    /// The wrapped backend.
    pub fn inner(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> Drop for BlockingOffload<T> {
    fn drop(&mut self) {
        // Close the pool; workers drain what was already submitted
        // (outstanding tickets still resolve), then exit.
        {
            let mut tiers = self.pool.tiers.lock().unwrap_or_else(|e| e.into_inner());
            tiers.open = false;
        }
        self.pool.cv.notify_all();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

impl<T: Evaluator + Send + Sync + 'static> SubmitApi for BlockingOffload<T> {
    fn submit_with(&self, handles: &[Handle], options: SubmitOptions) -> BatchTicket {
        // Dead on arrival: a batch submitted after its deadline passed
        // fails whole, uniformly with every other backend.
        if let Some(deadline_us) = options.deadline_us {
            if self.pool.clock.load(Ordering::Relaxed) > deadline_us {
                return BatchTicket::ready(
                    handles
                        .iter()
                        .map(|_| Err(Error::DeadlineExceeded { deadline_us }))
                        .collect(),
                );
            }
        }
        let slot = Arc::new(OffloadSlot::default());
        let job = OffloadJob {
            thunks: handles.to_vec(),
            options,
            slot: Arc::clone(&slot),
        };
        {
            let mut tiers = self.pool.tiers.lock().unwrap_or_else(|e| e.into_inner());
            if !tiers.open {
                // Unreachable while `self` is alive (we close the pool
                // only in Drop), but fail soft rather than hang.
                return BatchTicket::ready(
                    handles
                        .iter()
                        .map(|_| {
                            Err(Error::Backend {
                                backend: "offload",
                                message: "submission pool is shut down".into(),
                            })
                        })
                        .collect(),
                );
            }
            tiers.queues[options.priority.tier()].push_back(job);
        }
        if fix_obs::tracing_enabled() {
            fix_obs::emit(
                fix_obs::EventKind::OffloadSubmit,
                self.pool.clock.load(Ordering::Relaxed),
                batch_trace_id(handles),
                options.priority.tier() as u32,
                handles.len() as u32,
            );
        }
        self.pool.cv.notify_one();
        BatchTicket::from_pending(
            Arc::new(OffloadPending {
                slot,
                len: handles.len(),
            }),
            handles.len(),
        )
    }

    fn virtual_now(&self) -> u64 {
        self.pool.clock.load(Ordering::Relaxed)
    }

    fn advance_virtual_clock(&self, us: u64) {
        self.pool.clock.fetch_add(us, Ordering::Relaxed);
    }
}

impl<T: Evaluator + Send + Sync + 'static> Evaluator for BlockingOffload<T> {
    fn eval(&self, handle: Handle) -> Result<Handle> {
        // A single lazy evaluation gains nothing from a thread handoff.
        self.inner.eval(handle)
    }

    fn eval_strict(&self, handle: Handle) -> Result<Handle> {
        self.inner.eval_strict(handle)
    }

    fn eval_many(&self, handles: &[Handle]) -> Vec<Result<Handle>> {
        // Blocking is the special case of submission: one batch, waited
        // on immediately (and still executed by the pool, so concurrent
        // blocking callers parallelize exactly like submitted ones).
        self.submit_many(handles).wait()
    }

    fn footprint(&self, thunk: Handle) -> Result<Footprint> {
        self.inner.footprint(thunk)
    }

    fn footprint_many(&self, thunks: &[Handle]) -> Result<Footprint> {
        self.inner.footprint_many(thunks)
    }

    fn procedures_run(&self) -> u64 {
        self.inner.procedures_run()
    }
}

impl<T: ObjectApi + ?Sized> ObjectApi for BlockingOffload<T> {
    fn put_blob(&self, blob: Blob) -> Handle {
        self.inner.put_blob(blob)
    }
    fn put_tree(&self, tree: Tree) -> Handle {
        self.inner.put_tree(tree)
    }
    fn get_blob(&self, handle: Handle) -> Result<Blob> {
        self.inner.get_blob(handle)
    }
    fn get_tree(&self, handle: Handle) -> Result<Tree> {
        self.inner.get_tree(handle)
    }
    fn contains(&self, handle: Handle) -> bool {
        self.inner.contains(handle)
    }
    fn put(&self, node: Node) -> Handle {
        self.inner.put(node)
    }
}

impl<T: InvocationApi + ?Sized> InvocationApi for BlockingOffload<T> {
    fn register_native(&self, name: &str, f: NativeFn) -> Handle {
        self.inner.register_native(name, f)
    }
    fn install_module(&self, module_bytes: Vec<u8>) -> Result<Handle> {
        self.inner.install_module(module_bytes)
    }
    fn apply(&self, limits: ResourceLimits, procedure: Handle, args: &[Handle]) -> Result<Handle> {
        self.inner.apply(limits, procedure, args)
    }
    fn strict_apply(
        &self,
        limits: ResourceLimits,
        procedure: Handle,
        args: &[Handle],
    ) -> Result<Handle> {
        self.inner.strict_apply(limits, procedure, args)
    }
    fn select(&self, target: Handle, index: u64) -> Result<Handle> {
        self.inner.select(target, index)
    }
    fn select_range(&self, target: Handle, begin: u64, end: u64) -> Result<Handle> {
        self.inner.select_range(target, begin, end)
    }
}
