//! [`BlockingOffload`]: submission-first evaluation over any blocking
//! backend.
//!
//! The single-node runtime implements [`SubmitApi`] natively by hooking
//! its scheduler. Every other backend — the netsim-backed cluster client,
//! the baseline cost models, any future engine — is a plain blocking
//! [`Evaluator`]. This adapter lifts such a backend onto the submission
//! API with a small pool of submission threads: `submit_many` hands the
//! batch to a thread and returns a ticket immediately; the thread runs
//! the backend's ordinary `eval_many` and fills the ticket's completion
//! slot. One conformant surface, every backend.
//!
//! Cancel-on-drop: a dropped ticket marks its slot detached. A batch
//! the threads have not yet started is then skipped entirely — the
//! closest a blocking backend can get to cancellation — while a batch
//! already executing simply completes into the abandoned slot.

use crate::api::{Evaluator, InvocationApi, NativeFn, ObjectApi, SubmitApi};
use crate::data::{Blob, Node, Tree};
use crate::error::{Error, Result};
use crate::handle::Handle;
use crate::limits::ResourceLimits;
use crate::semantics::Footprint;
use crate::ticket::{BatchTicket, PendingBatch};
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

/// One submitted batch in flight between a ticket and the worker pool.
struct OffloadJob {
    thunks: Vec<Handle>,
    slot: Arc<OffloadSlot>,
}

#[derive(Default)]
struct SlotState {
    /// Positional results, once produced.
    results: Option<Vec<Result<Handle>>>,
    /// Set when `results` has been written (stays true after a take).
    produced: bool,
    /// Set when the ticket was dropped unresolved.
    detached: bool,
}

/// The completion slot shared between one ticket and the worker that
/// (eventually) executes its batch.
#[derive(Default)]
struct OffloadSlot {
    state: Mutex<SlotState>,
    cv: Condvar,
}

impl OffloadSlot {
    fn fill(&self, results: Vec<Result<Handle>>) {
        let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        state.results = Some(results);
        state.produced = true;
        drop(state);
        self.cv.notify_all();
    }
}

/// The ticket side of an offloaded batch.
struct OffloadPending {
    slot: Arc<OffloadSlot>,
}

impl PendingBatch for OffloadPending {
    fn try_take(&self) -> Option<Vec<Result<Handle>>> {
        let mut state = self.slot.state.lock().unwrap_or_else(|e| e.into_inner());
        state.results.take()
    }

    fn wait(&self) -> Vec<Result<Handle>> {
        let mut state = self.slot.state.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if state.produced {
                return state
                    .results
                    .take()
                    .expect("offload results are claimed exactly once");
            }
            state = self.slot.cv.wait(state).unwrap_or_else(|e| e.into_inner());
        }
    }

    fn advance(&self, timeout: Duration) {
        let state = self.slot.state.lock().unwrap_or_else(|e| e.into_inner());
        if !state.produced {
            let _ = self
                .slot
                .cv
                .wait_timeout(state, timeout)
                .unwrap_or_else(|e| e.into_inner());
        }
    }

    fn detach(&self) {
        let mut state = self.slot.state.lock().unwrap_or_else(|e| e.into_inner());
        state.detached = true;
    }
}

/// Lifts a blocking [`Evaluator`] onto the submission-first
/// [`SubmitApi`] via a pool of submission threads.
///
/// The adapter implements the *whole* One Fix API by delegation —
/// construction calls go straight to the inner backend; only evaluation
/// is routed through the pool — so code written against
/// [`SubmitApi`] + [`InvocationApi`] runs unchanged over
/// `BlockingOffload<ClusterClient>`, `BlockingOffload<BaselineEvaluator>`,
/// or the natively-submitting `fixpoint::Runtime`.
///
/// Dropping the adapter drains all submitted batches (their tickets
/// still resolve) and joins the threads.
///
/// # Examples
///
/// ```
/// use fix_core::api::{BlockingOffload, Evaluator, InvocationApi, ObjectApi, SubmitApi};
/// use fix_core::data::Blob;
/// use fix_core::limits::ResourceLimits;
/// use std::sync::Arc;
///
/// // Any plain Evaluator backend gains submit/wait:
/// let cc = BlockingOffload::new(fix_cluster::ClusterClient::builder().build().unwrap());
/// let add = cc.register_native("offload/add", Arc::new(|ctx| {
///     let a = ctx.arg_blob(0)?.as_u64().unwrap();
///     let b = ctx.arg_blob(1)?.as_u64().unwrap();
///     ctx.host.create_blob((a + b).to_le_bytes().to_vec())
/// }));
/// let thunk = cc.apply(
///     ResourceLimits::default_limits(),
///     add,
///     &[cc.put_blob(Blob::from_u64(40)), cc.put_blob(Blob::from_u64(2))],
/// ).unwrap();
/// let ticket = cc.submit(thunk);          // returns immediately
/// assert_eq!(cc.get_u64(ticket.wait().unwrap()).unwrap(), 42);
/// ```
pub struct BlockingOffload<T: ?Sized> {
    sender: Option<mpsc::Sender<OffloadJob>>,
    workers: Vec<std::thread::JoinHandle<()>>,
    inner: Arc<T>,
}

impl<T: Evaluator + Send + Sync + 'static> BlockingOffload<T> {
    /// Wraps `inner` with a single submission thread.
    pub fn new(inner: T) -> BlockingOffload<T> {
        Self::from_arc(Arc::new(inner))
    }

    /// Wraps an already-shared backend with a single submission thread.
    pub fn from_arc(inner: Arc<T>) -> BlockingOffload<T> {
        Self::with_threads(inner, 1)
    }

    /// Wraps an already-shared backend with `threads` submission
    /// threads, so that many concurrently submitted batches execute in
    /// parallel on the inner backend (which is `Sync`, so this is the
    /// same concurrency a pool of blocking callers would impose).
    ///
    /// # Panics
    ///
    /// Panics if `threads` is zero.
    pub fn with_threads(inner: Arc<T>, threads: usize) -> BlockingOffload<T> {
        assert!(threads > 0, "an offload needs at least one thread");
        let (sender, receiver) = mpsc::channel::<OffloadJob>();
        let receiver = Arc::new(Mutex::new(receiver));
        let workers = (0..threads)
            .map(|i| {
                let inner = Arc::clone(&inner);
                let receiver = Arc::clone(&receiver);
                std::thread::Builder::new()
                    .name(format!("fix-offload-{i}"))
                    .spawn(move || loop {
                        // Hold the receiver lock only for the pop, not
                        // the evaluation, so sibling workers stay busy.
                        let job = {
                            let rx = receiver.lock().unwrap_or_else(|e| e.into_inner());
                            rx.recv()
                        };
                        let Ok(job) = job else {
                            return; // Adapter dropped and queue drained.
                        };
                        let skip = {
                            let state = job.slot.state.lock().unwrap_or_else(|e| e.into_inner());
                            state.detached
                        };
                        if skip {
                            continue; // Cancelled before execution began.
                        }
                        // A panic below would strand every later batch on
                        // this worker; convert it to per-slot errors and
                        // keep serving (mirrors the scheduler's treatment
                        // of panicking codelets as guest faults).
                        let results =
                            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                                inner.eval_many(&job.thunks)
                            }))
                            .unwrap_or_else(|_| {
                                job.thunks
                                    .iter()
                                    .map(|_| {
                                        Err(Error::Backend {
                                            backend: "offload",
                                            message: "backend panicked during eval_many".into(),
                                        })
                                    })
                                    .collect()
                            });
                        job.slot.fill(results);
                    })
                    .expect("spawn offload worker")
            })
            .collect();
        BlockingOffload {
            sender: Some(sender),
            workers,
            inner,
        }
    }
}

impl<T: ?Sized> BlockingOffload<T> {
    /// The wrapped backend.
    pub fn inner(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> Drop for BlockingOffload<T> {
    fn drop(&mut self) {
        // Disconnect the channel; workers drain what was already
        // submitted (outstanding tickets still resolve), then exit.
        self.sender.take();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

impl<T: Evaluator + Send + Sync + 'static> SubmitApi for BlockingOffload<T> {
    fn submit_many(&self, handles: &[Handle]) -> BatchTicket {
        let slot = Arc::new(OffloadSlot::default());
        let job = OffloadJob {
            thunks: handles.to_vec(),
            slot: Arc::clone(&slot),
        };
        let sender = self.sender.as_ref().expect("offload is alive");
        if sender.send(job).is_err() {
            // Unreachable while `self` is alive (we hold the receiver's
            // workers), but fail soft rather than hanging a waiter.
            return BatchTicket::ready(
                handles
                    .iter()
                    .map(|_| {
                        Err(Error::Backend {
                            backend: "offload",
                            message: "submission pool is shut down".into(),
                        })
                    })
                    .collect(),
            );
        }
        BatchTicket::from_pending(Arc::new(OffloadPending { slot }), handles.len())
    }
}

impl<T: Evaluator + Send + Sync + 'static> Evaluator for BlockingOffload<T> {
    fn eval(&self, handle: Handle) -> Result<Handle> {
        // A single lazy evaluation gains nothing from a thread handoff.
        self.inner.eval(handle)
    }

    fn eval_strict(&self, handle: Handle) -> Result<Handle> {
        self.inner.eval_strict(handle)
    }

    fn eval_many(&self, handles: &[Handle]) -> Vec<Result<Handle>> {
        // Blocking is the special case of submission: one batch, waited
        // on immediately (and still executed by the pool, so concurrent
        // blocking callers parallelize exactly like submitted ones).
        self.submit_many(handles).wait()
    }

    fn footprint(&self, thunk: Handle) -> Result<Footprint> {
        self.inner.footprint(thunk)
    }

    fn procedures_run(&self) -> u64 {
        self.inner.procedures_run()
    }
}

impl<T: ObjectApi + ?Sized> ObjectApi for BlockingOffload<T> {
    fn put_blob(&self, blob: Blob) -> Handle {
        self.inner.put_blob(blob)
    }
    fn put_tree(&self, tree: Tree) -> Handle {
        self.inner.put_tree(tree)
    }
    fn get_blob(&self, handle: Handle) -> Result<Blob> {
        self.inner.get_blob(handle)
    }
    fn get_tree(&self, handle: Handle) -> Result<Tree> {
        self.inner.get_tree(handle)
    }
    fn contains(&self, handle: Handle) -> bool {
        self.inner.contains(handle)
    }
    fn put(&self, node: Node) -> Handle {
        self.inner.put(node)
    }
}

impl<T: InvocationApi + ?Sized> InvocationApi for BlockingOffload<T> {
    fn register_native(&self, name: &str, f: NativeFn) -> Handle {
        self.inner.register_native(name, f)
    }
    fn install_module(&self, module_bytes: Vec<u8>) -> Result<Handle> {
        self.inner.install_module(module_bytes)
    }
    fn apply(&self, limits: ResourceLimits, procedure: Handle, args: &[Handle]) -> Result<Handle> {
        self.inner.apply(limits, procedure, args)
    }
    fn strict_apply(
        &self,
        limits: ResourceLimits,
        procedure: Handle,
        args: &[Handle],
    ) -> Result<Handle> {
        self.inner.strict_apply(limits, procedure, args)
    }
    fn select(&self, target: Handle, index: u64) -> Result<Handle> {
        self.inner.select(target, index)
    }
    fn select_range(&self, target: Handle, begin: u64, end: u64) -> Result<Handle> {
        self.inner.select_range(target, begin, end)
    }
}
