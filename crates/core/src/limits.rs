//! Resource limits: the first slot of every application tree.
//!
//! Each Application Thunk carries explicit limits on the hardware resources
//! its execution may consume (paper §3.3). Limits are serialized as a
//! 24-byte little-endian blob, which conveniently fits in a literal Handle,
//! so resource limits never touch storage.

use crate::data::Blob;
use crate::error::{Error, Result};
use crate::handle::Handle;

/// Resource limits for one function invocation.
///
/// # Examples
///
/// ```
/// use fix_core::limits::ResourceLimits;
///
/// let limits = ResourceLimits::new(1 << 20, 1_000_000);
/// let blob = limits.to_blob();
/// assert!(blob.handle().is_literal());
/// assert_eq!(ResourceLimits::from_blob(&blob).unwrap(), limits);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ResourceLimits {
    /// Maximum guest memory, in bytes.
    pub memory_bytes: u64,
    /// Maximum guest fuel (abstract instruction budget).
    pub fuel: u64,
    /// Optional hint of the invocation's output size, in bytes.
    ///
    /// The scheduler includes this in its data-movement cost when choosing
    /// an execution location (paper §4.2.2). Zero means "no hint".
    pub output_size_hint: u64,
}

impl ResourceLimits {
    /// Serialized length in bytes.
    pub const ENCODED_LEN: usize = 24;

    /// Creates limits with the given memory and fuel budgets and no
    /// output-size hint.
    pub fn new(memory_bytes: u64, fuel: u64) -> Self {
        ResourceLimits {
            memory_bytes,
            fuel,
            output_size_hint: 0,
        }
    }

    /// Returns a copy carrying an output-size hint for the scheduler.
    pub fn with_output_hint(mut self, bytes: u64) -> Self {
        self.output_size_hint = bytes;
        self
    }

    /// Generous default limits for tests and examples: 64 MiB of memory
    /// and 2^32 fuel.
    pub fn default_limits() -> Self {
        ResourceLimits::new(64 << 20, 1 << 32)
    }

    /// Serializes to the canonical 24-byte blob.
    pub fn to_blob(&self) -> Blob {
        let mut buf = [0u8; Self::ENCODED_LEN];
        buf[0..8].copy_from_slice(&self.memory_bytes.to_le_bytes());
        buf[8..16].copy_from_slice(&self.fuel.to_le_bytes());
        buf[16..24].copy_from_slice(&self.output_size_hint.to_le_bytes());
        Blob::from_slice(&buf)
    }

    /// The literal Handle of the serialized limits.
    pub fn handle(&self) -> Handle {
        self.to_blob().handle()
    }

    /// Parses limits back from a blob.
    pub fn from_blob(blob: &Blob) -> Result<Self> {
        let data = blob.as_slice();
        if data.len() != Self::ENCODED_LEN {
            return Err(Error::MalformedTree {
                handle: blob.handle(),
                reason: format!(
                    "resource limits must be {} bytes, got {}",
                    Self::ENCODED_LEN,
                    data.len()
                ),
            });
        }
        let word = |i: usize| {
            let mut b = [0u8; 8];
            b.copy_from_slice(&data[i..i + 8]);
            u64::from_le_bytes(b)
        };
        Ok(ResourceLimits {
            memory_bytes: word(0),
            fuel: word(8),
            output_size_hint: word(16),
        })
    }

    /// Parses limits directly from a literal handle.
    pub fn from_handle(handle: Handle) -> Result<Self> {
        match crate::data::literal_blob(handle) {
            Some(blob) => Self::from_blob(&blob),
            None => Err(Error::TypeMismatch {
                handle,
                expected: "literal resource-limits blob",
            }),
        }
    }
}

impl Default for ResourceLimits {
    fn default() -> Self {
        Self::default_limits()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let l = ResourceLimits::new(123, 456).with_output_hint(789);
        assert_eq!(ResourceLimits::from_blob(&l.to_blob()).unwrap(), l);
        assert_eq!(ResourceLimits::from_handle(l.handle()).unwrap(), l);
    }

    #[test]
    fn wrong_length_rejected() {
        let blob = Blob::from_slice(&[0u8; 23]);
        assert!(ResourceLimits::from_blob(&blob).is_err());
    }

    #[test]
    fn limits_fit_in_a_literal() {
        let l = ResourceLimits::new(u64::MAX, u64::MAX).with_output_hint(u64::MAX);
        assert!(l.handle().is_literal());
        assert_eq!(l.handle().size(), ResourceLimits::ENCODED_LEN as u64);
    }
}
