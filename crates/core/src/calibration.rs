//! The shared service-cost calibration table.
//!
//! Two simulating layers charge modeled time for work they do not
//! really measure: the cluster/baseline engines charge a flat compute
//! cost per derived task, and the serving layer's virtual clock charges
//! per-kind cold/warm service times. These constants used to live in
//! two places (`fix_cluster::ClusterClientBuilder::task_compute_us` and
//! `fix_serve::RequestKind::cold_service_us`) and could drift apart;
//! this module is the single table both consume.
//!
//! The values are *calibration constants, not measurements*: they
//! anchor virtual clocks so that latency tables and simulated makespans
//! are reproducible bit for bit. Their magnitudes, however, are now
//! **derived from measured procedure runtimes** on the real
//! `fixpoint::Runtime` (release mode): the `figures calibrate`
//! subcommand times the warm/cold path of every request kind and
//! prints measured-vs-table rows, and a standing test in
//! `fix_bench::calibrate` pins each constant to within an order of
//! magnitude of measurement — closing the ROADMAP's "hand-set
//! constants" item. The paper's Fig. 7a scale (native invocation
//! ≈ 2.9 µs, warm-memoized ≈ 0.8 µs) agrees with those measurements.
//! Changing any value changes every serving table and every simulated
//! makespan downstream, deterministically.

/// Modeled per-kind service costs, in virtual µs (one shared instance:
/// [`SERVICE_COSTS`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Calibration {
    /// Cold native-codelet invocation (the `add` request kind): VM-free
    /// dispatch plus argument loads.
    pub native_cold_us: u64,
    /// FixVM guest startup: module decode plus interpreter spin-up.
    pub vm_start_us: u64,
    /// Per recursion step of the `fib` guest (each step is one memoized
    /// sub-invocation).
    pub vm_step_us: u64,
    /// `count-string` shard scan: fixed per-request overhead…
    pub wordcount_base_us: u64,
    /// …plus one µs per this many corpus bytes scanned.
    pub wordcount_bytes_per_us: u64,
    /// The SeBS `dynamic-html` render through Flatware (template fetch,
    /// render loop, filesystem traversal).
    pub sebs_html_cold_us: u64,
    /// A warm repeat of any kind: the Fig. 7a warm-memoized path,
    /// independent of the procedure.
    pub warm_hit_us: u64,
    /// One SNF (serverless-network-function) packet-batch step: fold a
    /// batch of packets into a flow-state shard through a native
    /// codelet, chained on the previous state handle. A batch that has
    /// to catch up over `k` unprocessed predecessor batches charges
    /// `k × snf_step_us` — the long-memoized-dependency-chain cost the
    /// adaptive-serving scenario stresses. Priced like a native
    /// invocation plus the argument force of the previous state.
    pub snf_step_us: u64,
    /// The flat compute charge per simulated cluster task, used when a
    /// derived dataflow graph carries no per-kind information (the
    /// graph deriver sees thunks, not request kinds). Sits mid-range
    /// across the measured kind costs — between the cheapest cold path
    /// ([`native_cold_us`](Self::native_cold_us)) and the dearest (a
    /// deep [`vm_step_us`](Self::vm_step_us) guest chain).
    pub task_compute_us: u64,
}

/// The one calibration every simulating layer shares. Magnitudes match
/// the `figures calibrate` measurements (see the module docs).
pub const SERVICE_COSTS: Calibration = Calibration {
    native_cold_us: 3,
    vm_start_us: 30,
    vm_step_us: 13,
    wordcount_base_us: 8,
    wordcount_bytes_per_us: 512,
    sebs_html_cold_us: 8,
    warm_hit_us: 1,
    snf_step_us: 5,
    task_compute_us: 40,
};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn warm_is_cheapest_and_flat_charge_is_mid_range() {
        let c = SERVICE_COSTS;
        assert!(c.warm_hit_us < c.native_cold_us);
        assert!(c.native_cold_us < c.sebs_html_cold_us);
        // An SNF step is a native fold plus the previous-state force:
        // dearer than a bare native call, cheaper than a cold render.
        assert!((c.native_cold_us..=c.sebs_html_cold_us).contains(&c.snf_step_us));
        // The flat per-task charge sits inside the span of modeled kind
        // costs: dearer than any single native invocation, cheaper than
        // a deep guest chain.
        let dearest_kind = c.vm_start_us + 8 * c.vm_step_us;
        assert!(
            (c.native_cold_us..=dearest_kind).contains(&c.task_compute_us),
            "the flat per-task charge must sit inside the per-kind range"
        );
    }
}
