//! The shared service-cost calibration table.
//!
//! Two simulating layers charge modeled time for work they do not
//! really measure: the cluster/baseline engines charge a flat compute
//! cost per derived task, and the serving layer's virtual clock charges
//! per-kind cold/warm service times. These constants used to live in
//! two places (`fix_cluster::ClusterClientBuilder::task_compute_us` and
//! `fix_serve::RequestKind::cold_service_us`) and could drift apart;
//! this module is the single table both consume.
//!
//! The values are *calibration constants, not measurements*: they
//! anchor virtual clocks so that latency tables and simulated makespans
//! are reproducible bit for bit. They are derived from the paper's
//! Fig. 7a scale — native invocation ≈ 2.9 µs, warm-memoized ≈ 0.8 µs,
//! VM startup tens of µs — and the relative heft of each workload in
//! this repo. Changing any value changes every serving table and every
//! simulated makespan downstream, deterministically.

/// Modeled per-kind service costs, in virtual µs (one shared instance:
/// [`SERVICE_COSTS`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Calibration {
    /// Cold native-codelet invocation (the `add` request kind): VM-free
    /// dispatch plus argument loads.
    pub native_cold_us: u64,
    /// FixVM guest startup: module decode plus interpreter spin-up.
    pub vm_start_us: u64,
    /// Per recursion step of the `fib` guest (each step is one memoized
    /// sub-invocation).
    pub vm_step_us: u64,
    /// `count-string` shard scan: fixed per-request overhead…
    pub wordcount_base_us: u64,
    /// …plus one µs per this many corpus bytes scanned.
    pub wordcount_bytes_per_us: u64,
    /// The SeBS `dynamic-html` render through Flatware (template fetch,
    /// render loop, filesystem traversal).
    pub sebs_html_cold_us: u64,
    /// A warm repeat of any kind: the Fig. 7a warm-memoized path,
    /// independent of the procedure.
    pub warm_hit_us: u64,
    /// The flat compute charge per simulated cluster task, used when a
    /// derived dataflow graph carries no per-kind information (the
    /// graph deriver sees thunks, not request kinds). Sits mid-range
    /// between [`native_cold_us`](Self::native_cold_us) and
    /// [`sebs_html_cold_us`](Self::sebs_html_cold_us).
    pub task_compute_us: u64,
}

/// The one calibration every simulating layer shares.
pub const SERVICE_COSTS: Calibration = Calibration {
    native_cold_us: 30,
    vm_start_us: 120,
    vm_step_us: 40,
    wordcount_base_us: 80,
    wordcount_bytes_per_us: 256,
    sebs_html_cold_us: 600,
    warm_hit_us: 3,
    task_compute_us: 100,
};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn warm_is_cheapest_and_flat_charge_is_mid_range() {
        let c = SERVICE_COSTS;
        assert!(c.warm_hit_us < c.native_cold_us);
        assert!(c.native_cold_us < c.sebs_html_cold_us);
        assert!(
            (c.native_cold_us..=c.sebs_html_cold_us).contains(&c.task_compute_us),
            "the flat per-task charge must sit inside the per-kind range"
        );
    }
}
