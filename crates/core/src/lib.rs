//! `fix-core`: the Fix ABI — a shared representation of computation.
//!
//! This crate implements the paper's primary contribution at the data
//! level: a low-level binary representation in which programs, users, and
//! the platform describe computations identically (paper §3). Programs
//! never perform I/O; they *name* the code and data they need:
//!
//! * [`data::Blob`] / [`data::Tree`] — the two data types;
//! * [`handle::Handle`] — 256-bit self-describing names (Object, Ref,
//!   Thunk, Encode), with ≤30-byte blobs inlined as literals;
//! * [`invocation`] — the tree layouts for applications and selections,
//!   plus the Table-1 construction API;
//! * [`limits::ResourceLimits`] — explicit per-invocation resource bounds;
//! * [`semantics`] — minimum-repository (footprint) analysis and the
//!   data-access rules shared by the runtime and the scheduler;
//! * [`api`] — the One Fix API: backend-agnostic [`api::ObjectApi`] /
//!   [`api::InvocationApi`] / [`api::Evaluator`] / [`api::SubmitApi`]
//!   traits implemented by every execution engine in the workspace,
//!   plus the [`ticket`] machinery behind submission-first evaluation
//!   and the [`offload`] adapter that lifts blocking backends onto it;
//! * [`calibration`] — the shared service-cost table every simulating
//!   layer (cluster tasks, serving clocks) charges from.
//!
//! The runtime that evaluates these objects is the `fixpoint` crate; the
//! distributed engine is `fix-cluster`.
//!
//! # Examples
//!
//! Describing `add(1, 2)` without running anything:
//!
//! ```
//! use fix_core::data::{Blob, Tree};
//! use fix_core::invocation::build;
//! use fix_core::limits::ResourceLimits;
//!
//! let add_code = Blob::from_slice(b"\0fixvm-module-bytes...");
//! let tree = Tree::from_handles(vec![
//!     ResourceLimits::default_limits().handle(),
//!     add_code.handle(),
//!     Blob::from_u64(1).handle(),
//!     Blob::from_u64(2).handle(),
//! ]);
//! let thunk = build::application(&tree).unwrap();
//! let request = build::strict(thunk).unwrap();
//! assert!(request.is_encode());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod api;
pub mod calibration;
pub mod data;
pub mod error;
pub mod handle;
pub mod invocation;
pub mod limits;
pub mod offload;
pub mod semantics;
pub mod ticket;
pub mod wire;

pub use api::{
    BatchTicket, BlockingOffload, Evaluator, HostApi, InvocationApi, NativeCtx, NativeFn,
    ObjectApi, SubmitApi, Ticket,
};
pub use data::{Blob, Node, Tree};
pub use error::{Error, Result};
pub use handle::{DataType, EncodeStyle, Handle, Kind, ThunkKind};
pub use invocation::{Invocation, Selection};
pub use limits::ResourceLimits;
pub use wire::Parcel;

#[cfg(test)]
mod handle_tests {
    use super::*;
    use crate::handle::MAX_LITERAL;

    #[test]
    fn literal_boundary() {
        assert!(Handle::literal(&[0u8; MAX_LITERAL]).is_some());
        assert!(Handle::literal(&[0u8; MAX_LITERAL + 1]).is_none());
    }

    #[test]
    fn kind_transitions_preserve_payload() {
        let blob = Blob::from_slice(&[3u8; 100]);
        let obj = blob.handle();
        let r = obj.as_ref_handle();
        assert_eq!(obj.digest(), r.digest());
        assert_eq!(obj.size(), r.size());
        assert!(!r.is_accessible());
        assert_eq!(r.as_object_handle(), obj);

        let ident = obj.identification().unwrap();
        assert_eq!(ident.thunk_definition().unwrap(), obj);
        let strict = ident.strict().unwrap();
        assert_eq!(strict.encoded_thunk().unwrap(), ident);
        assert_eq!(
            strict.kind(),
            Kind::Encode(EncodeStyle::Strict, ThunkKind::Identification)
        );
    }

    #[test]
    fn application_requires_tree() {
        let blob = Blob::from_slice(&[1u8; 40]).handle();
        assert!(blob.application().is_err());
        let tree = Tree::from_handles(vec![]).handle();
        assert!(tree.application().is_ok());
        assert!(tree.selection().is_ok());
    }

    #[test]
    fn encode_requires_thunk() {
        let blob = Blob::from_slice(&[1u8; 40]).handle();
        assert!(blob.strict().is_err());
        let tree = Tree::from_handles(vec![]).handle();
        let thunk = tree.application().unwrap();
        assert!(thunk.strict().is_ok());
        assert!(thunk.shallow().is_ok());
        // Double-encode is rejected.
        assert!(thunk.strict().unwrap().strict().is_err());
    }

    #[test]
    fn raw_round_trip_valid_handles() {
        let samples = vec![
            Blob::from_slice(b"small").handle(),
            Blob::from_slice(&[9u8; 4096]).handle(),
            Tree::from_handles(vec![]).handle(),
            Tree::from_handles(vec![]).handle().as_ref_handle(),
            Tree::from_handles(vec![]).handle().application().unwrap(),
            Blob::from_slice(b"v").handle().identification().unwrap(),
            Tree::from_handles(vec![])
                .handle()
                .selection()
                .unwrap()
                .shallow()
                .unwrap(),
        ];
        for h in samples {
            let rt = Handle::from_raw(*h.raw()).unwrap();
            assert_eq!(rt, h);
            assert_eq!(rt.kind(), h.kind());
        }
    }

    #[test]
    fn from_raw_rejects_garbage() {
        // Nonzero reserved bits.
        let mut raw = *Blob::from_slice(b"x").handle().raw();
        raw[31] |= 0x80;
        assert!(Handle::from_raw(raw).is_err());

        // Literal with nonzero padding.
        let mut raw2 = *Handle::literal(b"ab").unwrap().raw();
        raw2[10] = 1;
        assert!(Handle::from_raw(raw2).is_err());

        // Application thunk tagged as blob-typed.
        let mut raw3 = *Tree::from_handles(vec![])
            .handle()
            .application()
            .unwrap()
            .raw();
        raw3[31] &= !1; // Clear the tree flag.
        assert!(Handle::from_raw(raw3).is_err());
    }

    #[test]
    fn display_is_stable_and_readable() {
        let lit = Blob::from_slice(b"abc").handle();
        assert_eq!(format!("{lit}"), "blob:obj:lit:\"abc\"");
        let tree = Tree::from_handles(vec![]).handle();
        let shown = format!("{tree}");
        assert!(shown.starts_with("tree:obj:"), "{shown}");
        assert!(shown.ends_with(":0"), "{shown}");
    }

    #[test]
    #[should_panic(expected = "as_ref_handle on non-value")]
    fn demoting_a_thunk_panics() {
        let t = Tree::from_handles(vec![]).handle().application().unwrap();
        let _ = t.as_ref_handle();
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Literal and canonical handles round-trip through raw bytes.
        #[test]
        fn handle_raw_round_trip(data in proptest::collection::vec(any::<u8>(), 0..200)) {
            let h = Blob::from_slice(&data).handle();
            let rt = Handle::from_raw(*h.raw()).unwrap();
            prop_assert_eq!(h, rt);
            prop_assert_eq!(h.size(), data.len() as u64);
            prop_assert_eq!(h.is_literal(), data.len() <= 30);
        }

        /// Content addressing: equal content gives equal handles, and
        /// different content gives different handles.
        #[test]
        fn content_addressing(a in proptest::collection::vec(any::<u8>(), 0..100),
                              b in proptest::collection::vec(any::<u8>(), 0..100)) {
            let ha = Blob::from_slice(&a).handle();
            let hb = Blob::from_slice(&b).handle();
            prop_assert_eq!(ha == hb, a == b);
        }

        /// Trees round-trip through their canonical serialization.
        #[test]
        fn tree_serialization_round_trip(blobs in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 0..64), 0..20)) {
            let entries: Vec<Handle> =
                blobs.iter().map(|b| Blob::from_slice(b).handle()).collect();
            let tree = Tree::from_handles(entries);
            let rt = Tree::from_canonical_bytes(&tree.canonical_bytes()).unwrap();
            prop_assert_eq!(rt.handle(), tree.handle());
        }

        /// Selection trees round-trip.
        #[test]
        fn selection_round_trip(begin in 0u64..1_000_000, len in 0u64..1_000_000,
                                ranged in any::<bool>()) {
            let target = Tree::from_handles(vec![]).handle();
            let sel = if ranged {
                Selection::range(target, begin, begin + len)
            } else {
                Selection::index(target, begin)
            };
            let rt = Selection::from_tree(&sel.to_tree()).unwrap();
            prop_assert_eq!(rt, sel);
        }

        /// Kind transitions never alter payload, size, or literal status.
        #[test]
        fn transitions_preserve_identity(data in proptest::collection::vec(any::<u8>(), 0..64)) {
            let obj = Blob::from_slice(&data).handle();
            let ident = obj.identification().unwrap();
            let enc = ident.shallow().unwrap();
            for h in [obj.as_ref_handle(), ident, enc, enc.encoded_thunk().unwrap()] {
                prop_assert_eq!(h.size(), obj.size());
                prop_assert_eq!(h.is_literal(), obj.is_literal());
                prop_assert_eq!(h.digest(), obj.digest());
            }
        }

        /// Resource limits round-trip.
        #[test]
        fn limits_round_trip(m in any::<u64>(), f in any::<u64>(), o in any::<u64>()) {
            let l = ResourceLimits::new(m, f).with_output_hint(o);
            prop_assert_eq!(ResourceLimits::from_handle(l.handle()).unwrap(), l);
        }
    }
}
