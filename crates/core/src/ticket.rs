//! Tickets: the currency of submission-first evaluation.
//!
//! The paper's thesis is that computation is *described* first and
//! *resolved* later. [`SubmitApi`](crate::api::SubmitApi) carries that
//! split into the evaluation API itself: `submit_many` describes a batch
//! of requests and returns a [`BatchTicket`] immediately; the results
//! are asked for later with [`BatchTicket::wait`], checked without
//! blocking with [`BatchTicket::poll`], or multiplexed with
//! [`BatchTicket::wait_any`].
//!
//! A ticket is a thin shell over a backend-provided [`PendingBatch`]:
//! the backend decides *how* completion happens (the single-node runtime
//! hooks its scheduler's completion notifications; the
//! [`BlockingOffload`](crate::api::BlockingOffload) adapter parks a
//! submission thread), while the ticket state machine — pending →
//! resolved → taken — and the cancellation contract live here, shared
//! by every backend.
//!
//! [`BatchTicket::cancel`] is *true cancellation*, not mere
//! deregistration: the backend fails the batch's unresolved slots with
//! [`Error::Cancelled`](crate::error::Error::Cancelled), releases its
//! per-batch bookkeeping (watchers, pool entries), and **withdraws
//! still-queued work that no other live request shares** — a cancelled
//! batch whose jobs were never dispatched runs zero procedures. Work
//! another request also watches, work something else depends on, and
//! work already executing are left to complete normally. Dropping an
//! unresolved ticket is cancel's implicit form: same withdrawal, with
//! the `Cancelled` results simply never claimed. Either way the backend
//! must neither hang concurrent work nor leak (the conformance suite
//! holds backends to this, and the runtime exposes
//! `submission_watchers()` / `queued_jobs()` so the leak checks are
//! pinned, not assumed).

use crate::error::Result;
use crate::handle::Handle;
use std::sync::Arc;
use std::time::Duration;

/// How long one [`BatchTicket::wait_any`] round parks before re-polling
/// every ticket. Completion notifications usually wake the waiter much
/// earlier; the bound only caps the latency of cross-backend mixes,
/// where one batch's completion cannot signal another batch's condvar.
const WAIT_ANY_TICK: Duration = Duration::from_micros(500);

/// One in-flight batch, as the backend that accepted it sees it.
///
/// Backends implement this once per submission mechanism; callers never
/// see it directly — they hold a [`BatchTicket`], which resolves itself
/// through these hooks. All methods may be called from any thread.
/// ## The slot-fill contract
///
/// Completion is per *slot*, and each slot resolves **exactly once**:
/// whichever event reaches it first — the result, a deadline expiry, a
/// cancellation, a stall failure — owns the slot's outcome, and every
/// later writer backs off. Backends are free to implement that with a
/// lock (serialize fills) or lock-free (the single-node scheduler
/// claims slots with a first-writer-wins CAS and counts the batch down
/// atomically); either way, by the time "every slot filled" is
/// observable, every slot's result must be readable. `try_take` is
/// called from hot polling loops (`wait_any` re-polls each ticket per
/// tick), so the done check should be cheap — an atomic flag, not a
/// lock sweep.
pub trait PendingBatch: Send + Sync {
    /// Non-blocking: the positional results, if every slot in the batch
    /// has completed; `None` while any slot is still in flight.
    fn try_take(&self) -> Option<Vec<Result<Handle>>>;

    /// Blocks until the batch completes and returns the positional
    /// results. Backends whose caller threads can make progress
    /// themselves (the inline single-node scheduler) drive work here
    /// rather than parking.
    fn wait(&self) -> Vec<Result<Handle>>;

    /// Makes bounded progress toward completion: executes some work
    /// inline if this backend supports it, otherwise parks for at most
    /// `timeout` awaiting a completion signal. Returns after progress,
    /// completion, or timeout — never indefinitely.
    fn advance(&self, timeout: Duration);

    /// The ticket was cancelled (explicitly, or implicitly by being
    /// dropped unresolved): the results will never be claimed. The
    /// batch must fail its unresolved slots with
    /// [`Error::Cancelled`](crate::error::Error::Cancelled), release
    /// every piece of per-batch bookkeeping it holds in the backend,
    /// and withdraw still-queued work that no other live request
    /// shares — all without disturbing other in-flight work or hanging
    /// a concurrent waiter.
    fn cancel(&self);
}

enum TicketState {
    /// In flight (or complete but not yet observed).
    Pending(Arc<dyn PendingBatch>),
    /// Complete; results cached in the ticket, not yet claimed.
    Ready(Vec<Result<Handle>>),
    /// Results claimed (via `wait`, `take_results`, or `wait_any` +
    /// `take_results`); the ticket is spent.
    Taken,
}

/// A claim on the results of one submitted batch (see
/// [`SubmitApi::submit_many`](crate::api::SubmitApi::submit_many)).
///
/// Results are positional: slot `i` answers `handles[i]` of the
/// submission, exactly as
/// [`Evaluator::eval_many`](crate::api::Evaluator::eval_many) would.
/// [`cancel`](Self::cancel) revokes the request: still-queued work no
/// other live request shares is withdrawn and unresolved slots fail
/// with [`Error::Cancelled`](crate::error::Error::Cancelled). Dropping
/// the ticket unresolved is cancel's implicit form (see
/// [`PendingBatch::cancel`]).
pub struct BatchTicket {
    state: TicketState,
    len: usize,
}

impl BatchTicket {
    /// A ticket that was born resolved — evaluation already happened at
    /// submission time. This is how blocking backends satisfy the
    /// submission API: blocking is the degenerate pipeline whose window
    /// closed immediately.
    pub fn ready(results: Vec<Result<Handle>>) -> BatchTicket {
        let len = results.len();
        BatchTicket {
            state: TicketState::Ready(results),
            len,
        }
    }

    /// A ticket over a backend's in-flight batch. `len` is the number of
    /// slots the resolved results will have (one per submitted handle).
    pub fn from_pending(pending: Arc<dyn PendingBatch>, len: usize) -> BatchTicket {
        BatchTicket {
            state: TicketState::Pending(pending),
            len,
        }
    }

    /// Number of requests (and, eventually, results) in the batch.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True for a zero-request batch.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Non-blocking completion check. Once this returns true the
    /// results are retained by the ticket and [`wait`](Self::wait) /
    /// [`take_results`](Self::take_results) return without blocking.
    pub fn poll(&mut self) -> bool {
        match &self.state {
            TicketState::Ready(_) | TicketState::Taken => true,
            TicketState::Pending(pending) => match pending.try_take() {
                Some(results) => {
                    self.state = TicketState::Ready(results);
                    true
                }
                None => false,
            },
        }
    }

    /// Blocks until the batch completes and returns the positional
    /// results, consuming the ticket.
    ///
    /// # Panics
    ///
    /// Panics if the results were already claimed with
    /// [`take_results`](Self::take_results).
    pub fn wait(mut self) -> Vec<Result<Handle>> {
        match std::mem::replace(&mut self.state, TicketState::Taken) {
            TicketState::Ready(results) => results,
            TicketState::Pending(pending) => pending.wait(),
            TicketState::Taken => panic!("BatchTicket::wait after the results were taken"),
        }
    }

    /// Claims the results without blocking: `Some` exactly once, as soon
    /// as the batch is complete; `None` while still in flight and after
    /// the results have been taken.
    pub fn take_results(&mut self) -> Option<Vec<Result<Handle>>> {
        if !self.poll() {
            return None;
        }
        match std::mem::replace(&mut self.state, TicketState::Taken) {
            TicketState::Ready(results) => Some(results),
            TicketState::Taken => None,
            TicketState::Pending(_) => unreachable!("poll() resolved the ticket"),
        }
    }

    /// Cancels the request, consuming the ticket: the backend fails
    /// every unresolved slot with
    /// [`Error::Cancelled`](crate::error::Error::Cancelled), releases
    /// the batch's bookkeeping, and withdraws still-queued work that no
    /// other live request shares (shared, depended-on, or
    /// already-executing work completes normally). Results the batch
    /// had already produced are discarded.
    ///
    /// Dropping an unresolved ticket performs the same cancellation
    /// implicitly; the explicit form exists so callers can revoke work
    /// at a point of their choosing (a disconnecting client, a missed
    /// SLO) and have the accounting say so.
    pub fn cancel(mut self) {
        if let TicketState::Pending(pending) =
            std::mem::replace(&mut self.state, TicketState::Taken)
        {
            pending.cancel();
        }
    }

    /// Bounded progress for multiplexed waiting (see
    /// [`wait_any`](Self::wait_any)).
    fn advance(&mut self, timeout: Duration) {
        if let TicketState::Pending(pending) = &self.state {
            pending.advance(timeout);
        }
    }

    /// Blocks until at least one ticket in `tickets` is complete and
    /// unclaimed, returning its index (its results are then claimed with
    /// [`take_results`](Self::take_results)). Returns `None` when every
    /// ticket has already been claimed — there is nothing left to wait
    /// for. A completed ticket whose results are never taken is returned
    /// again on the next call, so drain with `take_results` to make
    /// progress through a set.
    ///
    /// Tickets may come from different backends; progress is driven
    /// through each backend's own [`PendingBatch::advance`], rotating
    /// across the pending tickets so a batch that needs its waiter's
    /// help (an inline scheduler with no worker pool) is never starved
    /// behind a slow sibling from another backend. A mix of
    /// scheduler-driven and thread-offloaded batches therefore
    /// multiplexes correctly, with latency bounded by an internal
    /// re-poll tick.
    pub fn wait_any(tickets: &mut [BatchTicket]) -> Option<usize> {
        let mut rotation = 0usize;
        loop {
            let mut pending: Vec<usize> = Vec::new();
            for (i, ticket) in tickets.iter_mut().enumerate() {
                match &ticket.state {
                    TicketState::Ready(_) => return Some(i),
                    TicketState::Taken => {}
                    TicketState::Pending(_) => {
                        if ticket.poll() {
                            return Some(i);
                        }
                        pending.push(i);
                    }
                }
            }
            if pending.is_empty() {
                // All claimed: nothing can ever complete again.
                return None;
            }
            // Drive (or park on) the pending batches round-robin; for
            // backends with a shared work queue one advance helps every
            // sibling batch too, and the bounded tick re-polls the rest.
            let driven = pending[rotation % pending.len()];
            rotation = rotation.wrapping_add(1);
            tickets[driven].advance(WAIT_ANY_TICK);
        }
    }
}

impl Drop for BatchTicket {
    fn drop(&mut self) {
        // Implicit cancellation: an unresolved dropped ticket revokes
        // its request exactly as `cancel` would.
        if let TicketState::Pending(pending) = &self.state {
            pending.cancel();
        }
    }
}

impl std::fmt::Debug for BatchTicket {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let state = match &self.state {
            TicketState::Pending(_) => "pending",
            TicketState::Ready(_) => "ready",
            TicketState::Taken => "taken",
        };
        write!(f, "BatchTicket({state}, {} slots)", self.len)
    }
}

/// A claim on the result of one submitted evaluation: a batch ticket of
/// exactly one slot (see [`SubmitApi::submit`](crate::api::SubmitApi::submit)).
#[derive(Debug)]
pub struct Ticket {
    batch: BatchTicket,
}

impl Ticket {
    /// Wraps a single-slot batch ticket.
    ///
    /// # Panics
    ///
    /// Panics if `batch` does not hold exactly one slot.
    pub fn from_batch(batch: BatchTicket) -> Ticket {
        assert_eq!(batch.len(), 1, "a Ticket claims exactly one result");
        Ticket { batch }
    }

    /// Non-blocking completion check.
    pub fn poll(&mut self) -> bool {
        self.batch.poll()
    }

    /// Blocks until the evaluation completes, consuming the ticket.
    pub fn wait(self) -> Result<Handle> {
        self.batch
            .wait()
            .pop()
            .expect("a Ticket holds exactly one slot")
    }

    /// Claims the result without blocking: `Some` exactly once, as soon
    /// as the evaluation is complete.
    pub fn take_result(&mut self) -> Option<Result<Handle>> {
        self.batch
            .take_results()
            .map(|mut results| results.pop().expect("a Ticket holds exactly one slot"))
    }

    /// Cancels the request, consuming the ticket; see
    /// [`BatchTicket::cancel`].
    pub fn cancel(self) {
        self.batch.cancel()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::Blob;
    use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
    use std::sync::Mutex;

    /// A hand-cranked PendingBatch: completes when `finish` is called.
    struct ManualBatch {
        results: Mutex<Option<Vec<Result<Handle>>>>,
        cancelled: AtomicBool,
        advances: AtomicUsize,
    }

    impl ManualBatch {
        fn new() -> Arc<ManualBatch> {
            Arc::new(ManualBatch {
                results: Mutex::new(None),
                cancelled: AtomicBool::new(false),
                advances: AtomicUsize::new(0),
            })
        }

        fn finish(&self, results: Vec<Result<Handle>>) {
            *self.results.lock().unwrap() = Some(results);
        }
    }

    impl PendingBatch for ManualBatch {
        fn try_take(&self) -> Option<Vec<Result<Handle>>> {
            self.results.lock().unwrap().clone()
        }
        fn wait(&self) -> Vec<Result<Handle>> {
            loop {
                if let Some(r) = self.try_take() {
                    return r;
                }
                std::thread::yield_now();
            }
        }
        fn advance(&self, _timeout: Duration) {
            self.advances.fetch_add(1, Ordering::SeqCst);
            std::thread::yield_now();
        }
        fn cancel(&self) {
            self.cancelled.store(true, Ordering::SeqCst);
        }
    }

    fn h(n: u64) -> Handle {
        Blob::from_u64(n).handle()
    }

    #[test]
    fn ready_tickets_resolve_immediately() {
        let mut t = BatchTicket::ready(vec![Ok(h(1)), Ok(h(2))]);
        assert_eq!(t.len(), 2);
        assert!(t.poll());
        let results = t.take_results().unwrap();
        assert_eq!(results.len(), 2);
        assert!(t.take_results().is_none(), "results are claimed once");
    }

    #[test]
    fn pending_tickets_resolve_when_the_batch_completes() {
        let batch = ManualBatch::new();
        let mut t = BatchTicket::from_pending(Arc::clone(&batch) as Arc<dyn PendingBatch>, 1);
        assert!(!t.poll());
        batch.finish(vec![Ok(h(7))]);
        assert!(t.poll());
        assert_eq!(t.wait()[0].as_ref().unwrap(), &h(7));
        assert!(
            !batch.cancelled.load(Ordering::SeqCst),
            "a waited ticket is never cancelled"
        );
    }

    #[test]
    fn dropping_an_unresolved_ticket_cancels() {
        let batch = ManualBatch::new();
        let t = BatchTicket::from_pending(Arc::clone(&batch) as Arc<dyn PendingBatch>, 1);
        drop(t);
        assert!(batch.cancelled.load(Ordering::SeqCst));
    }

    #[test]
    fn explicit_cancel_reaches_the_backend_once() {
        let batch = ManualBatch::new();
        let t = BatchTicket::from_pending(Arc::clone(&batch) as Arc<dyn PendingBatch>, 1);
        t.cancel(); // Consumes the ticket; Drop must not cancel again.
        assert!(batch.cancelled.load(Ordering::SeqCst));
    }

    #[test]
    fn dropping_a_resolved_ticket_does_not_cancel() {
        let batch = ManualBatch::new();
        batch.finish(vec![Ok(h(1))]);
        let mut t = BatchTicket::from_pending(Arc::clone(&batch) as Arc<dyn PendingBatch>, 1);
        assert!(t.poll());
        drop(t);
        assert!(!batch.cancelled.load(Ordering::SeqCst));
    }

    #[test]
    fn wait_any_returns_completed_batches_and_then_none() {
        let a = ManualBatch::new();
        let b = ManualBatch::new();
        b.finish(vec![Ok(h(2))]);
        let mut tickets = vec![
            BatchTicket::from_pending(Arc::clone(&a) as Arc<dyn PendingBatch>, 1),
            BatchTicket::from_pending(Arc::clone(&b) as Arc<dyn PendingBatch>, 1),
        ];
        let first = BatchTicket::wait_any(&mut tickets).unwrap();
        assert_eq!(first, 1);
        assert!(tickets[first].take_results().is_some());
        a.finish(vec![Ok(h(1))]);
        let second = BatchTicket::wait_any(&mut tickets).unwrap();
        assert_eq!(second, 0);
        assert!(tickets[second].take_results().is_some());
        assert_eq!(BatchTicket::wait_any(&mut tickets), None);
    }

    /// A batch that completes only when its waiter drives it — models a
    /// pool-less scheduler backend whose progress comes from `advance`.
    struct DriveToFinish {
        results: Mutex<Option<Vec<Result<Handle>>>>,
    }

    impl PendingBatch for DriveToFinish {
        fn try_take(&self) -> Option<Vec<Result<Handle>>> {
            self.results.lock().unwrap().clone()
        }
        fn wait(&self) -> Vec<Result<Handle>> {
            loop {
                if let Some(r) = self.try_take() {
                    return r;
                }
                self.advance(Duration::ZERO);
            }
        }
        fn advance(&self, _timeout: Duration) {
            *self.results.lock().unwrap() = Some(vec![Ok(h(5))]);
        }
        fn cancel(&self) {}
    }

    /// Regression: `wait_any` must rotate which pending ticket it
    /// drives. With first-pending-only driving, a slow batch at index 0
    /// starves a drive-to-finish batch at index 1 forever (this test
    /// hangs); round-robin resolves index 1 on its first turn.
    #[test]
    fn wait_any_rotates_past_a_slow_batch() {
        let stuck = ManualBatch::new(); // Never finishes on its own.
        let driveable = Arc::new(DriveToFinish {
            results: Mutex::new(None),
        });
        let mut tickets = vec![
            BatchTicket::from_pending(Arc::clone(&stuck) as Arc<dyn PendingBatch>, 1),
            BatchTicket::from_pending(driveable as Arc<dyn PendingBatch>, 1),
        ];
        assert_eq!(BatchTicket::wait_any(&mut tickets), Some(1));
        assert!(
            stuck.advances.load(Ordering::SeqCst) <= 2,
            "the stuck batch must not monopolize the driving"
        );
    }

    #[test]
    fn single_tickets_wrap_one_slot() {
        let mut t = Ticket::from_batch(BatchTicket::ready(vec![Ok(h(42))]));
        assert!(t.poll());
        assert_eq!(t.take_result().unwrap().unwrap(), h(42));
        assert!(t.take_result().is_none());
    }
}
