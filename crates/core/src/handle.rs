//! The 256-bit Fix Handle: a self-describing, placement-independent name.
//!
//! Every Fix value is named by a Handle (paper §3.2): a truncated 192-bit
//! BLAKE3 digest, a 48-bit size, and 16 bits of type metadata, packed into
//! 32 bytes so a Handle fits in one SIMD register. As an optimization,
//! blobs of 30 bytes or fewer are *literals*: their content is stored
//! directly in the Handle and never touches storage.
//!
//! Byte layout (32 bytes total):
//!
//! ```text
//! canonical:  [ digest: 24 bytes ][ size: 6 bytes LE ][ kind ][ flags ]
//! literal:    [ content: 30 bytes, zero padded       ][ kind ][ flags ]
//! ```
//!
//! `kind` encodes Object / Ref / Thunk(Application|Identification|Selection)
//! / Encode(Strict|Shallow); `flags` encodes the referent data type
//! (Blob/Tree), the literal bit, and — for literals — the content length.

use crate::error::{Error, Result};
use std::fmt;

/// The two data types of Fix (paper §3.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum DataType {
    /// A region of memory (an array of bytes).
    Blob,
    /// A collection of other Fix Handles.
    Tree,
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataType::Blob => write!(f, "blob"),
            DataType::Tree => write!(f, "tree"),
        }
    }
}

/// The three styles of deferred computation (paper §3.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ThunkKind {
    /// The execution of a function in a container of available data:
    /// the definition tree is `[resource-limits, function, args...]`.
    Application,
    /// The identity function applied to some data.
    Identification,
    /// Extraction of a subrange of a Blob or a Tree; the definition tree
    /// is `[target, begin]` or `[target, begin, end]`.
    Selection,
}

impl fmt::Display for ThunkKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ThunkKind::Application => write!(f, "apply"),
            ThunkKind::Identification => write!(f, "ident"),
            ThunkKind::Selection => write!(f, "select"),
        }
    }
}

/// How much evaluation an Encode requests (paper §3.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum EncodeStyle {
    /// Maximum evaluation: the Thunk is replaced by its fully-evaluated
    /// result as an accessible Object, recursing into Trees.
    Strict,
    /// Minimum progress: the Thunk is evaluated until the result is not a
    /// Thunk, and the result is provided as an inaccessible Ref.
    Shallow,
}

impl fmt::Display for EncodeStyle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EncodeStyle::Strict => write!(f, "strict"),
            EncodeStyle::Shallow => write!(f, "shallow"),
        }
    }
}

/// The full classification of a Handle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Kind {
    /// A reference to accessible data: the holder may read it.
    Object(DataType),
    /// A reference to inaccessible data: only type and size are visible.
    Ref(DataType),
    /// A deferred computation.
    Thunk(ThunkKind),
    /// A request to evaluate a Thunk and splice in the result.
    Encode(EncodeStyle, ThunkKind),
}

impl fmt::Display for Kind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Kind::Object(t) => write!(f, "{t}:obj"),
            Kind::Ref(t) => write!(f, "{t}:ref"),
            Kind::Thunk(k) => write!(f, "thunk:{k}"),
            Kind::Encode(s, k) => write!(f, "encode:{s}:{k}"),
        }
    }
}

// Kind-byte encoding (byte 30).
const TAG_OBJECT: u8 = 0;
const TAG_REF: u8 = 1;
const TAG_THUNK: u8 = 2;
const TAG_ENCODE: u8 = 3;
const THUNK_APPLICATION: u8 = 0;
const THUNK_IDENTIFICATION: u8 = 1;
const THUNK_SELECTION: u8 = 2;
const STYLE_STRICT: u8 = 0;
const STYLE_SHALLOW: u8 = 1;

// Flag-byte encoding (byte 31).
const FLAG_TREE: u8 = 1 << 0;
const FLAG_LITERAL: u8 = 1 << 1;
const LITERAL_LEN_SHIFT: u8 = 2; // Bits 2..=6 hold the literal length (0..=30).

/// The maximum blob size that is stored inline in the Handle.
pub const MAX_LITERAL: usize = 30;

/// The number of digest bytes in a canonical Handle (192 bits).
pub const DIGEST_LEN: usize = 24;

/// Maximum representable size (48-bit field).
pub const MAX_SIZE: u64 = (1 << 48) - 1;

/// A 256-bit Fix Handle.
///
/// Handles are plain values: `Copy`, totally ordered, hashable, and cheap
/// to move between threads and (in the distributed engine) between nodes.
///
/// # Examples
///
/// ```
/// use fix_core::handle::{Handle, Kind, DataType};
///
/// let lit = Handle::literal(b"hi").unwrap();
/// assert!(lit.is_literal());
/// assert_eq!(lit.size(), 2);
/// assert_eq!(lit.kind(), Kind::Object(DataType::Blob));
/// assert_eq!(lit.literal_content().unwrap(), b"hi");
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Handle([u8; 32]);

impl Handle {
    // ------------------------------------------------------------------
    // Constructors.
    // ------------------------------------------------------------------

    /// Creates a literal BlobObject handle holding `content` inline.
    ///
    /// Returns `None` if `content` is longer than [`MAX_LITERAL`] bytes.
    pub fn literal(content: &[u8]) -> Option<Handle> {
        if content.len() > MAX_LITERAL {
            return None;
        }
        let mut raw = [0u8; 32];
        raw[..content.len()].copy_from_slice(content);
        raw[30] = TAG_OBJECT;
        raw[31] = FLAG_LITERAL | ((content.len() as u8) << LITERAL_LEN_SHIFT);
        Some(Handle(raw))
    }

    /// Creates a canonical (digest-addressed) BlobObject handle.
    pub fn blob_object(digest: [u8; DIGEST_LEN], len: u64) -> Handle {
        Handle::canonical(digest, len, TAG_OBJECT, false)
    }

    /// Creates a canonical TreeObject handle; `count` is the entry count.
    pub fn tree_object(digest: [u8; DIGEST_LEN], count: u64) -> Handle {
        Handle::canonical(digest, count, TAG_OBJECT, true)
    }

    fn canonical(digest: [u8; DIGEST_LEN], size: u64, kind_byte: u8, is_tree: bool) -> Handle {
        debug_assert!(size <= MAX_SIZE, "size exceeds the 48-bit field");
        let mut raw = [0u8; 32];
        raw[..DIGEST_LEN].copy_from_slice(&digest);
        raw[24..30].copy_from_slice(&size.to_le_bytes()[..6]);
        raw[30] = kind_byte;
        raw[31] = if is_tree { FLAG_TREE } else { 0 };
        Handle(raw)
    }

    /// Reconstructs a Handle from its raw 32-byte representation,
    /// validating that the encoding is canonical.
    pub fn from_raw(raw: [u8; 32]) -> Result<Handle> {
        let h = Handle(raw);
        let kind_byte = raw[30];
        let flags = raw[31];
        let tag = kind_byte & 0b11;
        let thunk = (kind_byte >> 2) & 0b11;
        let reserved_kind = kind_byte >> 5;
        let literal = flags & FLAG_LITERAL != 0;
        let is_tree = flags & FLAG_TREE != 0;
        let style_bit = (kind_byte >> 4) & 1;

        let fail = |reason: &str| {
            Err(Error::MalformedTree {
                handle: h,
                reason: format!("invalid handle encoding: {reason}"),
            })
        };

        if reserved_kind != 0 {
            return fail("reserved kind bits set");
        }
        if flags >> 7 != 0 {
            return fail("reserved flag bit set");
        }
        if tag > TAG_ENCODE {
            return fail("bad tag");
        }
        if (tag == TAG_THUNK || tag == TAG_ENCODE) && thunk > THUNK_SELECTION {
            return fail("bad thunk kind");
        }
        if tag != TAG_ENCODE && style_bit != 0 {
            return fail("encode style bit set on non-encode");
        }
        if tag != TAG_THUNK && tag != TAG_ENCODE && thunk != 0 {
            return fail("thunk bits set on non-thunk");
        }
        if literal {
            if is_tree {
                return fail("literal trees are not representable");
            }
            let len = (flags >> LITERAL_LEN_SHIFT) as usize & 0x1f;
            if len > MAX_LITERAL {
                return fail("literal length exceeds 30");
            }
            // Padding beyond the literal content must be zero.
            if raw[len..30].iter().any(|&b| b != 0) {
                return fail("nonzero padding in literal");
            }
        } else if flags >> LITERAL_LEN_SHIFT != 0 {
            return fail("literal length bits set on canonical handle");
        }
        // Application and Selection thunks always target trees.
        if (tag == TAG_THUNK || tag == TAG_ENCODE)
            && (thunk == THUNK_APPLICATION || thunk == THUNK_SELECTION)
            && !is_tree
        {
            return fail("application/selection thunk must target a tree");
        }
        Ok(h)
    }

    /// Returns the raw 32-byte representation.
    pub fn raw(&self) -> &[u8; 32] {
        &self.0
    }

    // ------------------------------------------------------------------
    // Accessors.
    // ------------------------------------------------------------------

    /// Classifies this handle.
    pub fn kind(&self) -> Kind {
        let kind_byte = self.0[30];
        let tag = kind_byte & 0b11;
        let ty = self.data_type();
        match tag {
            TAG_OBJECT => Kind::Object(ty),
            TAG_REF => Kind::Ref(ty),
            TAG_THUNK | TAG_ENCODE => {
                let tk = match (kind_byte >> 2) & 0b11 {
                    THUNK_APPLICATION => ThunkKind::Application,
                    THUNK_IDENTIFICATION => ThunkKind::Identification,
                    _ => ThunkKind::Selection,
                };
                if tag == TAG_THUNK {
                    Kind::Thunk(tk)
                } else {
                    let style = if (kind_byte >> 4) & 1 == STYLE_SHALLOW {
                        EncodeStyle::Shallow
                    } else {
                        EncodeStyle::Strict
                    };
                    Kind::Encode(style, tk)
                }
            }
            _ => unreachable!("tag is two bits"),
        }
    }

    /// The data type of the referent.
    ///
    /// For Objects and Refs this is the data's own type. For Application
    /// and Selection thunks it is always [`DataType::Tree`] (the definition
    /// tree); for Identification thunks it is the identified datum's type.
    /// Encodes inherit from the wrapped thunk.
    pub fn data_type(&self) -> DataType {
        if self.0[31] & FLAG_TREE != 0 {
            DataType::Tree
        } else {
            DataType::Blob
        }
    }

    /// The size field: byte length for blobs, entry count for trees.
    ///
    /// For thunks and encodes this describes the definition target (the
    /// tree or datum named by the digest).
    pub fn size(&self) -> u64 {
        if self.is_literal() {
            ((self.0[31] >> LITERAL_LEN_SHIFT) & 0x1f) as u64
        } else {
            let mut buf = [0u8; 8];
            buf[..6].copy_from_slice(&self.0[24..30]);
            u64::from_le_bytes(buf)
        }
    }

    /// Whether the content is stored inline in the handle.
    pub fn is_literal(&self) -> bool {
        self.0[31] & FLAG_LITERAL != 0
    }

    /// The inline content, if this is a literal handle.
    pub fn literal_content(&self) -> Option<&[u8]> {
        if self.is_literal() {
            Some(&self.0[..self.size() as usize])
        } else {
            None
        }
    }

    /// The truncated 192-bit digest, if this is a canonical handle.
    pub fn digest(&self) -> Option<[u8; DIGEST_LEN]> {
        if self.is_literal() {
            None
        } else {
            let mut d = [0u8; DIGEST_LEN];
            d.copy_from_slice(&self.0[..DIGEST_LEN]);
            Some(d)
        }
    }

    /// True for Objects and Refs (evaluated values, i.e. normal forms).
    pub fn is_value(&self) -> bool {
        matches!(self.kind(), Kind::Object(_) | Kind::Ref(_))
    }

    /// True if the holder may read the referent's data.
    pub fn is_accessible(&self) -> bool {
        matches!(self.kind(), Kind::Object(_))
    }

    /// True for Thunks of any kind.
    pub fn is_thunk(&self) -> bool {
        matches!(self.kind(), Kind::Thunk(_))
    }

    /// True for Encodes of any style.
    pub fn is_encode(&self) -> bool {
        matches!(self.kind(), Kind::Encode(..))
    }

    // ------------------------------------------------------------------
    // Kind transformations. These re-tag the same name: the payload
    // (digest or literal) never changes, so content addressing is stable.
    // ------------------------------------------------------------------

    fn with_kind_byte(mut self, kind_byte: u8) -> Handle {
        self.0[30] = kind_byte;
        self
    }

    /// Demotes an Object to a Ref (inaccessible); idempotent on Refs.
    ///
    /// # Panics
    ///
    /// Panics if called on a Thunk or Encode — those are not data
    /// references and have no accessibility to demote.
    pub fn as_ref_handle(self) -> Handle {
        match self.kind() {
            Kind::Object(_) | Kind::Ref(_) => self.with_kind_byte(TAG_REF),
            k => panic!("as_ref_handle on non-value handle ({k})"),
        }
    }

    /// Promotes a Ref to an Object (accessible); idempotent on Objects.
    ///
    /// Only the runtime may do this, after ensuring the data is local;
    /// guest procedures are never given the ability to call it.
    ///
    /// # Panics
    ///
    /// Panics if called on a Thunk or Encode.
    pub fn as_object_handle(self) -> Handle {
        match self.kind() {
            Kind::Object(_) | Kind::Ref(_) => self.with_kind_byte(TAG_OBJECT),
            k => panic!("as_object_handle on non-value handle ({k})"),
        }
    }

    /// Wraps a value in an Identification Thunk (the identity function).
    pub fn identification(self) -> Result<Handle> {
        match self.kind() {
            Kind::Object(_) | Kind::Ref(_) => {
                Ok(self.with_kind_byte(TAG_THUNK | (THUNK_IDENTIFICATION << 2)))
            }
            _ => Err(Error::TypeMismatch {
                handle: self,
                expected: "a value (Object or Ref) to identify",
            }),
        }
    }

    /// Turns a tree describing an invocation into an Application Thunk.
    pub fn application(self) -> Result<Handle> {
        match self.kind() {
            Kind::Object(DataType::Tree) | Kind::Ref(DataType::Tree) => {
                Ok(self.with_kind_byte(TAG_THUNK | (THUNK_APPLICATION << 2)))
            }
            _ => Err(Error::TypeMismatch {
                handle: self,
                expected: "a tree describing an invocation",
            }),
        }
    }

    /// Turns a tree describing a selection into a Selection Thunk.
    pub fn selection(self) -> Result<Handle> {
        match self.kind() {
            Kind::Object(DataType::Tree) | Kind::Ref(DataType::Tree) => {
                Ok(self.with_kind_byte(TAG_THUNK | (THUNK_SELECTION << 2)))
            }
            _ => Err(Error::TypeMismatch {
                handle: self,
                expected: "a tree describing a selection",
            }),
        }
    }

    /// Wraps a Thunk in an Encode of the given style.
    pub fn encode(self, style: EncodeStyle) -> Result<Handle> {
        match self.kind() {
            Kind::Thunk(_) => {
                let style_bit = match style {
                    EncodeStyle::Strict => STYLE_STRICT,
                    EncodeStyle::Shallow => STYLE_SHALLOW,
                };
                Ok(self.with_kind_byte(TAG_ENCODE | (self.0[30] & 0b1100) | (style_bit << 4)))
            }
            _ => Err(Error::TypeMismatch {
                handle: self,
                expected: "a Thunk to encode",
            }),
        }
    }

    /// Wraps a Thunk in a Strict Encode.
    pub fn strict(self) -> Result<Handle> {
        self.encode(EncodeStyle::Strict)
    }

    /// Wraps a Thunk in a Shallow Encode.
    pub fn shallow(self) -> Result<Handle> {
        self.encode(EncodeStyle::Shallow)
    }

    /// Unwraps an Encode back to the Thunk it requests evaluation of.
    pub fn encoded_thunk(self) -> Result<Handle> {
        match self.kind() {
            Kind::Encode(_, _) => Ok(self.with_kind_byte(TAG_THUNK | (self.0[30] & 0b1100))),
            _ => Err(Error::TypeMismatch {
                handle: self,
                expected: "an Encode to unwrap",
            }),
        }
    }

    /// Recovers the definition target of a Thunk, as an accessible Object.
    ///
    /// For Application and Selection thunks this is the definition tree;
    /// for Identification thunks it is the identified datum.
    pub fn thunk_definition(self) -> Result<Handle> {
        match self.kind() {
            Kind::Thunk(_) => Ok(self.with_kind_byte(TAG_OBJECT)),
            _ => Err(Error::TypeMismatch {
                handle: self,
                expected: "a Thunk",
            }),
        }
    }
}

impl fmt::Display for Handle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if let Some(content) = self.literal_content() {
            if content.iter().all(|b| b.is_ascii_graphic() || *b == b' ') {
                write!(
                    f,
                    "{}:lit:\"{}\"",
                    self.kind(),
                    String::from_utf8_lossy(content)
                )
            } else {
                write!(f, "{}:lit:0x{}", self.kind(), fix_hash::to_hex(content))
            }
        } else {
            let d = self.digest().expect("canonical handle has a digest");
            write!(
                f,
                "{}:{}…:{}",
                self.kind(),
                fix_hash::to_hex(&d[..6]),
                self.size()
            )
        }
    }
}

impl fmt::Debug for Handle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}
