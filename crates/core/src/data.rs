//! Fix data: Blobs and Trees, and their canonical content addressing.
//!
//! Data are represented in a format that minimizes copying (paper §3.2):
//! a Blob is a contiguous, cheaply-cloneable byte region ([`bytes::Bytes`])
//! and a Tree is a reference-counted sequence of 32-byte Handles.
//!
//! Content addressing is domain separated: blob digests and tree digests
//! are computed with different BLAKE3 keys, so a Tree whose serialized
//! entries happen to equal some Blob's bytes can never alias it.

use crate::handle::{DataType, Handle, Kind, DIGEST_LEN, MAX_LITERAL};
use bytes::Bytes;
use std::sync::{Arc, OnceLock};

fn blob_key() -> &'static [u8; 32] {
    static KEY: OnceLock<[u8; 32]> = OnceLock::new();
    KEY.get_or_init(|| fix_hash::hash(b"fix-v1:blob"))
}

fn tree_key() -> &'static [u8; 32] {
    static KEY: OnceLock<[u8; 32]> = OnceLock::new();
    KEY.get_or_init(|| fix_hash::hash(b"fix-v1:tree"))
}

fn truncate(digest: [u8; 32]) -> [u8; DIGEST_LEN] {
    let mut out = [0u8; DIGEST_LEN];
    out.copy_from_slice(&digest[..DIGEST_LEN]);
    out
}

/// Computes the truncated, domain-separated digest of blob contents.
pub fn blob_digest(data: &[u8]) -> [u8; DIGEST_LEN] {
    truncate(fix_hash::keyed_hash(blob_key(), data))
}

/// Computes the truncated, domain-separated digest of serialized tree entries.
pub fn tree_digest(serialized_entries: &[u8]) -> [u8; DIGEST_LEN] {
    truncate(fix_hash::keyed_hash(tree_key(), serialized_entries))
}

/// A region of memory: the atomic unit of Fix data.
///
/// Cloning a Blob is O(1); the underlying bytes are shared.
///
/// # Examples
///
/// ```
/// use fix_core::data::Blob;
///
/// let blob = Blob::from_slice(b"hello");
/// assert_eq!(blob.len(), 5);
/// assert!(blob.handle().is_literal()); // Five bytes fit inline.
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Blob {
    bytes: Bytes,
}

impl Blob {
    /// Creates a blob by copying from a slice.
    pub fn from_slice(data: &[u8]) -> Blob {
        Blob {
            bytes: Bytes::copy_from_slice(data),
        }
    }

    /// Creates a blob from an owned byte vector without copying.
    pub fn from_vec(data: Vec<u8>) -> Blob {
        Blob {
            bytes: Bytes::from(data),
        }
    }

    /// Creates a blob from shared bytes without copying.
    pub fn from_bytes(bytes: Bytes) -> Blob {
        Blob { bytes }
    }

    /// Encodes a `u64` as an 8-byte little-endian blob (always a literal).
    pub fn from_u64(v: u64) -> Blob {
        Blob::from_slice(&v.to_le_bytes())
    }

    /// Decodes a little-endian unsigned integer of 1, 2, 4, or 8 bytes.
    pub fn as_u64(&self) -> Option<u64> {
        let mut buf = [0u8; 8];
        match self.len() {
            1 | 2 | 4 | 8 => {
                buf[..self.len()].copy_from_slice(&self.bytes);
                Some(u64::from_le_bytes(buf))
            }
            _ => None,
        }
    }

    /// The blob's bytes.
    pub fn as_slice(&self) -> &[u8] {
        &self.bytes
    }

    /// The underlying shared byte buffer.
    pub fn bytes(&self) -> &Bytes {
        &self.bytes
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.bytes.len()
    }

    /// True if the blob is empty.
    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }

    /// Zero-copy sub-range of this blob (used by Selection thunks).
    pub fn slice(&self, begin: usize, end: usize) -> Blob {
        Blob {
            bytes: self.bytes.slice(begin..end),
        }
    }

    /// The canonical Handle naming this blob: a literal for contents of 30
    /// bytes or fewer, otherwise a digest-addressed BlobObject.
    pub fn handle(&self) -> Handle {
        if self.len() <= MAX_LITERAL {
            Handle::literal(&self.bytes).expect("length checked")
        } else {
            Handle::blob_object(blob_digest(&self.bytes), self.len() as u64)
        }
    }
}

impl From<&[u8]> for Blob {
    fn from(v: &[u8]) -> Blob {
        Blob::from_slice(v)
    }
}

impl From<Vec<u8>> for Blob {
    fn from(v: Vec<u8>) -> Blob {
        Blob::from_vec(v)
    }
}

impl From<&str> for Blob {
    fn from(v: &str) -> Blob {
        Blob::from_slice(v.as_bytes())
    }
}

/// A collection of Handles: the branching unit of Fix data.
///
/// Cloning a Tree is O(1); entries are shared.
///
/// # Examples
///
/// ```
/// use fix_core::data::{Blob, Tree};
///
/// let t = Tree::from_handles(vec![Blob::from_slice(b"a").handle()]);
/// assert_eq!(t.len(), 1);
/// assert!(!t.handle().is_literal()); // Trees are always digest addressed.
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Tree {
    entries: Arc<[Handle]>,
}

impl Tree {
    /// Creates a tree from a vector of entry handles.
    pub fn from_handles(entries: Vec<Handle>) -> Tree {
        Tree {
            entries: entries.into(),
        }
    }

    /// The entry handles.
    pub fn entries(&self) -> &[Handle] {
        &self.entries
    }

    /// The entry at `index`, if in bounds.
    pub fn get(&self, index: usize) -> Option<Handle> {
        self.entries.get(index).copied()
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if the tree has no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Sub-range of entries as a new Tree (used by Selection thunks).
    pub fn slice(&self, begin: usize, end: usize) -> Tree {
        Tree::from_handles(self.entries[begin..end].to_vec())
    }

    /// The canonical serialization: entry handles concatenated, 32 bytes
    /// each. This is also the wire format for shipping trees between nodes.
    pub fn canonical_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.entries.len() * 32);
        for h in self.entries.iter() {
            out.extend_from_slice(h.raw());
        }
        out
    }

    /// Parses a canonical serialization back into a Tree, validating every
    /// handle encoding.
    pub fn from_canonical_bytes(data: &[u8]) -> crate::error::Result<Tree> {
        if !data.len().is_multiple_of(32) {
            return Err(crate::error::Error::Trap(format!(
                "tree serialization length {} is not a multiple of 32",
                data.len()
            )));
        }
        let mut entries = Vec::with_capacity(data.len() / 32);
        for chunk in data.chunks_exact(32) {
            let mut raw = [0u8; 32];
            raw.copy_from_slice(chunk);
            entries.push(Handle::from_raw(raw)?);
        }
        Ok(Tree::from_handles(entries))
    }

    /// The canonical Handle naming this tree.
    pub fn handle(&self) -> Handle {
        Handle::tree_object(
            tree_digest(&self.canonical_bytes()),
            self.entries.len() as u64,
        )
    }
}

impl From<Vec<Handle>> for Tree {
    fn from(v: Vec<Handle>) -> Tree {
        Tree::from_handles(v)
    }
}

impl FromIterator<Handle> for Tree {
    fn from_iter<I: IntoIterator<Item = Handle>>(iter: I) -> Tree {
        Tree::from_handles(iter.into_iter().collect())
    }
}

/// A stored datum: either a Blob or a Tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Node {
    /// Blob data.
    Blob(Blob),
    /// Tree data.
    Tree(Tree),
}

impl Node {
    /// The canonical Handle naming this datum.
    pub fn handle(&self) -> Handle {
        match self {
            Node::Blob(b) => b.handle(),
            Node::Tree(t) => t.handle(),
        }
    }

    /// The datum's type.
    pub fn data_type(&self) -> DataType {
        match self {
            Node::Blob(_) => DataType::Blob,
            Node::Tree(_) => DataType::Tree,
        }
    }

    /// Approximate storage / transfer size in bytes (blob length, or 32
    /// bytes per tree entry).
    pub fn transfer_size(&self) -> u64 {
        match self {
            Node::Blob(b) => b.len() as u64,
            Node::Tree(t) => (t.len() * 32) as u64,
        }
    }

    /// Borrows the blob, or fails with a type mismatch.
    pub fn as_blob(&self) -> crate::error::Result<&Blob> {
        match self {
            Node::Blob(b) => Ok(b),
            Node::Tree(_) => Err(crate::error::Error::TypeMismatch {
                handle: self.handle(),
                expected: "blob",
            }),
        }
    }

    /// Borrows the tree, or fails with a type mismatch.
    pub fn as_tree(&self) -> crate::error::Result<&Tree> {
        match self {
            Node::Tree(t) => Ok(t),
            Node::Blob(_) => Err(crate::error::Error::TypeMismatch {
                handle: self.handle(),
                expected: "tree",
            }),
        }
    }
}

/// Reads the data behind a literal handle back out as a Blob.
///
/// Returns `None` for canonical (digest-addressed) handles — those must be
/// looked up in storage.
pub fn literal_blob(handle: Handle) -> Option<Blob> {
    match handle.kind() {
        Kind::Object(DataType::Blob) | Kind::Ref(DataType::Blob) => {
            handle.literal_content().map(Blob::from_slice)
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::handle::Kind;

    #[test]
    fn small_blob_is_literal() {
        let blob = Blob::from_slice(b"0123456789012345678901234567890"[..30].as_ref());
        assert!(blob.handle().is_literal());
        assert_eq!(blob.handle().size(), 30);
        let bigger = Blob::from_slice(b"0123456789012345678901234567890");
        assert!(!bigger.handle().is_literal());
        assert_eq!(bigger.handle().size(), 31);
    }

    #[test]
    fn blob_tree_digests_are_domain_separated() {
        // A tree with one literal entry serializes to 32 bytes; a blob with
        // those same 32 bytes must not share the digest.
        let tree = Tree::from_handles(vec![Blob::from_slice(b"x").handle()]);
        let raw = tree.canonical_bytes();
        let blob = Blob::from_vec(raw);
        assert_ne!(
            tree.handle().digest().unwrap(),
            blob.handle().digest().unwrap()
        );
    }

    #[test]
    fn tree_round_trips_canonical_bytes() {
        let entries = vec![
            Blob::from_slice(b"a").handle(),
            Blob::from_slice(&[7u8; 100]).handle(),
            Tree::from_handles(vec![]).handle(),
        ];
        let tree = Tree::from_handles(entries.clone());
        let parsed = Tree::from_canonical_bytes(&tree.canonical_bytes()).unwrap();
        assert_eq!(parsed.entries(), entries.as_slice());
        assert_eq!(parsed.handle(), tree.handle());
    }

    #[test]
    fn u64_round_trip() {
        let blob = Blob::from_u64(0xDEAD_BEEF_1234);
        assert_eq!(blob.as_u64(), Some(0xDEAD_BEEF_1234));
        assert!(blob.handle().is_literal());
    }

    #[test]
    fn literal_blob_readback() {
        let h = Blob::from_slice(b"tiny").handle();
        assert_eq!(literal_blob(h).unwrap().as_slice(), b"tiny");
        let big = Blob::from_slice(&[1u8; 64]).handle();
        assert!(literal_blob(big).is_none());
    }

    #[test]
    fn node_accessors() {
        let b = Node::Blob(Blob::from_slice(b"data"));
        let t = Node::Tree(Tree::from_handles(vec![]));
        assert!(b.as_blob().is_ok());
        assert!(b.as_tree().is_err());
        assert!(t.as_tree().is_ok());
        assert!(t.as_blob().is_err());
        assert!(matches!(b.handle().kind(), Kind::Object(DataType::Blob)));
        assert!(matches!(t.handle().kind(), Kind::Object(DataType::Tree)));
    }

    #[test]
    fn same_content_same_handle() {
        let a = Blob::from_vec(vec![9u8; 1000]);
        let b = Blob::from_slice(&[9u8; 1000]);
        assert_eq!(a.handle(), b.handle());
    }
}
