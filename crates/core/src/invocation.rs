//! Structured views over the tree layouts Fix assigns meaning to.
//!
//! Two tree shapes carry semantics (paper §3.2, Fig. 1):
//!
//! * an **application tree** `[resource-limits, procedure, args...]`
//!   describes a function invocation, and
//! * a **selection tree** `[target, begin]` or `[target, begin, end]`
//!   describes extraction of a subrange of a Blob or Tree.
//!
//! This module parses and builds those layouts; it performs no evaluation.

use crate::data::{Blob, Tree};
use crate::error::{Error, Result};
use crate::handle::{DataType, Handle, Kind};
use crate::limits::ResourceLimits;

/// A parsed application tree: `[limits, procedure, args...]`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Invocation {
    /// Resource limits for the invocation (slot 0).
    pub limits: ResourceLimits,
    /// The procedure to run (slot 1) — a Blob of machine code / VM
    /// bytecode, or a Thunk/Encode that evaluates to one.
    pub procedure: Handle,
    /// The remaining slots, available to the procedure as its input.
    pub args: Vec<Handle>,
}

impl Invocation {
    /// Builds the canonical application tree for this invocation.
    pub fn to_tree(&self) -> Tree {
        let mut entries = Vec::with_capacity(2 + self.args.len());
        entries.push(self.limits.handle());
        entries.push(self.procedure);
        entries.extend_from_slice(&self.args);
        Tree::from_handles(entries)
    }

    /// Parses an application tree.
    ///
    /// The tree must have at least two entries, and slot 0 must be a
    /// literal resource-limits blob.
    pub fn from_tree(tree: &Tree) -> Result<Invocation> {
        if tree.len() < 2 {
            return Err(Error::MalformedTree {
                handle: tree.handle(),
                reason: format!(
                    "application tree needs at least [limits, procedure], got {} entries",
                    tree.len()
                ),
            });
        }
        let limits = ResourceLimits::from_handle(tree.get(0).expect("len checked"))?;
        let procedure = tree.get(1).expect("len checked");
        let args = tree.entries()[2..].to_vec();
        Ok(Invocation {
            limits,
            procedure,
            args,
        })
    }
}

/// A parsed selection tree: `[target, begin]` or `[target, begin, end]`.
///
/// With two entries the selection extracts the single element / byte at
/// `begin`; with three it extracts the half-open range `[begin, end)` as a
/// new Tree or Blob.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Selection {
    /// What to select from: a Tree or Blob (Object or Ref), or a
    /// Thunk/Encode evaluating to one.
    pub target: Handle,
    /// First index (tree entries) or byte offset (blobs).
    pub begin: u64,
    /// One past the last index/byte; `None` selects the single element at
    /// `begin`.
    pub end: Option<u64>,
}

impl Selection {
    /// Selection of the single element / byte at `index`.
    pub fn index(target: Handle, index: u64) -> Selection {
        Selection {
            target,
            begin: index,
            end: None,
        }
    }

    /// Selection of the half-open range `[begin, end)`.
    pub fn range(target: Handle, begin: u64, end: u64) -> Selection {
        Selection {
            target,
            begin,
            end: Some(end),
        }
    }

    /// Builds the canonical selection tree.
    pub fn to_tree(&self) -> Tree {
        let mut entries = vec![self.target, Blob::from_u64(self.begin).handle()];
        if let Some(end) = self.end {
            entries.push(Blob::from_u64(end).handle());
        }
        Tree::from_handles(entries)
    }

    /// Parses a selection tree.
    pub fn from_tree(tree: &Tree) -> Result<Selection> {
        if tree.len() != 2 && tree.len() != 3 {
            return Err(Error::MalformedTree {
                handle: tree.handle(),
                reason: format!("selection tree needs 2 or 3 entries, got {}", tree.len()),
            });
        }
        let target = tree.get(0).expect("len checked");
        let index_of = |h: Handle| -> Result<u64> {
            crate::data::literal_blob(h)
                .and_then(|b| b.as_u64())
                .ok_or(Error::MalformedTree {
                    handle: tree.handle(),
                    reason: "selection index must be a small literal integer blob".into(),
                })
        };
        let begin = index_of(tree.get(1).expect("len checked"))?;
        let end = match tree.get(2) {
            Some(h) => Some(index_of(h)?),
            None => None,
        };
        Ok(Selection { target, begin, end })
    }

    /// Validates the range against a target length, returning the concrete
    /// `[begin, end)` bounds.
    pub fn bounds(&self, target_len: u64) -> Result<(u64, u64)> {
        let end = self.end.unwrap_or(self.begin + 1);
        if self.begin > end || end > target_len {
            return Err(Error::BadSelection {
                target: self.target,
                begin: self.begin,
                end,
                len: target_len,
            });
        }
        Ok((self.begin, end))
    }
}

/// Convenience constructors mirroring the paper's pseudocode API (Table 1).
pub mod build {
    use super::*;
    use crate::handle::EncodeStyle;

    /// `application(tree)`: wraps an application tree in an Application
    /// Thunk. Returns the thunk handle; the tree must be stored separately.
    pub fn application(tree: &Tree) -> Result<Handle> {
        tree.handle().application()
    }

    /// `identification(value)`: the identity thunk on a value.
    pub fn identification(value: Handle) -> Result<Handle> {
        value.identification()
    }

    /// `selection(value, index)`: builds the definition tree and returns
    /// `(definition_tree, thunk_handle)`; the tree must be stored.
    pub fn selection(value: Handle, index: u64) -> Result<(Tree, Handle)> {
        selection_of(Selection::index(value, index))
    }

    /// Range selection: `[begin, end)` of a Blob or Tree.
    pub fn selection_range(value: Handle, begin: u64, end: u64) -> Result<(Tree, Handle)> {
        selection_of(Selection::range(value, begin, end))
    }

    fn selection_of(sel: Selection) -> Result<(Tree, Handle)> {
        match sel.target.kind() {
            Kind::Object(_) | Kind::Ref(_) | Kind::Thunk(_) | Kind::Encode(..) => {
                let tree = sel.to_tree();
                let thunk = tree.handle().selection()?;
                Ok((tree, thunk))
            }
        }
    }

    /// `strict(thunk)`: requests full evaluation.
    pub fn strict(thunk: Handle) -> Result<Handle> {
        thunk.encode(EncodeStyle::Strict)
    }

    /// `shallow(thunk)`: requests minimal evaluation, result as a Ref.
    pub fn shallow(thunk: Handle) -> Result<Handle> {
        thunk.encode(EncodeStyle::Shallow)
    }
}

/// Classifies a handle as a blob-like or tree-like value for error
/// messages and scheduling decisions.
pub fn value_data_type(handle: Handle) -> Option<DataType> {
    match handle.kind() {
        Kind::Object(t) | Kind::Ref(t) => Some(t),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::Blob;

    fn limits() -> ResourceLimits {
        ResourceLimits::new(1 << 20, 1 << 20)
    }

    #[test]
    fn invocation_round_trip() {
        let proc_blob = Blob::from_slice(&[0xAA; 100]);
        let inv = Invocation {
            limits: limits(),
            procedure: proc_blob.handle(),
            args: vec![Blob::from_u64(1).handle(), Blob::from_u64(2).handle()],
        };
        let tree = inv.to_tree();
        assert_eq!(tree.len(), 4);
        let parsed = Invocation::from_tree(&tree).unwrap();
        assert_eq!(parsed, inv);
    }

    #[test]
    fn invocation_requires_limits_slot() {
        // Slot 0 is not a valid limits blob.
        let tree = Tree::from_handles(vec![
            Blob::from_slice(b"junk").handle(),
            Blob::from_slice(b"proc").handle(),
        ]);
        assert!(Invocation::from_tree(&tree).is_err());
    }

    #[test]
    fn invocation_requires_two_slots() {
        let tree = Tree::from_handles(vec![limits().handle()]);
        assert!(Invocation::from_tree(&tree).is_err());
    }

    #[test]
    fn selection_round_trip_index() {
        let target = Blob::from_slice(&[1u8; 64]).handle();
        let sel = Selection::index(target, 7);
        let parsed = Selection::from_tree(&sel.to_tree()).unwrap();
        assert_eq!(parsed, sel);
    }

    #[test]
    fn selection_round_trip_range() {
        let target = Blob::from_slice(&[1u8; 64]).handle().as_ref_handle();
        let sel = Selection::range(target, 8, 32);
        let parsed = Selection::from_tree(&sel.to_tree()).unwrap();
        assert_eq!(parsed, sel);
    }

    #[test]
    fn selection_bounds_checking() {
        let target = Blob::from_slice(&[1u8; 64]).handle();
        assert_eq!(Selection::index(target, 63).bounds(64).unwrap(), (63, 64));
        assert!(Selection::index(target, 64).bounds(64).is_err());
        assert_eq!(Selection::range(target, 0, 64).bounds(64).unwrap(), (0, 64));
        assert!(Selection::range(target, 10, 9).bounds(64).is_err());
        assert!(Selection::range(target, 0, 65).bounds(64).is_err());
    }

    #[test]
    fn build_api_mirrors_table1() {
        let tree = Tree::from_handles(vec![limits().handle(), Blob::from_u64(1).handle()]);
        let app = build::application(&tree).unwrap();
        assert!(app.is_thunk());
        let enc = build::strict(app).unwrap();
        assert!(enc.is_encode());
        assert_eq!(enc.encoded_thunk().unwrap(), app);

        let val = Blob::from_slice(b"v").handle();
        let ident = build::identification(val).unwrap();
        assert!(ident.is_thunk());
        assert_eq!(ident.thunk_definition().unwrap(), val);

        let (sel_tree, sel_thunk) = build::selection(tree.handle(), 1).unwrap();
        assert_eq!(sel_tree.len(), 2);
        assert!(sel_thunk.is_thunk());
    }
}
