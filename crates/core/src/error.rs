//! Error types shared across the Fix implementation.

use crate::handle::Handle;
use std::fmt;

/// Errors that can arise while manipulating or evaluating Fix objects.
///
/// Fix semantics are total for well-formed programs; most of these errors
/// correspond to *guest faults* (a procedure violating its contract, e.g.
/// touching data behind a Ref) or to *platform faults* (an object missing
/// from storage).
///
/// The enum is non-exhaustive: it is the shared error surface of every
/// [`crate::api`] backend, and backends may grow fault classes (cluster
/// transport, admission control, ...) without breaking downstream
/// matches.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum Error {
    /// The referenced object is not present in (local) storage.
    NotFound(Handle),
    /// A procedure attempted to access the data behind an inaccessible
    /// reference (a Ref). Refs expose only type and size.
    Inaccessible(Handle),
    /// A handle had the wrong type for the requested operation.
    TypeMismatch {
        /// The offending handle.
        handle: Handle,
        /// What the operation required (e.g. "blob object").
        expected: &'static str,
    },
    /// A tree that encodes an invocation or selection is structurally
    /// invalid (wrong arity, wrong slot types, ...).
    MalformedTree {
        /// The malformed tree.
        handle: Handle,
        /// Human-readable description of the violation.
        reason: String,
    },
    /// A selection index or byte range is out of bounds.
    BadSelection {
        /// The selection target.
        target: Handle,
        /// First selected index / byte.
        begin: u64,
        /// One past the last selected index / byte.
        end: u64,
        /// The actual length of the target.
        len: u64,
    },
    /// The function slot of an application does not name a runnable
    /// procedure (not registered natively and not a VM module).
    UnknownProcedure(Handle),
    /// A guest procedure exhausted its fuel allowance.
    OutOfFuel {
        /// The fuel limit that was exceeded.
        limit: u64,
    },
    /// A guest procedure exceeded its memory allowance.
    MemoryLimit {
        /// The memory limit in bytes.
        limit: u64,
        /// The attempted allocation size in bytes.
        requested: u64,
    },
    /// A guest procedure faulted (VM trap, invalid API use, panic, ...).
    Trap(String),
    /// An operation that must run on an evaluated value received an
    /// unevaluated one (internal invariant violation).
    NotEvaluated(Handle),
    /// Evaluation recursion exceeded the configured depth bound.
    DepthExceeded {
        /// The configured bound.
        limit: usize,
    },
    /// The request was cancelled before it completed: its
    /// [`BatchTicket`](crate::ticket::BatchTicket) was cancelled (or
    /// dropped unresolved) and the backend withdrew the work it could
    /// still withdraw. Not a fault of the program — the platform was
    /// told the result will never be claimed.
    Cancelled,
    /// The request's submission deadline (in virtual µs, see
    /// [`SubmitOptions`](crate::api::SubmitOptions)) passed before the
    /// backend dispatched it; the work was expired instead of executed.
    DeadlineExceeded {
        /// The absolute virtual-time deadline that passed, in µs.
        deadline_us: u64,
    },
    /// A fault specific to one execution backend (e.g. a cluster client
    /// with no worker nodes). Semantic faults use the shared variants
    /// above so they stay comparable across backends; this variant is
    /// for failures of the *substrate*, not of the program.
    Backend {
        /// Which backend failed (e.g. `"cluster"`).
        backend: &'static str,
        /// Human-readable description of the failure.
        message: String,
    },
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::NotFound(h) => write!(f, "object not found in storage: {h}"),
            Error::Inaccessible(h) => {
                write!(
                    f,
                    "attempted to access data behind an inaccessible Ref: {h}"
                )
            }
            Error::TypeMismatch { handle, expected } => {
                write!(f, "type mismatch: expected {expected}, got {handle}")
            }
            Error::MalformedTree { handle, reason } => {
                write!(f, "malformed tree {handle}: {reason}")
            }
            Error::BadSelection {
                target,
                begin,
                end,
                len,
            } => write!(
                f,
                "selection [{begin}, {end}) out of bounds for {target} of length {len}"
            ),
            Error::UnknownProcedure(h) => write!(f, "unknown procedure: {h}"),
            Error::OutOfFuel { limit } => write!(f, "guest exhausted fuel limit of {limit}"),
            Error::MemoryLimit { limit, requested } => write!(
                f,
                "guest exceeded memory limit ({requested} requested, {limit} allowed)"
            ),
            Error::Trap(msg) => write!(f, "guest trap: {msg}"),
            Error::NotEvaluated(h) => write!(f, "expected an evaluated value, got {h}"),
            Error::DepthExceeded { limit } => {
                write!(f, "evaluation depth exceeded the bound of {limit}")
            }
            Error::Cancelled => write!(f, "request cancelled before completion"),
            Error::DeadlineExceeded { deadline_us } => {
                write!(
                    f,
                    "deadline of {deadline_us} virtual µs passed before dispatch"
                )
            }
            Error::Backend { backend, message } => {
                write!(f, "{backend} backend fault: {message}")
            }
        }
    }
}

impl std::error::Error for Error {}

/// Convenient alias used throughout the workspace.
pub type Result<T> = std::result::Result<T, Error>;
