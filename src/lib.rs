//! # Fix — externalizing network I/O in serverless computing
//!
//! A from-scratch Rust reproduction of the EuroSys '26 paper. Users,
//! programs, and the platform share one representation of a computation:
//! a deterministic procedure applied to content-addressed data (or the
//! outputs of other computations). Data movement is performed
//! exclusively by the platform, which uses its visibility into dataflow
//! to place and schedule work.
//!
//! This umbrella crate re-exports the whole workspace:
//!
//! * [`core`] — the Fix ABI: 256-bit Handles, Blobs/Trees,
//!   Thunks/Encodes, resource limits, footprint analysis;
//! * [`hash`] — BLAKE3, implemented from scratch;
//! * [`storage`] — the content-addressed store and the
//!   memoized relation cache;
//! * [`vm`] — the deterministic guest bytecode VM (the paper's
//!   Wasm-codelet substitute) and its assembler;
//! * [`runtime`] — Fixpoint: the single-node runtime;
//! * [`netsim`] / [`cluster`] /
//!   [`baselines`] — the simulated 10-node cluster, the
//!   distributed Fix engine, and the comparator systems;
//! * [`flatware`] — the Unix-like filesystem layer;
//! * [`workloads`] — every workload of the paper's
//!   evaluation;
//! * [`serve`] — the multi-tenant serving layer: open-loop load
//!   generation, per-tenant SLO classes (priority tiers, deadlines)
//!   over two-level dispatch, a batched driver pool, and tail-latency
//!   telemetry over any One-Fix-API backend;
//! * [`durable`] — the persistence tier: an append-only
//!   content-addressed log with snapshots, lazy faulting restart,
//!   spill-to-disk, and deterministic kill points for crash-recovery
//!   testing;
//! * [`dispatch`] — the multi-node serving tier: rendezvous-hash
//!   (memoization-affinity) routing with load-based spill across N
//!   independent node backends, per-node durable state, and
//!   first-class node failure with warm (log-reopen) recovery;
//! * [`obs`] — the observability layer: a structured event recorder
//!   (one relaxed atomic load when disabled), a unified metrics
//!   registry, deterministic virtual-clock trace summaries, and a
//!   Perfetto-loadable Chrome trace export;
//! * [`adapt`] — the adaptive control plane over the serving layer:
//!   attainment-driven admission (provable-expiry pricing against the
//!   calibrated service model), a deterministic autoscaling driver
//!   pool, closed-loop client populations, and SNF-style streaming
//!   tenants whose packet batches chain on strict-encoded previous
//!   state.
//!
//! # Examples
//!
//! ```
//! use fix::prelude::*;
//! use std::sync::Arc;
//!
//! let rt = Runtime::builder().build();
//! let double = rt.register_native("double", Arc::new(|ctx| {
//!     let x = ctx.arg_blob(0)?.as_u64().unwrap();
//!     ctx.host.create_blob((2 * x).to_le_bytes().to_vec())
//! }));
//! let thunk = rt
//!     .apply(ResourceLimits::default_limits(), double,
//!            &[rt.put_blob(Blob::from_u64(21))])
//!     .unwrap();
//! assert_eq!(rt.get_u64(rt.eval(thunk).unwrap()).unwrap(), 42);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use fix_adapt as adapt;
pub use fix_baselines as baselines;
pub use fix_cluster as cluster;
pub use fix_core as core;
pub use fix_dispatch as dispatch;
pub use fix_durable as durable;
pub use fix_hash as hash;
pub use fix_netsim as netsim;
pub use fix_obs as obs;
pub use fix_serve as serve;
pub use fix_storage as storage;
pub use fix_vm as vm;
pub use fix_workloads as workloads;
pub use fixpoint as runtime;
pub use flatware;

/// The most common imports for writing Fix programs.
///
/// Includes the One Fix API traits ([`Evaluator`](fix_core::api::Evaluator),
/// [`InvocationApi`](fix_core::api::InvocationApi),
/// [`ObjectApi`](fix_core::api::ObjectApi), and the submission-first
/// [`SubmitApi`](fix_core::api::SubmitApi) with its
/// [`Ticket`](fix_core::api::Ticket)/[`BatchTicket`](fix_core::api::BatchTicket)
/// machinery and the [`BlockingOffload`](fix_core::api::BlockingOffload)
/// adapter) so generic workloads and the backends that run them
/// (`Runtime`, `ClusterClient`) are one import away.
pub mod prelude {
    pub use fix_cluster::ClusterClient;
    pub use fix_core::api::{
        BatchTicket, BlockingOffload, ConcurrentApi, Evaluator, HostApi, InvocationApi, Mode,
        NativeCtx, NativeFn, ObjectApi, Priority, SubmitApi, SubmitOptions, Ticket,
    };
    pub use fix_core::data::{Blob, Node, Tree};
    pub use fix_core::handle::{DataType, EncodeStyle, Handle, Kind, ThunkKind};
    pub use fix_core::invocation::{build, Invocation, Selection};
    pub use fix_core::limits::ResourceLimits;
    pub use fix_core::{Error, Result};
    pub use fixpoint::Runtime;
}
